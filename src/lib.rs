//! `qbism-suite`: the workspace's integration surface.
//!
//! This crate exists to host the repository-level `examples/` (runnable
//! binaries over the public `qbism` API) and `tests/` (cross-crate
//! integration, conformance, robustness, determinism and generality
//! suites).  The library itself only re-exports the crates a downstream
//! user would reach for first.

#![forbid(unsafe_code)]

pub use qbism;
pub use qbism_fault as fault;
pub use qbism_obs as obs;
pub use qbism_region as region;
pub use qbism_sfc as sfc;
pub use qbism_starburst as starburst;
pub use qbism_volume as volume;
