//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough API for the workspace's benches to compile and
//! produce useful numbers without crates.io access: timed iterations with
//! a fixed-length measurement pass, median-of-samples reporting, and the
//! `criterion_group!` / `criterion_main!` entry points.  No statistical
//! regression machinery, plots, or baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting one sample per planned iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then the measured samples.
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn median(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the work per iteration for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        let med = median(&mut b.samples);
        let label = format!("{}/{}", self.name, id.as_ref());
        match self.throughput {
            Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                let rate = n as f64 / med.as_secs_f64();
                println!("{label:<60} {med:>12.2?}  ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                let rate = n as f64 / med.as_secs_f64() / (1024.0 * 1024.0);
                println!("{label:<60} {med:>12.2?}  ({rate:.1} MiB/s)");
            }
            _ => println!("{label:<60} {med:>12.2?}"),
        }
        self.criterion.results.push((label, med));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let mut g = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 10,
            throughput: None,
        };
        g.bench_function(id.as_ref(), f);
        self
    }
}

/// Declares a group-runner function named `$group` invoking each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.contains("g/sum"));
    }
}
