//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without crates.io access, so the subset of
//! proptest it uses is vendored: the [`strategy::Strategy`] trait with
//! `prop_map`, range / tuple / array / `collection::vec` / `any`
//! strategies, and the [`proptest!`] / `prop_assert*` / `prop_assume!`
//! macros backed by a deterministic runner (seed derived from the test
//! name; case count overridable via `PROPTEST_CASES`).
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the ordinary assertion message; the run is deterministic so it
//! reproduces exactly), and value streams differ from upstream's.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0.0)
        (S0.0, S1.1)
        (S0.0, S1.1, S2.2)
        (S0.0, S1.1, S2.2, S3.3)
        (S0.0, S1.1, S2.2, S3.3, S4.4)
        (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    }

    /// `&str` patterns are regex strategies.  The supported subset is a
    /// single character class with an optional counted repetition —
    /// `[chars]{lo,hi}`, `[chars]*`, `[chars]+`, or a literal string —
    /// which covers the patterns used in this workspace.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_simple_regex(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
            let len = rng.gen_range(lo..hi + 1);
            (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
        }
    }

    /// Parses `[class]{lo,hi}` / `[class]*` / `[class]+` / literal into
    /// (alphabet, min_len, max_len).
    fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        if chars.peek() != Some(&'[') {
            // Literal string: generate it verbatim.
            let lit: Vec<char> = pattern.chars().collect();
            let n = lit.len();
            return Some((if n == 0 { vec![' '] } else { lit }, n, n));
        }
        chars.next(); // consume '['
        let mut alphabet = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next()?;
            match c {
                ']' => break,
                '\\' => {
                    let e = chars.next()?;
                    alphabet.push(e);
                    prev = Some(e);
                }
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let end = chars.next()?;
                    let start = prev.take()?;
                    for code in (start as u32 + 1)..=(end as u32) {
                        alphabet.push(char::from_u32(code)?);
                    }
                }
                other => {
                    alphabet.push(other);
                    prev = Some(other);
                }
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        match chars.next() {
            None => Some((alphabet, 1, 1)),
            Some('*') if chars.next().is_none() => Some((alphabet, 0, 64)),
            Some('+') if chars.next().is_none() => Some((alphabet, 1, 64)),
            Some('{') => {
                let rest: String = chars.collect();
                let body = rest.strip_suffix('}')?;
                let (lo, hi) = match body.split_once(',') {
                    Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
                    None => {
                        let n = body.trim().parse().ok()?;
                        (n, n)
                    }
                };
                Some((alphabet, lo, hi))
            }
            _ => None,
        }
    }

    /// Strategy producing values via [`crate::arbitrary::Arbitrary`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any [`crate::arbitrary::Arbitrary`] type.
    pub fn any<T: crate::arbitrary::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod arbitrary {
    //! Default value generation for primitive types.

    use crate::test_runner::TestRng;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_raw() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_raw() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// `[S::Value; 2]` with each element from `s`.
    pub fn uniform2<S: Strategy>(s: S) -> UniformArray<S, 2> {
        UniformArray(s)
    }

    /// `[S::Value; 3]` with each element from `s`.
    pub fn uniform3<S: Strategy>(s: S) -> UniformArray<S, 3> {
        UniformArray(s)
    }

    /// `[S::Value; 4]` with each element from `s`.
    pub fn uniform4<S: Strategy>(s: S) -> UniformArray<S, 4> {
        UniformArray(s)
    }
}

pub mod test_runner {
    //! The deterministic case runner behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SampleRange, SeedableRng};

    /// Per-test random source.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Uniform sample from a range (integers and floats).
        pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.0.gen_range(range)
        }

        /// Raw 64 random bits (used by `any::<T>()`).
        pub fn next_raw(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        /// Random source for strategy generation.
        pub rng: TestRng,
        /// Number of cases to run.
        pub cases: u32,
    }

    impl TestRunner {
        /// A runner whose stream is a stable function of the test name.
        /// `PROPTEST_CASES` overrides the case count.
        pub fn for_test(name: &str) -> TestRunner {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h = 0xcbf29ce484222325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100000001b3);
            }
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48);
            TestRunner { rng: TestRng(StdRng::seed_from_u64(h)), cases }
        }
    }
}

pub mod prelude {
    //! The customary glob import.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __runner =
                    $crate::test_runner::TestRunner::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__runner.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __runner.rng);)+
                    // A closure so `prop_assume!` can skip the case via
                    // `return`.
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> () { $body })();
                }
            }
        )*
    };
}

/// Asserts a condition within a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality within a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality within a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0u64..100, -1.0f64..1.0)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 100);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_and_array(v in crate::collection::vec(any::<u8>(), 0..30),
                         a in crate::array::uniform3(0u32..64)) {
            prop_assert!(v.len() < 30);
            prop_assert!(a.iter().all(|&c| c < 64));
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(0.0f64..1.0, 16)) {
            prop_assert_eq!(v.len(), 16);
        }

        #[test]
        fn map_and_assume(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            let doubled = (0u32..10).prop_map(|x| x * 2);
            let mut runner = crate::test_runner::TestRunner::for_test("inner");
            let v = Strategy::generate(&doubled, &mut runner.rng);
            prop_assert!(v % 2 == 0 && v < 20);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::test_runner::TestRunner::for_test("same-name");
        let mut b = crate::test_runner::TestRunner::for_test("same-name");
        let s = crate::collection::vec(0u64..1000, 1..50);
        for _ in 0..20 {
            assert_eq!(Strategy::generate(&s, &mut a.rng), Strategy::generate(&s, &mut b.rng));
        }
    }
}
