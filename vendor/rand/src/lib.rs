//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! subset of `rand` 0.8 actually used here is vendored: `StdRng` (and
//! `SmallRng`) seeded from a `u64`, plus `Rng::gen_range` over integer
//! and float ranges and `Rng::gen_bool`.  The generator is xoshiro256++
//! seeded through SplitMix64 — high quality and deterministic, though
//! the streams differ from upstream `rand`'s ChaCha-based `StdRng`
//! (nothing in this workspace depends on upstream's exact streams, only
//! on seed-determinism).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly once per state word.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one forbidden state; SplitMix64 cannot
        // produce it from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types that `gen_range` can produce from a range.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (or 24) high bits give a uniform unit float.
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every core
/// generator (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator (same implementation here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000)).count();
        assert!(same < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20.0f64..20.0);
            assert!((-20.0..20.0).contains(&v));
            let i = rng.gen_range(3i32..17);
            assert!((3..17).contains(&i));
            let u = rng.gen_range(20u8..=80);
            assert!((20..=80).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "got {heads}/10000");
    }
}
