//! `DATA_REGION`: the result of `EXTRACT_DATA`.
//!
//! "A recent version of the prototype includes the data type DATA_REGION
//! to represent the return value of EXTRACT_DATA(); it contains a REGION
//! and data values for each point in the REGION." (footnote 6)

use qbism_region::Region;

/// A REGION together with one sample per voxel, in curve order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataRegion<T> {
    region: Region,
    values: Vec<T>,
}

impl<T: Copy> DataRegion<T> {
    /// Pairs a region with its values.
    ///
    /// # Panics
    /// Panics if the value count does not match the region's voxel count.
    pub fn new(region: Region, values: Vec<T>) -> Self {
        assert_eq!(
            region.voxel_count(),
            values.len() as u64,
            "DataRegion value count {} does not match region voxel count {}",
            values.len(),
            region.voxel_count()
        );
        DataRegion { region, values }
    }

    /// The spatial extent.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The samples, aligned with `region().iter_ids()`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of voxels (== number of values).
    pub fn voxel_count(&self) -> usize {
        self.values.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates `(curve id, value)` pairs in curve order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        self.region.iter_ids().zip(self.values.iter().copied())
    }

    /// The wire size in bytes when shipped to the visualization client:
    /// the region's naive run list plus one sample per voxel.
    ///
    /// This is the quantity that drives the paper's network column —
    /// "the system response time is dominated by the amount of data
    /// retrieved, transmitted, and rendered."
    pub fn wire_size_bytes(&self) -> usize {
        self.region.run_count() * 8 + self.values.len() * std::mem::size_of::<T>()
    }
}

impl DataRegion<u8> {
    /// Restricts to samples in `lo..=hi`, producing a smaller
    /// `DataRegion` (used for post-filtering approximate query answers).
    pub fn filter_intensity(&self, lo: u8, hi: u8) -> DataRegion<u8> {
        let mut ids = Vec::new();
        let mut values = Vec::new();
        for (id, v) in self.iter() {
            if (lo..=hi).contains(&v) {
                ids.push(id);
                values.push(v);
            }
        }
        DataRegion::new(Region::from_ids(self.region.geometry(), ids), values)
    }

    /// Mean intensity, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().map(|&v| f64::from(v)).sum::<f64>() / self.values.len() as f64)
    }

    /// Minimum and maximum intensity, or `None` when empty.
    pub fn min_max(&self) -> Option<(u8, u8)> {
        let min = self.values.iter().copied().min()?;
        let max = self.values.iter().copied().max()?;
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbism_region::GridGeometry;
    use qbism_sfc::CurveKind;

    fn g() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 3)
    }

    fn sample() -> DataRegion<u8> {
        let region = Region::from_ids(g(), vec![10, 11, 12, 40, 41]);
        DataRegion::new(region, vec![5, 100, 200, 7, 250])
    }

    #[test]
    fn accessors() {
        let dr = sample();
        assert_eq!(dr.voxel_count(), 5);
        assert!(!dr.is_empty());
        let pairs: Vec<(u64, u8)> = dr.iter().collect();
        assert_eq!(pairs, vec![(10, 5), (11, 100), (12, 200), (40, 7), (41, 250)]);
    }

    #[test]
    fn statistics() {
        let dr = sample();
        assert_eq!(dr.mean(), Some((5.0 + 100.0 + 200.0 + 7.0 + 250.0) / 5.0));
        assert_eq!(dr.min_max(), Some((5, 250)));
        let empty = DataRegion::new(Region::empty(g()), Vec::<u8>::new());
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.min_max(), None);
        assert!(empty.is_empty());
    }

    #[test]
    fn filter_intensity_keeps_alignment() {
        let dr = sample();
        let high = dr.filter_intensity(100, 255);
        assert_eq!(high.voxel_count(), 3);
        let pairs: Vec<(u64, u8)> = high.iter().collect();
        assert_eq!(pairs, vec![(11, 100), (12, 200), (41, 250)]);
    }

    #[test]
    fn wire_size_accounts_runs_and_samples() {
        let dr = sample();
        // runs: <10,12>, <40,41> -> 2 runs * 8 bytes + 5 samples
        assert_eq!(dr.wire_size_bytes(), 2 * 8 + 5);
    }

    #[test]
    #[should_panic(expected = "does not match region voxel count")]
    fn mismatched_lengths_panic() {
        let region = Region::from_ids(g(), vec![1, 2, 3]);
        let _ = DataRegion::new(region, vec![1u8, 2]);
    }
}
