//! The QBISM `VOLUME` data type.
//!
//! A VOLUME "encodes all values from a 3D scalar field (e.g., a PET study)
//! sampled on a complete, regular, cubic grid … the samples are stored in
//! a linearized form in an implied order" (Section 3.1).  Section 4.1
//! picks that implied order: **Hilbert order**, because
//!
//! 1. random access must stay fast and simple (rules out compression), and
//! 2. neighbouring grid points should be stored close together on disk
//!    (rules out scanline order), so extraction queries touch few pages.
//!
//! [`Field`] is the generic container (the paper notes vector fields work
//! "by simply storing vectors in place of scalars"); [`Volume`] is the
//! 8-bit scalar instance used by every experiment; [`DataRegion`] is the
//! footnote-6 return type of `EXTRACT_DATA` — a REGION plus one value per
//! voxel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data_region;
mod field;

pub use data_region::DataRegion;
pub use field::{Field, Volume};

/// Errors raised by volume operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolumeError {
    /// Raw sample count does not match the grid.
    SampleCountMismatch {
        /// Samples supplied.
        got: usize,
        /// Samples the grid requires.
        expected: u64,
    },
    /// The region and volume live on different grids/curves.
    GeometryMismatch,
}

impl std::fmt::Display for VolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeError::SampleCountMismatch { got, expected } => {
                write!(f, "sample count {got} does not match grid cell count {expected}")
            }
            VolumeError::GeometryMismatch => {
                write!(f, "region and volume are defined over different grids or curves")
            }
        }
    }
}

impl std::error::Error for VolumeError {}
