//! Curve-ordered dense fields.

use crate::{DataRegion, VolumeError};
use qbism_region::{GridGeometry, Region, Run};
use qbism_sfc::{CurveKind, SpaceFillingCurve};

/// A dense field of samples over a grid, stored linearized in the grid's
/// curve order: `values[id]` is the sample of the cell with curve id `id`.
///
/// The element type is generic — the paper's "n-d m-vector field"
/// generalization — but the concrete [`Volume`] (8-bit scalars) is what
/// the medical application stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field<T> {
    geom: GridGeometry,
    values: Vec<T>,
}

/// The paper's VOLUME: an 8-bit-deep scalar field ("each warped VOLUME
/// consisted of 2 million, single-byte intensity values").
pub type Volume = Field<u8>;

impl<T: Copy + Default> Field<T> {
    /// A field with every sample equal to `fill`.
    pub fn filled(geom: GridGeometry, fill: T) -> Self {
        Field { geom, values: vec![fill; geom.cell_count() as usize] }
    }

    /// Builds a field by evaluating `f` at every 3-D voxel coordinate.
    ///
    /// # Panics
    /// Panics if the geometry is not 3-dimensional.
    pub fn from_fn3<F: FnMut(u32, u32, u32) -> T>(geom: GridGeometry, mut f: F) -> Self {
        assert_eq!(geom.dims(), 3, "from_fn3 requires a 3-D grid");
        let curve = geom.curve();
        let side = geom.side();
        let mut values = vec![T::default(); geom.cell_count() as usize];
        // Evaluate in scanline order (cheap iteration), store at curve ids.
        for x in 0..side {
            for y in 0..side {
                for z in 0..side {
                    values[curve.index_of(&[x, y, z]) as usize] = f(x, y, z);
                }
            }
        }
        Field { geom, values }
    }

    /// Imports samples given in scanline order (axis 0 slowest) — the
    /// layout of the paper's *raw* studies — re-ordering them into the
    /// grid's curve order.
    pub fn from_scanline(geom: GridGeometry, samples: &[T]) -> Result<Self, VolumeError> {
        let expected = geom.cell_count();
        if samples.len() as u64 != expected {
            return Err(VolumeError::SampleCountMismatch { got: samples.len(), expected });
        }
        if geom.kind() == CurveKind::Scanline {
            return Ok(Field { geom, values: samples.to_vec() });
        }
        let curve = geom.curve();
        let scan = geom.with_kind(CurveKind::Scanline).curve();
        let dims = geom.dims() as usize;
        let mut coords = vec![0u32; dims];
        let mut values = vec![T::default(); samples.len()];
        for (i, &s) in samples.iter().enumerate() {
            scan.coords_of(i as u64, &mut coords);
            values[curve.index_of(&coords) as usize] = s;
        }
        Ok(Field { geom, values })
    }

    /// Exports samples to scanline order (the inverse of
    /// [`Field::from_scanline`]).
    pub fn to_scanline(&self) -> Vec<T> {
        if self.geom.kind() == CurveKind::Scanline {
            return self.values.clone();
        }
        let curve = self.geom.curve();
        let scan = self.geom.with_kind(CurveKind::Scanline).curve();
        let dims = self.geom.dims() as usize;
        let mut coords = vec![0u32; dims];
        let mut out = vec![T::default(); self.values.len()];
        for (id, &v) in self.values.iter().enumerate() {
            curve.coords_of(id as u64, &mut coords);
            out[scan.index_of(&coords) as usize] = v;
        }
        out
    }

    /// Re-linearizes the same samples onto a different curve — the
    /// storage-layout ablation (Hilbert vs Z vs scanline page counts).
    pub fn relayout(&self, kind: CurveKind) -> Field<T> {
        if kind == self.geom.kind() {
            return self.clone();
        }
        let src = self.geom.curve();
        let dst_geom = self.geom.with_kind(kind);
        let dst = dst_geom.curve();
        let dims = self.geom.dims() as usize;
        let mut coords = vec![0u32; dims];
        let mut values = vec![T::default(); self.values.len()];
        for (id, &v) in self.values.iter().enumerate() {
            src.coords_of(id as u64, &mut coords);
            values[dst.index_of(&coords) as usize] = v;
        }
        Field { geom: dst_geom, values }
    }

    /// The grid geometry (curve, dims, bits).
    pub fn geometry(&self) -> GridGeometry {
        self.geom
    }

    /// The linearized samples, indexed by curve id.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable access to the linearized samples.
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Sample at a curve id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn at_id(&self, id: u64) -> T {
        self.values[id as usize]
    }

    /// The paper's "efficient random access" requirement: the sample at a
    /// 3-D point, via one curve conversion and one array access.
    ///
    /// # Panics
    /// Panics if the geometry is not 3-D or the point is out of range.
    pub fn probe(&self, x: u32, y: u32, z: u32) -> T {
        self.values[self.geom.curve().index_of3(x, y, z) as usize]
    }

    /// `EXTRACT_DATA(v, r)` — "exactly those intensity values from v that
    /// are inside r" (Section 3.2), returned with their REGION as the
    /// footnote-6 `DATA_REGION`.
    ///
    /// Because volume and region share a curve order, each region run is
    /// one contiguous slice copy.
    pub fn extract(&self, region: &Region) -> Result<DataRegion<T>, VolumeError> {
        if region.geometry() != self.geom {
            return Err(VolumeError::GeometryMismatch);
        }
        let mut values = Vec::with_capacity(region.voxel_count() as usize);
        for run in region.runs() {
            values.extend_from_slice(&self.values[run.start as usize..=run.end as usize]);
        }
        Ok(DataRegion::new(region.clone(), values))
    }
}

impl Volume {
    /// The REGION of voxels whose intensity lies in `lo..=hi` — the
    /// paper's **intensity band** when the interval is one of the fixed
    /// uniform bands, and the general attribute-query predicate otherwise.
    pub fn intensity_region(&self, lo: u8, hi: u8) -> Region {
        // Values are stored in curve order, so one linear scan tracking
        // the open run emits the canonical run list directly — no
        // materialized id vector, no sort.
        let mut runs: Vec<Run> = Vec::new();
        let mut open: Option<u64> = None;
        for (id, &v) in self.values.iter().enumerate() {
            if (lo..=hi).contains(&v) {
                open.get_or_insert(id as u64);
            } else if let Some(start) = open.take() {
                runs.push(Run::new(start, id as u64 - 1));
            }
        }
        if let Some(start) = open {
            runs.push(Run::new(start, self.values.len() as u64 - 1));
        }
        Region::from_runs(self.geom, runs)
    }

    /// Partitions the 0-255 intensity range into uniform bands of `width`
    /// and returns `(lo, hi, band REGION)` per band — the *Intensity
    /// Band* entity rows computed at load time.  The paper uses
    /// `width = 32`, producing 8 bands.
    ///
    /// # Panics
    /// Panics unless `width` is in `1..=256` and divides 256.
    pub fn intensity_bands(&self, width: u16) -> Vec<(u8, u8, Region)> {
        assert!(
            (1..=256).contains(&width) && 256 % width == 0,
            "band width {width} must divide 256"
        );
        let count = (256 / width) as usize;
        // Bands partition the intensity range, so along the curve at most
        // one band has an open run at any id: a single pass closing the
        // open run whenever the band changes builds every band's
        // canonical run list simultaneously — no id vectors in between.
        let mut runs: Vec<Vec<Run>> = vec![Vec::new(); count];
        let mut open: Option<(usize, u64)> = None; // (band, run start)
        for (id, &v) in self.values.iter().enumerate() {
            let band = v as usize / width as usize;
            match open {
                Some((b, _)) if b == band => {}
                _ => {
                    if let Some((b, start)) = open {
                        runs[b].push(Run::new(start, id as u64 - 1));
                    }
                    open = Some((band, id as u64));
                }
            }
        }
        if let Some((b, start)) = open {
            runs[b].push(Run::new(start, self.values.len() as u64 - 1));
        }
        runs.into_iter()
            .enumerate()
            .map(|(i, band_runs)| {
                let lo = (i as u16 * width) as u8;
                let hi = (i as u16 * width + width - 1) as u8;
                (lo, hi, Region::from_runs(self.geom, band_runs))
            })
            .collect()
    }

    /// 256-bin intensity histogram (the paper's "histogram segmented"
    /// interaction).
    pub fn histogram(&self) -> [u64; 256] {
        let mut h = [0u64; 256];
        for &v in &self.values {
            h[v as usize] += 1;
        }
        h
    }

    /// Voxel-wise mean across several volumes, restricted to `region` —
    /// the Section 6.4 "voxel-wise average intensity inside ntal for
    /// these 1,000 PET studies" aggregate.  Returns values in curve order
    /// of the region.
    ///
    /// # Panics
    /// Panics if `volumes` is empty.
    pub fn voxelwise_mean(
        volumes: &[&Volume],
        region: &Region,
    ) -> Result<DataRegion<u8>, VolumeError> {
        assert!(!volumes.is_empty(), "voxelwise_mean needs at least one volume");
        for v in volumes {
            if v.geometry() != region.geometry() {
                return Err(VolumeError::GeometryMismatch);
            }
        }
        let n = volumes.len() as u32;
        let mut values = Vec::with_capacity(region.voxel_count() as usize);
        for run in region.runs() {
            for id in run.start..=run.end {
                let sum: u32 = volumes.iter().map(|v| u32::from(v.values[id as usize])).sum();
                values.push((sum / n) as u8);
            }
        }
        Ok(DataRegion::new(region.clone(), values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(kind: CurveKind) -> GridGeometry {
        GridGeometry::new(kind, 3, 3)
    }

    fn ramp_volume(kind: CurveKind) -> Volume {
        // value = x * 32 + y * 4 + z/2: deterministic, spatially smooth.
        Volume::from_fn3(g(kind), |x, y, z| (x * 32 + y * 4 + z / 2) as u8)
    }

    #[test]
    fn probe_is_position_not_layout() {
        // The same field probed at the same point must agree regardless
        // of the storage curve.
        let h = ramp_volume(CurveKind::Hilbert);
        let z = ramp_volume(CurveKind::Morton);
        let s = ramp_volume(CurveKind::Scanline);
        for (x, y, zc) in [(0, 0, 0), (7, 7, 7), (3, 5, 1), (6, 0, 4)] {
            let expect = (x * 32 + y * 4 + zc / 2) as u8;
            assert_eq!(h.probe(x, y, zc), expect);
            assert_eq!(z.probe(x, y, zc), expect);
            assert_eq!(s.probe(x, y, zc), expect);
        }
    }

    #[test]
    fn scanline_roundtrip() {
        let v = ramp_volume(CurveKind::Hilbert);
        let scan = v.to_scanline();
        let back = Volume::from_scanline(v.geometry(), &scan).unwrap();
        assert_eq!(back, v);
        // Scanline export of a scanline volume is the identity.
        let s = ramp_volume(CurveKind::Scanline);
        assert_eq!(s.to_scanline(), s.values());
    }

    #[test]
    fn from_scanline_rejects_bad_length() {
        let err = Volume::from_scanline(g(CurveKind::Hilbert), &[0u8; 100]).unwrap_err();
        assert_eq!(err, VolumeError::SampleCountMismatch { got: 100, expected: 512 });
    }

    #[test]
    fn relayout_preserves_probes() {
        let h = ramp_volume(CurveKind::Hilbert);
        let z = h.relayout(CurveKind::Morton);
        assert_eq!(z.geometry().kind(), CurveKind::Morton);
        for (x, y, zc) in [(1, 2, 3), (7, 0, 7), (4, 4, 4)] {
            assert_eq!(h.probe(x, y, zc), z.probe(x, y, zc));
        }
        // relayout to the same kind is the identity
        assert_eq!(h.relayout(CurveKind::Hilbert), h);
    }

    #[test]
    fn extract_full_grid_returns_everything() {
        let v = ramp_volume(CurveKind::Hilbert);
        let full = Region::full(v.geometry());
        let dr = v.extract(&full).unwrap();
        assert_eq!(dr.values(), v.values());
        assert_eq!(dr.voxel_count(), 512);
    }

    #[test]
    fn extract_box_matches_probes() {
        let v = ramp_volume(CurveKind::Hilbert);
        let r = Region::from_box(v.geometry(), [1, 2, 3], [4, 5, 6]).unwrap();
        let dr = v.extract(&r).unwrap();
        assert_eq!(dr.voxel_count() as u64, r.voxel_count());
        for ((x, y, z), &val) in r.iter_voxels3().zip(dr.values()) {
            assert_eq!(val, v.probe(x, y, z), "at ({x},{y},{z})");
        }
    }

    #[test]
    fn extract_geometry_mismatch() {
        let v = ramp_volume(CurveKind::Hilbert);
        let r = Region::full(g(CurveKind::Morton));
        assert_eq!(v.extract(&r).unwrap_err(), VolumeError::GeometryMismatch);
    }

    #[test]
    fn intensity_region_matches_predicate() {
        let v = ramp_volume(CurveKind::Hilbert);
        let r = v.intensity_region(100, 150);
        for (x, y, z) in r.iter_voxels3() {
            let val = v.probe(x, y, z);
            assert!((100..=150).contains(&val));
        }
        let total_in_band = v.values().iter().filter(|&&v| (100..=150).contains(&v)).count();
        assert_eq!(r.voxel_count() as usize, total_in_band);
    }

    #[test]
    fn bands_partition_the_grid() {
        // The paper's banding: width 32 -> 8 REGIONs covering everything
        // exactly once.
        let v = ramp_volume(CurveKind::Hilbert);
        let bands = v.intensity_bands(32);
        assert_eq!(bands.len(), 8);
        assert_eq!(bands[0].0, 0);
        assert_eq!(bands[0].1, 31);
        assert_eq!(bands[7].0, 224);
        assert_eq!(bands[7].1, 255);
        let mut union = Region::empty(v.geometry());
        let mut total = 0u64;
        for (lo, hi, r) in &bands {
            assert_eq!(r, &v.intensity_region(*lo, *hi));
            total += r.voxel_count();
            union = union.union(r);
        }
        assert_eq!(total, 512);
        assert_eq!(union, Region::full(v.geometry()));
    }

    #[test]
    fn bands_width_must_divide_256() {
        let v = ramp_volume(CurveKind::Hilbert);
        assert_eq!(v.intensity_bands(256).len(), 1);
        assert_eq!(v.intensity_bands(1).len(), 256);
    }

    #[test]
    #[should_panic(expected = "must divide 256")]
    fn bad_band_width_panics() {
        let _ = ramp_volume(CurveKind::Hilbert).intensity_bands(33);
    }

    #[test]
    fn histogram_counts_every_voxel() {
        let v = ramp_volume(CurveKind::Hilbert);
        let h = v.histogram();
        assert_eq!(h.iter().sum::<u64>(), 512);
        let zeros = v.values().iter().filter(|&&x| x == 0).count() as u64;
        assert_eq!(h[0], zeros);
    }

    #[test]
    fn voxelwise_mean_of_identical_volumes_is_identity() {
        let v = ramp_volume(CurveKind::Hilbert);
        let r = Region::from_box(v.geometry(), [0, 0, 0], [3, 3, 3]).unwrap();
        let mean = Volume::voxelwise_mean(&[&v, &v, &v], &r).unwrap();
        let single = v.extract(&r).unwrap();
        assert_eq!(mean.values(), single.values());
    }

    #[test]
    fn voxelwise_mean_averages() {
        let a = Volume::filled(g(CurveKind::Hilbert), 10);
        let b = Volume::filled(g(CurveKind::Hilbert), 20);
        let r = Region::full(a.geometry());
        let mean = Volume::voxelwise_mean(&[&a, &b], &r).unwrap();
        assert!(mean.values().iter().all(|&v| v == 15));
    }

    #[test]
    fn vector_field_extension() {
        // The paper's m-vector generalization: store [f32; 3] samples.
        let geom = g(CurveKind::Hilbert);
        let wind: Field<[f32; 3]> = Field::from_fn3(geom, |x, y, z| [x as f32, y as f32, z as f32]);
        assert_eq!(wind.probe(3, 1, 4), [3.0, 1.0, 4.0]);
        let r = Region::from_box(geom, [2, 2, 2], [3, 3, 3]).unwrap();
        let dr = wind.extract(&r).unwrap();
        assert_eq!(dr.voxel_count() as u64, r.voxel_count());
    }

    proptest! {
        #[test]
        fn extract_then_reassemble(ids in proptest::collection::vec(0u64..512, 1..200)) {
            let v = ramp_volume(CurveKind::Hilbert);
            let r = Region::from_ids(v.geometry(), ids);
            let dr = v.extract(&r).unwrap();
            // values align 1:1 with region ids in curve order
            for (id, &val) in r.iter_ids().zip(dr.values()) {
                prop_assert_eq!(val, v.at_id(id));
            }
        }

        #[test]
        fn band_regions_are_disjoint(width_exp in 0u32..6) {
            let width = 1u16 << (3 + width_exp); // 8..=256
            let v = ramp_volume(CurveKind::Hilbert);
            let bands = v.intensity_bands(width);
            for i in 0..bands.len() {
                for j in (i + 1)..bands.len() {
                    prop_assert!(bands[i].2.intersect(&bands[j].2).is_empty());
                }
            }
        }
    }
}
