//! qbism-cluster: a sharded atlas warehouse with k-way replication and
//! mid-query read failover.
//!
//! The paper's workload is embarrassingly partitionable by study: every
//! multi-study query class is a scatter of independent per-study
//! sub-queries plus an ordered gather.  This crate runs that shape over
//! N shard servers — each a complete [`qbism::MedicalServer`] installed
//! from the same configuration and seed, so every replica's bytes are
//! identical — with a [`ClusterWarehouse`] router that fans sub-queries
//! out over `qbism-parallel`'s executor and reduces in study order.
//!
//! **Failover exactness.** Because replicas are byte-identical full
//! copies and a failed attempt charges *nothing* (its cost bracket is
//! discarded wholesale), rerouting a sub-query to the next replica
//! reproduces exactly the cost the first replica would have reported:
//! answers, logical [`qbism::QueryCost`] columns ([`qbism_lfm::IoStats`],
//! rows scanned, wire bytes, messages, simulated network seconds,
//! coverage) are byte-identical at any shard count and under any
//! single-replica fault.  Only when *all* k replicas of a study fail
//! does the router degrade: per-study typed
//! [`ClusterError::ShardsUnavailable`] entries mirroring
//! [`qbism::PopulationAnswer`]'s `skipped`, a whole-query error only
//! when every study is lost.
//!
//! Faults arrive through the existing `qbism-fault` plane at the
//! dotted cluster sites (`cluster.shard.kill`, `cluster.shard.slow`,
//! `cluster.route.drop` — see [`qbism_fault::sites`]) or as netsim
//! timeouts after bounded per-shard channel retries; failover, kill and
//! rebalance land in the flight recorder inside the owning trace.

#![forbid(unsafe_code)]

mod placement;
mod router;
mod shard;

pub use placement::{PlacementCatalog, PlacementViolation};
pub use router::{ClusterPopulationAnswer, ClusterWarehouse, RecoveryStats};
pub use shard::{Shard, ShardState};

use qbism::QbismError;
use qbism_netsim::NetError;

/// Errors from the sharded warehouse.
#[derive(Debug)]
pub enum ClusterError {
    /// Every replica of a study failed — the quorum-aware terminal
    /// error.  `last` is the error from the final replica tried.
    ShardsUnavailable {
        /// The study no replica could serve.
        study: i64,
        /// How many replicas were tried.
        replicas: usize,
        /// What the last replica said.
        last: Box<ClusterError>,
    },
    /// A `cluster.shard.kill` fault downed the shard mid-attempt.
    ShardKilled {
        /// The killed shard.
        shard: u64,
    },
    /// The shard was already marked unavailable when routing reached it.
    ShardDown {
        /// The unavailable shard.
        shard: u64,
    },
    /// The shard→router answer leg failed after bounded retries.
    Route {
        /// The shard whose answer leg dropped.
        shard: u64,
        /// The network-layer failure.
        error: NetError,
    },
    /// The sub-query itself failed on the shard (device fault, missing
    /// row, …).
    Query {
        /// The shard the sub-query ran on.
        shard: u64,
        /// The server-side error.
        error: QbismError,
    },
    /// A gather-side (router CPU) step failed: decode, intersect,
    /// re-encode.
    Gather(QbismError),
    /// The router→client ship failed after bounded retries.
    Net(NetError),
    /// The query named a study the placement catalog does not have.
    UnknownStudy {
        /// The unplaced study.
        study: i64,
    },
    /// The query named no studies.
    NoStudies,
    /// The warehouse would be left with no shards.
    NoShards,
    /// A membership change left the placement catalog inconsistent
    /// (the invariant checker's findings).
    Placement(Vec<PlacementViolation>),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ShardsUnavailable { study, replicas, last } => {
                write!(f, "study {study}: all {replicas} replicas unavailable; last: {last}")
            }
            ClusterError::ShardKilled { shard } => write!(f, "shard {shard} killed by fault"),
            ClusterError::ShardDown { shard } => write!(f, "shard {shard} is down"),
            ClusterError::Route { shard, error } => {
                write!(f, "answer leg from shard {shard}: {error}")
            }
            ClusterError::Query { shard, error } => {
                write!(f, "sub-query on shard {shard}: {error}")
            }
            ClusterError::Gather(e) => write!(f, "gather: {e}"),
            ClusterError::Net(e) => write!(f, "client ship: {e}"),
            ClusterError::UnknownStudy { study } => write!(f, "study {study} is not placed"),
            ClusterError::NoStudies => write!(f, "no studies given"),
            ClusterError::NoShards => write!(f, "cluster would have no shards"),
            ClusterError::Placement(violations) => {
                write!(f, "placement catalog inconsistent ({} violations)", violations.len())
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// Result alias for the sharded warehouse.
pub type Result<T> = std::result::Result<T, ClusterError>;
