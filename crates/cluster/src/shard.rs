//! One shard: a complete [`QbismSystem`] behind a health flag and a
//! single service lane.
//!
//! The shard's database is installed from the same configuration and
//! seed as every other shard's, so its bytes — and therefore the
//! logical I/O, row scans and wire size of any sub-query — are
//! identical to every replica's.  That is the whole failover-exactness
//! argument: retrying a sub-query on another replica re-reads the same
//! bytes and charges the same cost.

use qbism::{QbismConfig, QbismSystem, Result};
use qbism_check::sync::{AtomicBool, Mutex, MutexGuard, Ordering};

/// Liveness and service-lane state of one shard, on the `qbism-check`
/// sync facade so router races are model-checkable.
#[derive(Debug)]
pub struct ShardState {
    healthy: AtomicBool,
    lane: Mutex<()>,
}

impl Default for ShardState {
    fn default() -> Self {
        ShardState::new()
    }
}

impl ShardState {
    /// A healthy, idle shard.
    pub fn new() -> Self {
        ShardState {
            healthy: AtomicBool::named("cluster.healthy", true),
            lane: Mutex::named("cluster.lane", ()),
        }
    }

    /// Whether the shard is serving.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Acquire)
    }

    /// Marks the shard down; returns true only for the transition, so
    /// racing workers down a shard exactly once (one `shard_down`
    /// event, one counter bump).
    pub fn mark_down(&self) -> bool {
        self.healthy.compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire).is_ok()
    }

    /// Brings the shard back (tests and rebalance drills).
    pub fn revive(&self) {
        self.healthy.store(true, Ordering::Release);
    }

    /// Enters the shard's single service lane: sub-queries on one
    /// shard serialize here, which is what makes shard count a real
    /// throughput axis for the bench.
    pub fn enter_lane(&self) -> MutexGuard<'_, ()> {
        self.lane.lock_or_recover()
    }
}

/// A shard server: id, full-copy system, liveness.
pub struct Shard {
    id: u64,
    system: QbismSystem,
    state: ShardState,
}

impl Shard {
    /// Installs a shard as a complete copy of the configured database.
    pub fn install(id: u64, config: &QbismConfig) -> Result<Shard> {
        Ok(Shard { id, system: QbismSystem::install(config)?, state: ShardState::new() })
    }

    /// The shard's cluster-wide id (also its endpoint index).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The shard's query server.
    pub fn server(&self) -> &qbism::MedicalServer {
        &self.system.server
    }

    /// The shard's installed system (ground truth for tests).
    pub fn system(&self) -> &QbismSystem {
        &self.system
    }

    /// Liveness and lane state.
    pub fn state(&self) -> &ShardState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_down_transitions_exactly_once() {
        let state = ShardState::new();
        assert!(state.is_healthy());
        assert!(state.mark_down());
        assert!(!state.mark_down(), "second kill is a no-op");
        assert!(!state.is_healthy());
        state.revive();
        assert!(state.is_healthy());
        assert!(state.mark_down());
    }
}
