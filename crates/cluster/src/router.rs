//! The scatter/gather router: placement-directed fan-out, ordered
//! reduce, and per-attempt read failover.
//!
//! Cost discipline, which is the whole point:
//!
//! * A sub-query's database cost is measured on the shard by the same
//!   thread-local bracket machinery the single-node server uses, and
//!   attached only to *successful* attempts.  Failed attempts are
//!   discarded wholesale — the replica that finally answers charges
//!   exactly what a fault-free run would have.
//! * Shard→router answer legs travel per-shard [`EndpointChannels`]
//!   endpoints at the `cluster.route.drop` fault site.  Their traffic
//!   lands in per-shard [`NetStats`] only, never in [`QueryCost`]:
//!   logically the answer crosses the wire once, router→client, exactly
//!   as the single-node server ships it.
//! * The reduce folds per-study costs in study order, so every
//!   deterministic column is identical at any shard count, thread
//!   count, and under any single-replica fault.

use crate::placement::PlacementCatalog;
use crate::shard::Shard;
use crate::{ClusterError, Result};
use qbism::wire::data_region_wire_size;
use qbism::{MedicalServer, QbismConfig, QbismError, QueryCost};
use qbism_check::sync::{AtomicU64, Ordering};
use qbism_fault::{sites, FaultOutcome};
use qbism_netsim::{EndpointChannels, NetStats, NetworkModel, RpcChannel, SharedRpcChannel};
use qbism_obs::{event, trace};
use qbism_parallel::Executor;
use qbism_region::{Region, RegionCodec};
use qbism_volume::DataRegion;

/// One sub-query stage on a shard: returns the stage value, its
/// database cost, and the answer-leg wire size.
type Stage<'a, T> = dyn Fn(&Shard) -> Result<(T, QueryCost, u64)> + Sync + 'a;

/// A population-aggregate answer from the sharded warehouse: the same
/// shape as [`qbism::PopulationAnswer`], with typed cluster errors in
/// `skipped`.
#[derive(Debug)]
pub struct ClusterPopulationAnswer {
    /// The voxel-wise mean over the studies that could be served.
    pub data: DataRegion<u8>,
    /// Cost accounting (`coverage < 1.0` when studies were skipped).
    pub cost: QueryCost,
    /// Studies excluded from the mean — each one lost *all* of its
    /// replicas, so each entry is a
    /// [`ClusterError::ShardsUnavailable`].
    pub skipped: Vec<(i64, ClusterError)>,
}

impl ClusterPopulationAnswer {
    /// True when every requested study contributed to the mean.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Counters for the failover machinery: per-warehouse snapshot values
/// plus process-wide observability mirrors.
struct ClusterCounters {
    failovers: AtomicU64,
    shard_kills: AtomicU64,
    slow_injections: AtomicU64,
    route_drops: AtomicU64,
    rebalances: AtomicU64,
    studies_moved: AtomicU64,
    obs_failovers: qbism_obs::Counter,
    obs_shard_kills: qbism_obs::Counter,
    obs_slow: qbism_obs::Counter,
    obs_route_drops: qbism_obs::Counter,
    obs_rebalances: qbism_obs::Counter,
    obs_moved: qbism_obs::Counter,
}

impl ClusterCounters {
    fn new() -> Self {
        let reg = qbism_obs::global();
        reg.describe("qbism_cluster_failovers_total", "Sub-queries rerouted to a replica.");
        reg.describe("qbism_cluster_shard_kills_total", "Shards downed by injected kills.");
        reg.describe("qbism_cluster_slow_total", "Injected shard slowdowns honoured.");
        reg.describe("qbism_cluster_route_drops_total", "Answer legs lost after retries.");
        reg.describe("qbism_cluster_rebalances_total", "Placement catalog rebuilds.");
        reg.describe("qbism_cluster_moved_total", "Studies whose replica set moved.");
        ClusterCounters {
            failovers: AtomicU64::named("cluster.ctr.failovers", 0),
            shard_kills: AtomicU64::named("cluster.ctr.kills", 0),
            slow_injections: AtomicU64::named("cluster.ctr.slow", 0),
            route_drops: AtomicU64::named("cluster.ctr.drops", 0),
            rebalances: AtomicU64::named("cluster.ctr.rebalances", 0),
            studies_moved: AtomicU64::named("cluster.ctr.moved", 0),
            obs_failovers: reg.counter("qbism_cluster_failovers_total"),
            obs_shard_kills: reg.counter("qbism_cluster_shard_kills_total"),
            obs_slow: reg.counter("qbism_cluster_slow_total"),
            obs_route_drops: reg.counter("qbism_cluster_route_drops_total"),
            obs_rebalances: reg.counter("qbism_cluster_rebalances_total"),
            obs_moved: reg.counter("qbism_cluster_moved_total"),
        }
    }
}

/// A point-in-time snapshot of one warehouse's failover machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sub-queries rerouted to a replica mid-query.
    pub failovers: u64,
    /// Shards downed by `cluster.shard.kill` faults (or [`ClusterWarehouse::kill_shard`]).
    pub shard_kills: u64,
    /// `cluster.shard.slow` latency injections honoured.
    pub slow_injections: u64,
    /// Shard→router answer legs lost after bounded retries.
    pub route_drops: u64,
    /// Placement-catalog rebuilds (add/remove-shard).
    pub rebalances: u64,
    /// Studies whose replica set changed across all rebuilds.
    pub studies_moved: u64,
}

/// The sharded warehouse: N full-copy shard servers, a placement
/// catalog, per-shard answer-leg channels, and one client-facing RPC
/// channel the final answer ships through exactly once.
pub struct ClusterWarehouse {
    config: QbismConfig,
    shards: Vec<Shard>,
    catalog: PlacementCatalog,
    studies: Vec<i64>,
    threads: usize,
    replay_scale: f64,
    chan: SharedRpcChannel,
    endpoints: EndpointChannels,
    counters: ClusterCounters,
    next_shard_id: u64,
}

impl ClusterWarehouse {
    /// Installs a warehouse of `shard_count` full-copy shards with
    /// `replication`-way serving ownership over every loaded study.
    pub fn install(config: &QbismConfig, shard_count: usize, replication: usize) -> Result<Self> {
        let shard_count = shard_count.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let shard = Shard::install(id as u64, config).map_err(ClusterError::Gather)?;
            shards.push(shard);
        }
        let system = shards[0].system();
        let mut studies = system.pet_study_ids.clone();
        studies.extend_from_slice(&system.mri_study_ids);
        let shard_ids: Vec<u64> = shards.iter().map(Shard::id).collect();
        let catalog = PlacementCatalog::build(&shard_ids, &studies, replication);
        Ok(ClusterWarehouse {
            config: config.clone(),
            shards,
            catalog,
            studies,
            threads: 1,
            replay_scale: 0.0,
            chan: SharedRpcChannel::new(RpcChannel::new(NetworkModel::TESTBED_1994)),
            endpoints: EndpointChannels::new(shard_count, NetworkModel::TESTBED_1994)
                .with_fault_site(sites::CLUSTER_ROUTE_DROP),
            counters: ClusterCounters::new(),
            next_shard_id: shard_count as u64,
        })
    }

    // ----------------------------------------------------------------
    // Topology
    // ----------------------------------------------------------------

    /// Live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard with cluster id `id`, if still a member.
    pub fn shard(&self, id: u64) -> Option<&Shard> {
        self.shards.iter().find(|s| s.id() == id)
    }

    /// The placement catalog (ownership ground truth for tests).
    pub fn catalog(&self) -> &PlacementCatalog {
        &self.catalog
    }

    /// Every placed study, PET first then MRI, in load order.
    pub fn studies(&self) -> &[i64] {
        &self.studies
    }

    /// The first shard's query server — every shard is a byte-identical
    /// copy, so this is the single-node reference server.
    pub fn reference_server(&self) -> &MedicalServer {
        self.shards[0].server()
    }

    /// Sets the router's fan-out width (studies per worker claim).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Sets the latency-replay scale: each successful sub-query holds
    /// its shard's service lane for `scale ×` its simulated database
    /// seconds of wall-clock time.  Bench-only; answers and every
    /// deterministic cost column are unaffected.
    pub fn set_replay_scale(&mut self, scale: f64) {
        self.replay_scale = scale.max(0.0);
    }

    /// Marks a shard down by hand (drills, benches).  Returns whether
    /// the shard transitioned.
    pub fn kill_shard(&self, id: u64) -> bool {
        let Some(shard) = self.shard(id) else { return false };
        let transitioned = shard.state().mark_down();
        if transitioned {
            event::shard_down(id);
            self.counters.shard_kills.fetch_add(1, Ordering::Relaxed);
            self.counters.obs_shard_kills.inc();
        }
        transitioned
    }

    /// Brings a downed shard back into service.
    pub fn revive_shard(&self, id: u64) -> bool {
        match self.shard(id) {
            Some(shard) => {
                shard.state().revive();
                true
            }
            None => false,
        }
    }

    /// Revives every shard (test isolation between fault runs).
    pub fn revive_all(&self) {
        for shard in &self.shards {
            shard.state().revive();
        }
    }

    /// Installs one more full-copy shard and rebalances serving
    /// ownership onto it.  Returns the new shard's id.
    pub fn add_shard(&mut self) -> Result<u64> {
        let id = self.next_shard_id;
        let shard = Shard::install(id, &self.config).map_err(ClusterError::Gather)?;
        let span = trace::root("cluster.rebalance");
        span.record_str("change", "add");
        span.record_u64("shard", id);
        self.next_shard_id += 1;
        self.shards.push(shard);
        let endpoint = self.endpoints.add_endpoint();
        debug_assert_eq!(endpoint as u64, id, "endpoint index tracks shard id");
        self.rebalance(&span)?;
        Ok(id)
    }

    /// Removes a shard from the membership (its endpoint slot is
    /// retired, never reused) and rebalances ownership off it.
    pub fn remove_shard(&mut self, id: u64) -> Result<u64> {
        if self.shards.len() <= 1 {
            return Err(ClusterError::NoShards);
        }
        let Some(at) = self.shards.iter().position(|s| s.id() == id) else {
            return Err(ClusterError::ShardDown { shard: id });
        };
        let span = trace::root("cluster.rebalance");
        span.record_str("change", "remove");
        span.record_u64("shard", id);
        self.shards.remove(at);
        self.rebalance(&span)
    }

    /// Rebuilds the placement catalog over the current membership,
    /// records the rebalance in the flight recorder, and runs the
    /// invariant checker.  Returns the number of studies moved.
    fn rebalance(&mut self, span: &trace::SpanGuard) -> Result<u64> {
        let shard_ids: Vec<u64> = self.shards.iter().map(Shard::id).collect();
        let moved = self.catalog.rebuild(&shard_ids);
        span.record_u64("moved", moved);
        event::rebalance(shard_ids.len() as u64, moved);
        self.counters.rebalances.fetch_add(1, Ordering::Relaxed);
        self.counters.obs_rebalances.inc();
        self.counters.studies_moved.fetch_add(moved, Ordering::Relaxed);
        self.counters.obs_moved.add(moved);
        let violations = self.catalog.verify(&shard_ids, &self.studies);
        if violations.is_empty() {
            Ok(moved)
        } else {
            Err(ClusterError::Placement(violations))
        }
    }

    // ----------------------------------------------------------------
    // Accounting
    // ----------------------------------------------------------------

    /// Snapshot of the failover machinery's counters.
    pub fn recovery_stats(&self) -> RecoveryStats {
        RecoveryStats {
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            shard_kills: self.counters.shard_kills.load(Ordering::Relaxed),
            slow_injections: self.counters.slow_injections.load(Ordering::Relaxed),
            route_drops: self.counters.route_drops.load(Ordering::Relaxed),
            rebalances: self.counters.rebalances.load(Ordering::Relaxed),
            studies_moved: self.counters.studies_moved.load(Ordering::Relaxed),
        }
    }

    /// Cumulative traffic on one shard's answer leg.
    pub fn shard_net_stats(&self, id: u64) -> Option<NetStats> {
        self.endpoints.stats(id as usize)
    }

    /// Summed answer-leg traffic across every shard endpoint.
    pub fn total_shard_net_stats(&self) -> NetStats {
        self.endpoints.total_stats()
    }

    /// Traffic on the router→client channel — the only channel whose
    /// receipts reach [`QueryCost`].
    pub fn client_net_stats(&self) -> NetStats {
        self.chan.stats()
    }

    // ----------------------------------------------------------------
    // Query classes
    // ----------------------------------------------------------------

    /// The population aggregate, fanned over the shards: identical
    /// answer and deterministic cost columns to
    /// [`qbism::MedicalServer::population_average`] at any shard count,
    /// thread count, and under any single-replica fault.
    pub fn population_average(
        &self,
        study_ids: &[i64],
        structure: &str,
    ) -> Result<ClusterPopulationAnswer> {
        if study_ids.is_empty() {
            return Err(ClusterError::NoStudies);
        }
        let span = trace::root("cluster.population_average");
        span.record_u64("studies", study_ids.len() as u64);
        span.record_str("structure", structure);
        span.record_u64("shards", self.shards.len() as u64);
        span.record_u64("threads", self.threads as u64);
        let plane = qbism_fault::current();
        let per_study = Executor::new(self.threads).map(study_ids.to_vec(), |_, id| {
            let _fault = plane.clone().map(qbism_fault::FaultPlane::arm_shared);
            self.route(id, &|shard| {
                let extract = shard.server().population_stage(id, structure);
                match extract.outcome {
                    Ok(data) => {
                        let wire = data_region_wire_size(&data);
                        // A stage that ran always carries its cost.
                        Ok((data, extract.cost.unwrap_or_default(), wire))
                    }
                    Err(error) => Err(ClusterError::Query { shard: shard.id(), error }),
                }
            })
        });
        // Ordered reduce, exactly the single-node fold: costs
        // accumulate in study order, a lost study (all replicas down)
        // becomes a typed skipped entry, only a total loss errors.
        let mut cost = QueryCost::default();
        let mut extracts: Vec<DataRegion<u8>> = Vec::with_capacity(study_ids.len());
        let mut skipped: Vec<(i64, ClusterError)> = Vec::new();
        for (routed, &id) in per_study.into_iter().zip(study_ids) {
            match routed {
                Ok((data, sub)) => {
                    cost.accumulate(&sub);
                    extracts.push(data);
                }
                Err(e) => skipped.push((id, e)),
            }
        }
        let Some(first) = extracts.first() else {
            let (id, error) = skipped.remove(0);
            span.record_str(
                "failed",
                &format!("all {} studies; first: study {id}", study_ids.len()),
            );
            return Err(error);
        };
        cost.coverage = extracts.len() as f64 / study_ids.len() as f64;
        let start = std::time::Instant::now();
        let region = first.region().clone();
        let n = extracts.len() as u32;
        let mut values = Vec::with_capacity(first.voxel_count());
        for i in 0..first.voxel_count() {
            let sum: u32 = extracts.iter().map(|e| u32::from(e.values()[i])).sum();
            values.push((sum / n) as u8);
        }
        let data = DataRegion::new(region, values);
        let mean_seconds = start.elapsed().as_secs_f64();
        cost.native_db_seconds += mean_seconds;
        cost.sim_db_seconds += mean_seconds;
        self.ship(&mut cost, data_region_wire_size(&data))?;
        self.finish(&span, &cost);
        Ok(ClusterPopulationAnswer { data, cost, skipped })
    }

    /// The multi-study band intersection, fanned over the shards:
    /// identical answer and deterministic cost columns to
    /// [`qbism::MedicalServer::multi_study_band_region`].  The first
    /// study (in study order) whose every replica fails decides the
    /// error, as the single-node scan order did.
    pub fn multi_study_band_region(
        &self,
        study_ids: &[i64],
        lo: u8,
        hi: u8,
    ) -> Result<(Region, QueryCost)> {
        if study_ids.is_empty() {
            return Err(ClusterError::NoStudies);
        }
        let span = trace::root("cluster.multi_study_band");
        span.record_u64("studies", study_ids.len() as u64);
        span.record_u64("lo", u64::from(lo));
        span.record_u64("hi", u64::from(hi));
        span.record_u64("shards", self.shards.len() as u64);
        span.record_u64("threads", self.threads as u64);
        let plane = qbism_fault::current();
        let fetched = Executor::new(self.threads).map(study_ids.to_vec(), |_, id| {
            let _fault = plane.clone().map(qbism_fault::FaultPlane::arm_shared);
            self.route(id, &|shard| {
                let fetch = shard.server().band_region_stage(id, lo, hi);
                match fetch.outcome {
                    Ok(bytes) => {
                        let wire = bytes.len() as u64;
                        Ok((bytes, fetch.cost.unwrap_or_default(), wire))
                    }
                    Err(error) => Err(ClusterError::Query { shard: shard.id(), error }),
                }
            })
        });
        let mut cost = QueryCost::default();
        let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(study_ids.len());
        for routed in fetched {
            let (bytes, sub) = routed?;
            cost.accumulate(&sub);
            blobs.push(bytes);
        }
        // Gather on the router: same single-blob degenerate case and
        // k-way merge as the single-node reduce, so the re-encoded
        // answer bytes — and therefore `wire_bytes` — are identical.
        let start = std::time::Instant::now();
        let (bytes, region) = if let [bytes] = &mut blobs[..] {
            let bytes = std::mem::take(bytes);
            let region = RegionCodec::decode(&bytes)
                .map_err(|e| ClusterError::Gather(QbismError::from(e)))?;
            (bytes, region)
        } else {
            let mut regions = Vec::with_capacity(blobs.len());
            for blob in &blobs {
                regions.push(
                    RegionCodec::decode(blob)
                        .map_err(|e| ClusterError::Gather(QbismError::from(e)))?,
                );
            }
            let refs: Vec<&Region> = regions.iter().collect();
            let acc = qbism_region::intersect_all(&refs).ok_or(ClusterError::NoStudies)?;
            let bytes = self
                .config
                .region_codec
                .encode(&acc)
                .map_err(|e| ClusterError::Gather(QbismError::from(e)))?;
            (bytes, acc)
        };
        let fold_seconds = start.elapsed().as_secs_f64();
        cost.native_db_seconds += fold_seconds;
        cost.sim_db_seconds += fold_seconds;
        self.ship(&mut cost, bytes.len() as u64)?;
        self.finish(&span, &cost);
        Ok((region, cost))
    }

    // ----------------------------------------------------------------
    // Internals
    // ----------------------------------------------------------------

    /// Routes one study's sub-query along its replica list, failing
    /// over on dead shards, injected kills, stage errors and dropped
    /// answer legs.  Success returns the stage value and its database
    /// cost — untouched by the failed attempts before it.
    fn route<T>(&self, study: i64, stage: &Stage<'_, T>) -> Result<(T, QueryCost)> {
        let owners = self.catalog.replicas(study);
        if owners.is_empty() {
            return Err(ClusterError::UnknownStudy { study });
        }
        let mut last: Option<ClusterError> = None;
        let mut prev: Option<u64> = None;
        for &sid in owners {
            if let Some(from) = prev {
                // Recorded here, inside the adopted worker context, so
                // the failover lands in the owning query's trace.
                event::failover(study, from, sid);
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                self.counters.obs_failovers.inc();
            }
            prev = Some(sid);
            match self.attempt(sid, stage) {
                Ok(hit) => return Ok(hit),
                Err(e) => last = Some(e),
            }
        }
        match last {
            Some(e) => Err(ClusterError::ShardsUnavailable {
                study,
                replicas: owners.len(),
                last: Box::new(e),
            }),
            None => Err(ClusterError::UnknownStudy { study }),
        }
    }

    /// One attempt of a sub-query on one shard: health check, injected
    /// kill/slow sites, the stage inside the shard's service lane, and
    /// the answer leg back to the router.
    fn attempt<T>(&self, sid: u64, stage: &Stage<'_, T>) -> Result<(T, QueryCost)> {
        let shard = self.shard(sid).ok_or(ClusterError::ShardDown { shard: sid })?;
        if !shard.state().is_healthy() {
            return Err(ClusterError::ShardDown { shard: sid });
        }
        if qbism_fault::inject(sites::CLUSTER_SHARD_KILL).is_some() {
            // Any outcome at the kill site downs the shard; racing
            // workers transition it exactly once.
            if shard.state().mark_down() {
                event::shard_down(sid);
                self.counters.shard_kills.fetch_add(1, Ordering::Relaxed);
                self.counters.obs_shard_kills.inc();
            }
            return Err(ClusterError::ShardKilled { shard: sid });
        }
        // The slow site honours Latency outcomes only: the shard still
        // answers, the injected seconds join its simulated database
        // time (same channel injected device latency uses).
        let mut fault_latency = 0.0;
        if let Some(FaultOutcome::Latency { seconds }) =
            qbism_fault::inject(sites::CLUSTER_SHARD_SLOW)
        {
            fault_latency = seconds.max(0.0);
            self.counters.slow_injections.fetch_add(1, Ordering::Relaxed);
            self.counters.obs_slow.inc();
        }
        let (value, mut cost, wire) = {
            let _lane = shard.state().enter_lane();
            let staged = stage(shard)?;
            if self.replay_scale > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    self.replay_scale * staged.1.sim_db_seconds,
                ));
            }
            staged
        };
        if let Err(error) = self.endpoints.ship(sid as usize, wire) {
            self.counters.route_drops.fetch_add(1, Ordering::Relaxed);
            self.counters.obs_route_drops.inc();
            return Err(ClusterError::Route { shard: sid, error });
        }
        cost.sim_db_seconds += fault_latency;
        Ok((value, cost))
    }

    /// Ships the final answer to the client exactly once and folds the
    /// receipt into `cost` — the only place network receipts reach
    /// [`QueryCost`], which is why `messages` and `sim_net_seconds`
    /// match the single-node server at any shard count.
    fn ship(&self, cost: &mut QueryCost, wire_bytes: u64) -> Result<()> {
        let receipt = self.chan.ship(wire_bytes).map_err(ClusterError::Net)?;
        cost.wire_bytes = wire_bytes;
        cost.messages = receipt.messages;
        cost.sim_net_seconds = receipt.seconds;
        Ok(())
    }

    /// Records a finished query's costs on its root span.
    fn finish(&self, span: &trace::SpanGuard, cost: &QueryCost) {
        if !qbism_obs::enabled() {
            return;
        }
        span.record_u64("lfm_pages_read", cost.lfm.pages_read);
        span.record_u64("rows_scanned", cost.rows_scanned);
        span.record_u64("wire_bytes", cost.wire_bytes);
        span.record_u64("messages", cost.messages);
        span.record_f64("sim_db_s", cost.sim_db_seconds);
        span.record_f64("sim_net_s", cost.sim_net_seconds);
        if cost.coverage < 1.0 {
            span.record_f64("coverage", cost.coverage);
        }
    }
}
