//! Catalog-directed placement: which shards serve which study.
//!
//! Every shard holds a complete copy of the deterministically installed
//! database (same config, same seed → byte-identical bytes on every
//! shard), so placement governs *serving ownership only*: which k
//! shards a study's sub-queries are routed to, and in what failover
//! order.  Ownership is computed by rendezvous (highest-random-weight)
//! hashing, the classic scheme whose property we need for rebalancing:
//! adding or removing one shard moves only the studies whose top-k set
//! actually changed, never reshuffles the rest.

use std::collections::BTreeMap;

/// Mixes a (shard, study) pair into a 64-bit rendezvous weight.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rendezvous weight of `shard` for `study` (higher wins).
fn weight(shard: u64, study: i64) -> u64 {
    splitmix64(shard.rotate_left(17) ^ (study as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// The owners of one study, primary first.
fn rank(shards: &[u64], study: i64, k: usize) -> Vec<u64> {
    let mut ranked: Vec<u64> = shards.to_vec();
    // Total order: weight descending, shard id ascending as tiebreak —
    // fully deterministic for any shard set.
    ranked.sort_by(|&a, &b| weight(b, study).cmp(&weight(a, study)).then(a.cmp(&b)));
    ranked.truncate(k.min(shards.len()));
    ranked
}

/// An inconsistency found by [`PlacementCatalog::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementViolation {
    /// The catalog has no entry for a study the warehouse serves.
    MissingStudy {
        /// The unplaced study.
        study: i64,
    },
    /// A study's replica list names a shard the cluster does not have.
    UnknownShard {
        /// The mis-placed study.
        study: i64,
        /// The dangling shard id.
        shard: u64,
    },
    /// A study's replica list repeats a shard (replication would lie).
    DuplicateReplica {
        /// The mis-placed study.
        study: i64,
        /// The repeated shard id.
        shard: u64,
    },
    /// A study has the wrong replica count (`expected` = min(k, shards)).
    WrongReplicaCount {
        /// The mis-placed study.
        study: i64,
        /// min(replication factor, live shards).
        expected: usize,
        /// Replicas actually recorded.
        actual: usize,
    },
    /// A study's recorded owners differ from a fresh rendezvous
    /// computation — the catalog drifted from its own placement rule.
    NotCanonical {
        /// The drifted study.
        study: i64,
    },
}

impl std::fmt::Display for PlacementViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementViolation::MissingStudy { study } => {
                write!(f, "study {study} has no placement entry")
            }
            PlacementViolation::UnknownShard { study, shard } => {
                write!(f, "study {study} placed on unknown shard {shard}")
            }
            PlacementViolation::DuplicateReplica { study, shard } => {
                write!(f, "study {study} lists shard {shard} twice")
            }
            PlacementViolation::WrongReplicaCount { study, expected, actual } => {
                write!(f, "study {study} has {actual} replicas, expected {expected}")
            }
            PlacementViolation::NotCanonical { study } => {
                write!(f, "study {study} placement differs from rendezvous rule")
            }
        }
    }
}

/// The placement catalog: study → ordered replica list (primary
/// first), rebuilt on membership change.
#[derive(Debug, Clone)]
pub struct PlacementCatalog {
    replication: usize,
    entries: BTreeMap<i64, Vec<u64>>,
}

impl PlacementCatalog {
    /// Builds a catalog placing `studies` over `shards` with `k`-way
    /// replication (clamped to ≥ 1).
    pub fn build(shards: &[u64], studies: &[i64], k: usize) -> Self {
        let k = k.max(1);
        let entries = studies.iter().map(|&s| (s, rank(shards, s, k))).collect();
        PlacementCatalog { replication: k, entries }
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The ordered replica list (primary first) serving `study`, empty
    /// when the study is unknown.
    pub fn replicas(&self, study: i64) -> &[u64] {
        self.entries.get(&study).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All placed studies, ascending.
    pub fn studies(&self) -> Vec<i64> {
        self.entries.keys().copied().collect()
    }

    /// Recomputes placement over a new shard set, returning how many
    /// studies had their replica list change — the rendezvous property
    /// keeps this minimal on single add/remove.
    pub fn rebuild(&mut self, shards: &[u64]) -> u64 {
        let mut moved = 0;
        for (&study, owners) in self.entries.iter_mut() {
            let fresh = rank(shards, study, self.replication);
            if *owners != fresh {
                *owners = fresh;
                moved += 1;
            }
        }
        moved
    }

    /// The invariant checker: every study placed, exactly
    /// `min(k, |shards|)` distinct owners, all owners live, and the
    /// recorded order identical to a fresh rendezvous computation.
    pub fn verify(&self, shards: &[u64], studies: &[i64]) -> Vec<PlacementViolation> {
        let mut violations = Vec::new();
        for &study in studies {
            let Some(owners) = self.entries.get(&study) else {
                violations.push(PlacementViolation::MissingStudy { study });
                continue;
            };
            let expected = self.replication.min(shards.len());
            if owners.len() != expected {
                violations.push(PlacementViolation::WrongReplicaCount {
                    study,
                    expected,
                    actual: owners.len(),
                });
            }
            let mut seen = Vec::with_capacity(owners.len());
            for &shard in owners {
                if !shards.contains(&shard) {
                    violations.push(PlacementViolation::UnknownShard { study, shard });
                }
                if seen.contains(&shard) {
                    violations.push(PlacementViolation::DuplicateReplica { study, shard });
                }
                seen.push(shard);
            }
            if *owners != rank(shards, study, self.replication) {
                violations.push(PlacementViolation::NotCanonical { study });
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic_and_verifies_clean() {
        let shards = [0, 1, 2, 3];
        let studies = [2, 3, 5, 7, 11, 13];
        let a = PlacementCatalog::build(&shards, &studies, 2);
        let b = PlacementCatalog::build(&shards, &studies, 2);
        for &s in &studies {
            assert_eq!(a.replicas(s), b.replicas(s));
            assert_eq!(a.replicas(s).len(), 2);
        }
        assert!(a.verify(&shards, &studies).is_empty());
    }

    #[test]
    fn replication_clamps_to_live_shards() {
        let catalog = PlacementCatalog::build(&[0], &[1, 2], 3);
        assert_eq!(catalog.replicas(1), &[0]);
        assert!(catalog.verify(&[0], &[1, 2]).is_empty());
    }

    #[test]
    fn rebuild_moves_minimally_on_add() {
        let studies: Vec<i64> = (1..=64).collect();
        let mut catalog = PlacementCatalog::build(&[0, 1, 2, 3], &studies, 1);
        let before: Vec<Vec<u64>> = studies.iter().map(|&s| catalog.replicas(s).to_vec()).collect();
        let moved = catalog.rebuild(&[0, 1, 2, 3, 4]);
        // Rendezvous property: only studies newly won by shard 4 move,
        // everything else keeps its owner — roughly 1/5 of the studies.
        assert!(moved > 0 && moved < 32, "moved {moved} of 64");
        for (i, &s) in studies.iter().enumerate() {
            if catalog.replicas(s) != before[i].as_slice() {
                assert_eq!(catalog.replicas(s), &[4]);
            }
        }
        assert!(catalog.verify(&[0, 1, 2, 3, 4], &studies).is_empty());
    }

    #[test]
    fn verify_catches_drift() {
        let studies = [1, 2, 3];
        let mut catalog = PlacementCatalog::build(&[0, 1, 2], &studies, 2);
        // Shard 2 removed but the catalog not rebuilt: dangling owners
        // and non-canonical orders must both surface.
        let violations = catalog.verify(&[0, 1], &studies);
        assert!(!violations.is_empty());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlacementViolation::UnknownShard { shard: 2, .. }
        ) || matches!(
            v,
            PlacementViolation::NotCanonical { .. }
        )));
        catalog.rebuild(&[0, 1]);
        assert!(catalog.verify(&[0, 1], &studies).is_empty());
        assert!(catalog
            .verify(&[0, 1], &[1, 2, 3, 4])
            .contains(&PlacementViolation::MissingStudy { study: 4 }));
    }
}
