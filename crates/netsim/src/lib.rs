//! Network cost model for the QBISM testbed.
//!
//! The paper's two machines sit on a 16 Mb/s Token Ring and a 10 Mb/s
//! Ethernet joined by a router (4 ms ping).  Table 3's network column
//! reports, per query, the number of RPC messages between MedicalServer
//! and the DX executive and their total real-time cost, "including both
//! software time (e.g., RPC overhead) and 'wire' time".
//!
//! Both quantities are deterministic functions of the answer's wire size,
//! so we model rather than emulate them: an answer of `B` payload bytes
//! costs a fixed number of control messages plus `ceil(B / chunk)` data
//! messages, each charged a software overhead, plus `B / bandwidth` of
//! wire time.  The default constants are calibrated against Table 3
//! (e.g. Q2: 372 messages, 4.4 s).
//!
//! # Loss, timeouts and retry
//!
//! A 1994 building network lost messages; the model can too.  When a
//! [`qbism_fault`] plane is armed, every message consults the
//! `"net.send"` fault site.  A dropped or errored message costs its
//! software overhead, waits out an exponential backoff
//! ([`RetryPolicy`]), and is retransmitted; [`RetryPolicy::max_attempts`]
//! consecutive losses of the same message surface as
//! [`NetError::Timeout`].  Retransmissions and backoff are accounted in
//! [`NetStats`] (`retransmits`, `backoff_seconds`) **and** in the
//! shipped answer's message/seconds totals, so Table-3 cost columns
//! show exactly what the flaky wire cost.  With no fault plane armed
//! the arithmetic is byte-identical to the lossless model.
//!
//! # Example
//!
//! ```
//! use qbism_netsim::{NetworkModel, RpcChannel};
//!
//! let mut chan = RpcChannel::new(NetworkModel::TESTBED_1994);
//! chan.ship(400_000).unwrap(); // ship a 400 kB extraction answer
//! assert!(chan.stats().messages > 300);
//! assert!(chan.stats().seconds > 3.0);
//! assert_eq!(chan.stats().retransmits, 0); // lossless without a fault plane
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic RPC cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Software cost per message (RPC marshalling, protocol stack), seconds.
    pub per_message_seconds: f64,
    /// Effective wire bandwidth in bytes/second (the 10 Mb/s Ethernet leg
    /// is the bottleneck of the paper's route).
    pub bandwidth_bytes_per_sec: f64,
    /// Payload bytes per data message.
    pub chunk_bytes: u64,
    /// Fixed control messages per shipped answer (request + completion).
    pub control_messages: u64,
}

impl NetworkModel {
    /// Calibrated to the paper's testbed: ≈ 1 KiB RPC chunks, ≈ 11 ms of
    /// software time per message, 10 Mb/s wire.
    pub const TESTBED_1994: NetworkModel = NetworkModel {
        per_message_seconds: 0.011,
        bandwidth_bytes_per_sec: 1_250_000.0,
        chunk_bytes: 1024,
        control_messages: 2,
    };

    /// Messages needed to ship `payload_bytes` (control + data chunks).
    pub fn messages_for(&self, payload_bytes: u64) -> u64 {
        self.control_messages + payload_bytes.div_ceil(self.chunk_bytes)
    }

    /// Total network real time to ship `payload_bytes`, seconds.
    pub fn seconds_for(&self, payload_bytes: u64) -> f64 {
        self.messages_for(payload_bytes) as f64 * self.per_message_seconds
            + payload_bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::TESTBED_1994
    }
}

/// Bounded retransmission with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Send attempts per message before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retransmission, seconds.
    pub base_backoff_seconds: f64,
    /// Backoff growth factor per further retransmission.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// Simulated seconds waited before retransmission number `retry`
    /// (1-based) of one message.
    pub fn backoff_seconds(&self, retry: u32) -> f64 {
        self.base_backoff_seconds * self.backoff_multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

impl Default for RetryPolicy {
    /// 4 attempts, 50 ms initial backoff, doubling — a plausible 1994
    /// RPC stack.
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff_seconds: 0.050, backoff_multiplier: 2.0 }
    }
}

/// A network-layer failure surfaced to the query path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetError {
    /// One message of an answer was lost on every attempt.
    Timeout {
        /// Index of the message within the answer (0-based).
        message: u64,
        /// Send attempts made, including the first.
        attempts: u32,
    },
    /// A ship was addressed to an endpoint the channel set does not
    /// have (see [`EndpointChannels`]).
    UnknownEndpoint {
        /// The endpoint index that was addressed.
        endpoint: usize,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Timeout { message, attempts } => {
                write!(f, "network timeout: message {message} lost after {attempts} attempts")
            }
            NetError::UnknownEndpoint { endpoint } => {
                write!(f, "no such network endpoint: {endpoint}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Accumulated traffic counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Messages sent, including retransmissions (the paper's "IPC
    /// Messages" column).
    pub messages: u64,
    /// Payload bytes shipped.
    pub bytes: u64,
    /// Simulated real time spent in networking, seconds (the paper's
    /// "Answer Time (real)" column) — includes retransmission overhead
    /// and backoff.
    pub seconds: f64,
    /// Number of `ship` calls that completed (logical answers).
    pub answers: u64,
    /// Messages retransmitted after an injected loss.
    pub retransmits: u64,
    /// Simulated seconds spent waiting in retry backoff.
    pub backoff_seconds: f64,
}

impl NetStats {
    /// Field-wise sum (aggregating per-endpoint counters).
    pub fn plus(&self, other: &NetStats) -> NetStats {
        NetStats {
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            seconds: self.seconds + other.seconds,
            answers: self.answers + other.answers,
            retransmits: self.retransmits + other.retransmits,
            backoff_seconds: self.backoff_seconds + other.backoff_seconds,
        }
    }
}

/// Cost breakdown of one shipped answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShipReceipt {
    /// Messages sent for this answer, including retransmissions.
    pub messages: u64,
    /// Payload bytes shipped.
    pub payload_bytes: u64,
    /// Simulated seconds, including retransmission overhead, backoff
    /// and injected latency.
    pub seconds: f64,
    /// Retransmitted messages.
    pub retransmits: u64,
    /// Seconds of retry backoff included in `seconds`.
    pub backoff_seconds: f64,
}

#[derive(Debug)]
struct NetCounters {
    messages: qbism_obs::Counter,
    bytes: qbism_obs::Counter,
    micros: qbism_obs::Counter,
    retries: qbism_obs::Counter,
    timeouts: qbism_obs::Counter,
}

fn net_counters() -> &'static NetCounters {
    static COUNTERS: std::sync::OnceLock<NetCounters> = std::sync::OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = qbism_obs::global();
        reg.describe("qbism_net_messages_total", "RPC messages shipped (Table 3 IPC Messages).");
        reg.describe(
            "qbism_net_wire_bytes_total",
            "Answer payload bytes shipped over the channel.",
        );
        reg.describe("qbism_net_sim_micros_total", "Simulated 1994 network time, microseconds.");
        reg.describe("qbism_net_retries_total", "Messages retransmitted after an injected loss.");
        reg.describe(
            "qbism_net_timeouts_total",
            "Answers abandoned after exhausting retransmission attempts.",
        );
        NetCounters {
            messages: reg.counter("qbism_net_messages_total"),
            bytes: reg.counter("qbism_net_wire_bytes_total"),
            micros: reg.counter("qbism_net_sim_micros_total"),
            retries: reg.counter("qbism_net_retries_total"),
            timeouts: reg.counter("qbism_net_timeouts_total"),
        }
    })
}

/// A MedicalServer → DX channel that records what crosses it.
#[derive(Debug, Clone)]
pub struct RpcChannel {
    model: NetworkModel,
    retry: RetryPolicy,
    stats: NetStats,
    /// Fault site each message consults while a plane is armed.
    fault_site: &'static str,
    /// Site name stamped on retry/timeout flight-recorder events.
    event_site: &'static str,
}

impl RpcChannel {
    /// A channel with the given cost model and the default
    /// [`RetryPolicy`].
    pub fn new(model: NetworkModel) -> Self {
        RpcChannel {
            model,
            retry: RetryPolicy::default(),
            stats: NetStats::default(),
            fault_site: "net.send",
            event_site: "net.ship",
        }
    }

    /// Replaces the retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Names the fault site this channel's messages consult (default
    /// `"net.send"`).  Distinct logical links — e.g. the cluster
    /// router's shard answer legs at `"cluster.route.drop"` — use this
    /// so a plane can target one link without dropping traffic on the
    /// others.  Retry/timeout events are stamped with the same name.
    pub fn with_fault_site(mut self, site: &'static str) -> Self {
        self.fault_site = site;
        self.event_site = site;
        self
    }

    /// The fault site in force.
    pub fn fault_site(&self) -> &'static str {
        self.fault_site
    }

    /// The cost model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Ships one logical answer of `payload_bytes`, updating counters.
    ///
    /// Without an armed fault plane this is the exact lossless model.
    /// Under injected loss, each lost message costs its software
    /// overhead plus exponential backoff and is retransmitted;
    /// exhausting [`RetryPolicy::max_attempts`] on one message abandons
    /// the answer with [`NetError::Timeout`] (messages actually sent
    /// stay accounted, the answer does not).
    pub fn ship(&mut self, payload_bytes: u64) -> Result<ShipReceipt, NetError> {
        let base_msgs = self.model.messages_for(payload_bytes);
        let mut retransmits = 0u64;
        let mut backoff = 0.0f64;
        let mut injected_latency = 0.0f64;
        if qbism_fault::active() {
            for message in 0..base_msgs {
                let mut attempt = 1u32;
                loop {
                    match qbism_fault::inject(self.fault_site) {
                        None => break,
                        Some(qbism_fault::FaultOutcome::Latency { seconds }) => {
                            injected_latency += seconds.max(0.0);
                            break;
                        }
                        Some(_) => {
                            // Lost: the send still burned software time.
                            if attempt >= self.retry.max_attempts.max(1) {
                                let sent = message + 1 + retransmits;
                                let secs = sent as f64 * self.model.per_message_seconds
                                    + backoff
                                    + injected_latency;
                                self.stats.messages += sent;
                                self.stats.seconds += secs;
                                self.stats.retransmits += retransmits;
                                self.stats.backoff_seconds += backoff;
                                if qbism_obs::enabled() {
                                    let c = net_counters();
                                    c.messages.add(sent);
                                    c.micros.add((secs * 1e6) as u64);
                                    c.retries.add(retransmits);
                                    c.timeouts.inc();
                                }
                                qbism_obs::event::timeout(self.event_site, attempt as u64);
                                return Err(NetError::Timeout { message, attempts: attempt });
                            }
                            backoff += self.retry.backoff_seconds(attempt);
                            retransmits += 1;
                            qbism_obs::event::retry(self.event_site, attempt as u64);
                            attempt += 1;
                        }
                    }
                }
            }
        }
        let msgs = base_msgs + retransmits;
        let seconds = self.model.seconds_for(payload_bytes)
            + retransmits as f64 * self.model.per_message_seconds
            + backoff
            + injected_latency;
        self.stats.messages += msgs;
        self.stats.bytes += payload_bytes;
        self.stats.seconds += seconds;
        self.stats.answers += 1;
        self.stats.retransmits += retransmits;
        self.stats.backoff_seconds += backoff;
        if qbism_obs::enabled() {
            let c = net_counters();
            c.messages.add(msgs);
            c.bytes.add(payload_bytes);
            c.micros.add((seconds * 1e6) as u64);
            c.retries.add(retransmits);
            let span = qbism_obs::trace::span(self.event_site);
            span.record_u64("bytes", payload_bytes);
            span.record_u64("messages", msgs);
            span.record_f64("sim_net_s", seconds);
            if retransmits > 0 {
                span.record_u64("retransmits", retransmits);
                span.record_f64("backoff_s", backoff);
            }
        }
        Ok(ShipReceipt {
            messages: msgs,
            payload_bytes,
            seconds,
            retransmits,
            backoff_seconds: backoff,
        })
    }

    /// Counters since construction or the last reset.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zeroes the counters (between measured queries).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }
}

/// An [`RpcChannel`] shareable across query threads: the channel sits
/// behind a mutex so concurrent queries can each ship their answer
/// through `&self`, serializing only the (cheap, in-memory) cost
/// arithmetic — exactly how one server socket is shared in practice.
#[derive(Debug)]
pub struct SharedRpcChannel {
    inner: qbism_check::sync::Mutex<RpcChannel>,
}

impl SharedRpcChannel {
    /// Wraps a channel for shared use.
    pub fn new(chan: RpcChannel) -> Self {
        SharedRpcChannel { inner: qbism_check::sync::Mutex::named("net.rpc", chan) }
    }

    /// Ships one logical answer; see [`RpcChannel::ship`].
    pub fn ship(&self, payload_bytes: u64) -> Result<ShipReceipt, NetError> {
        self.lock().ship(payload_bytes)
    }

    /// Counters since construction or the last reset.
    pub fn stats(&self) -> NetStats {
        self.lock().stats()
    }

    /// Zeroes the counters (between measured queries).
    pub fn reset_stats(&self) {
        self.lock().reset_stats();
    }

    /// The cost model in force.
    pub fn model(&self) -> NetworkModel {
        self.lock().model()
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.lock().retry_policy()
    }

    fn lock(&self) -> qbism_check::sync::MutexGuard<'_, RpcChannel> {
        // Poison-recovering: a panicking client thread must not wedge
        // every other session's network path.
        self.inner.lock_or_recover()
    }
}

/// One independent [`SharedRpcChannel`] per logical endpoint.
///
/// A router talking to N shards is N *separate* links, not one: wrapping
/// a single channel in a mutex would serialize concurrent shard legs
/// **and** co-mingle their retransmit/backoff accounting, so a flaky
/// link to shard 3 would pollute shard 5's `NetStats`.  Here each
/// endpoint owns its channel and counters; concurrent ships to distinct
/// endpoints proceed in parallel and account independently.
#[derive(Debug)]
pub struct EndpointChannels {
    endpoints: Vec<SharedRpcChannel>,
    model: NetworkModel,
    retry: RetryPolicy,
    fault_site: &'static str,
}

impl EndpointChannels {
    /// `n` endpoints sharing one cost model, each with its own channel,
    /// retry state and counters.  Messages consult the default
    /// `"net.send"` fault site until [`with_fault_site`] renames it.
    ///
    /// [`with_fault_site`]: EndpointChannels::with_fault_site
    pub fn new(n: usize, model: NetworkModel) -> Self {
        let mut chans = EndpointChannels {
            endpoints: Vec::new(),
            model,
            retry: RetryPolicy::default(),
            fault_site: "net.send",
        };
        for _ in 0..n {
            chans.add_endpoint();
        }
        chans
    }

    /// Replaces the retry policy on every existing and future endpoint.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self.endpoints = (0..self.endpoints.len()).map(|_| self.make_endpoint()).collect();
        self
    }

    /// Names the fault site every endpoint's messages consult; existing
    /// endpoint counters are rebuilt fresh.
    pub fn with_fault_site(mut self, site: &'static str) -> Self {
        self.fault_site = site;
        self.endpoints = (0..self.endpoints.len()).map(|_| self.make_endpoint()).collect();
        self
    }

    fn make_endpoint(&self) -> SharedRpcChannel {
        SharedRpcChannel::new(
            RpcChannel::new(self.model)
                .with_retry_policy(self.retry)
                .with_fault_site(self.fault_site),
        )
    }

    /// Adds one endpoint and returns its index.
    pub fn add_endpoint(&mut self) -> usize {
        self.endpoints.push(self.make_endpoint());
        self.endpoints.len() - 1
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True when no endpoints exist.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Ships one logical answer over `endpoint`'s own channel; see
    /// [`RpcChannel::ship`].  Concurrent ships to *different* endpoints
    /// do not serialize against each other.
    pub fn ship(&self, endpoint: usize, payload_bytes: u64) -> Result<ShipReceipt, NetError> {
        self.endpoints
            .get(endpoint)
            .ok_or(NetError::UnknownEndpoint { endpoint })?
            .ship(payload_bytes)
    }

    /// Counters of one endpoint, if it exists.
    pub fn stats(&self, endpoint: usize) -> Option<NetStats> {
        self.endpoints.get(endpoint).map(SharedRpcChannel::stats)
    }

    /// Field-wise sum of every endpoint's counters.
    pub fn total_stats(&self) -> NetStats {
        self.endpoints.iter().fold(NetStats::default(), |acc, e| acc.plus(&e.stats()))
    }

    /// Zeroes every endpoint's counters.
    pub fn reset_stats(&self) {
        for e in &self.endpoints {
            e.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use proptest::prelude::*;
    use qbism_fault::{FaultOutcome, FaultPlane, Trigger};

    #[test]
    fn message_count_includes_control_and_chunks() {
        let m = NetworkModel::TESTBED_1994;
        assert_eq!(m.messages_for(0), 2);
        assert_eq!(m.messages_for(1), 3);
        assert_eq!(m.messages_for(1024), 3);
        assert_eq!(m.messages_for(1025), 4);
    }

    #[test]
    fn channel_answers_after_lock_poison() {
        let chan = SharedRpcChannel::new(RpcChannel::new(NetworkModel::TESTBED_1994));
        chan.ship(4096).unwrap();
        let poisoner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = chan.inner.lock();
            panic!("deliberate poison");
        }));
        assert!(poisoner.is_err());
        let receipt = chan.ship(4096).unwrap();
        assert!(receipt.messages >= 2, "channel recovered and shipped after poison");
        assert_eq!(chan.stats().answers, 2);
    }

    /// Concurrent shippers through one shared channel under the
    /// deterministic scheduler: counters must account for every ship
    /// regardless of interleaving.
    #[test]
    fn model_concurrent_ships_account_exactly() {
        use qbism_check::thread;
        use std::sync::Arc;
        qbism_check::model(|| {
            let chan = Arc::new(SharedRpcChannel::new(RpcChannel::new(NetworkModel::TESTBED_1994)));
            let per_ship = NetworkModel::TESTBED_1994.messages_for(2048);
            thread::scope(|s| {
                for _ in 0..2 {
                    let chan = Arc::clone(&chan);
                    s.spawn(move || {
                        chan.ship(2048).unwrap();
                    });
                }
            });
            let stats = chan.stats();
            assert_eq!(stats.answers, 2);
            assert_eq!(stats.messages, 2 * per_ship, "no ship lost or double-counted");
        });
    }

    /// Each endpoint accounts independently: a flaky link to one shard
    /// must not pollute another shard's retransmit/backoff counters,
    /// and a custom fault site must not react to `net.send` rules.
    #[test]
    fn endpoint_channels_isolate_accounting_and_fault_sites() {
        let chans = EndpointChannels::new(3, NetworkModel::TESTBED_1994)
            .with_retry_policy(RetryPolicy { max_attempts: 2, ..RetryPolicy::default() })
            .with_fault_site("cluster.route.drop");
        // Rules on net.send must not touch the renamed link.
        {
            let _scope =
                FaultPlane::new(5).rule("net.send", Trigger::Always, FaultOutcome::Drop).arm();
            chans.ship(0, 2048).unwrap();
            assert_eq!(chans.stats(0).unwrap().retransmits, 0);
        }
        // Drop every message on the shared site: only the shipped-to
        // endpoint times out; its siblings stay pristine.
        {
            let _scope = FaultPlane::new(5)
                .rule("cluster.route.drop", Trigger::Always, FaultOutcome::Drop)
                .arm();
            let err = chans.ship(1, 100).unwrap_err();
            assert_eq!(err, NetError::Timeout { message: 0, attempts: 2 });
        }
        let s0 = chans.stats(0).unwrap();
        let s1 = chans.stats(1).unwrap();
        let s2 = chans.stats(2).unwrap();
        assert_eq!(s0.answers, 1);
        assert_eq!(s0.retransmits, 0, "endpoint 0 never saw endpoint 1's losses");
        assert_eq!(s1.answers, 0);
        assert_eq!(s1.retransmits, 1);
        assert_eq!(s2, NetStats::default(), "untouched endpoint stays zero");
        let total = chans.total_stats();
        assert_eq!(total.messages, s0.messages + s1.messages);
        assert_eq!(total.retransmits, 1);
        assert_eq!(
            chans.ship(7, 10).unwrap_err(),
            NetError::UnknownEndpoint { endpoint: 7 },
            "out-of-range endpoint is a typed error"
        );
        chans.reset_stats();
        assert_eq!(chans.total_stats(), NetStats::default());
    }

    /// Concurrent ships to distinct endpoints both account exactly
    /// under the deterministic scheduler — nothing is lost to a shared
    /// lock, and per-endpoint counters never co-mingle.
    #[test]
    fn model_concurrent_endpoint_ships_stay_independent() {
        use qbism_check::thread;
        use std::sync::Arc;
        qbism_check::model(|| {
            let chans = Arc::new(EndpointChannels::new(2, NetworkModel::TESTBED_1994));
            thread::scope(|s| {
                for endpoint in 0..2usize {
                    let chans = Arc::clone(&chans);
                    s.spawn(move || {
                        chans.ship(endpoint, 1024 * (endpoint as u64 + 1)).unwrap();
                    });
                }
            });
            let m = NetworkModel::TESTBED_1994;
            let s0 = chans.stats(0).unwrap();
            let s1 = chans.stats(1).unwrap();
            assert_eq!((s0.answers, s0.messages, s0.bytes), (1, m.messages_for(1024), 1024));
            assert_eq!((s1.answers, s1.messages, s1.bytes), (1, m.messages_for(2048), 2048));
        });
    }

    #[test]
    fn q1_and_q2_scale_match_paper() {
        // Q1 ships a full 2 MiB study: the paper reports 2103 messages
        // and 24.8 s.  Our model should land within ~15 %.
        let m = NetworkModel::TESTBED_1994;
        let q1_bytes = 2_097_152u64 + 8;
        let msgs = m.messages_for(q1_bytes);
        assert!((1900..2300).contains(&msgs), "Q1 messages {msgs}");
        let secs = m.seconds_for(q1_bytes);
        assert!((20.0..28.0).contains(&secs), "Q1 seconds {secs}");
        // Q2: 357,911 voxels + 5,252 naive runs. Paper: 372 msgs, 4.4 s.
        let q2_bytes = 357_911u64 + 5252 * 8;
        let secs2 = m.seconds_for(q2_bytes);
        assert!((3.5..5.5).contains(&secs2), "Q2 seconds {secs2}");
    }

    #[test]
    fn channel_accumulates_and_resets() {
        let mut chan = RpcChannel::new(NetworkModel::TESTBED_1994);
        let m1 = chan.ship(100).unwrap().messages;
        let m2 = chan.ship(5000).unwrap().messages;
        assert_eq!(chan.stats().messages, m1 + m2);
        assert_eq!(chan.stats().bytes, 5100);
        assert_eq!(chan.stats().answers, 2);
        assert!(chan.stats().seconds > 0.0);
        chan.reset_stats();
        assert_eq!(chan.stats(), NetStats::default());
    }

    /// The lossless default must reproduce the paper-calibrated Q2
    /// numbers bit-for-bit: no retry arithmetic may leak into the
    /// fault-free path.
    #[test]
    fn lossless_default_reproduces_q2_exactly() {
        let m = NetworkModel::TESTBED_1994;
        let q2_bytes = 357_911u64 + 5252 * 8;
        let mut chan = RpcChannel::new(m);
        let receipt = chan.ship(q2_bytes).unwrap();
        assert_eq!(receipt.messages, m.messages_for(q2_bytes));
        assert_eq!(receipt.messages, 393, "Q2 ships 393 modeled messages (paper: 372)");
        assert_eq!(receipt.seconds.to_bits(), m.seconds_for(q2_bytes).to_bits());
        assert!((receipt.seconds - 4.4).abs() < 0.5, "Q2 ≈ 4.4 s, got {}", receipt.seconds);
        assert_eq!(receipt.retransmits, 0);
        assert_eq!(receipt.backoff_seconds, 0.0);
        assert_eq!(chan.stats().retransmits, 0);
    }

    /// k injected losses add exactly k messages, k × per-message
    /// seconds, and the policy's modeled backoff to the receipt and to
    /// `NetStats`.
    #[test]
    fn retry_math_is_exact() {
        let m = NetworkModel::TESTBED_1994;
        let policy = RetryPolicy::default();
        let payload = 2048u64; // 2 control + 2 data = 4 messages
                               // Lose the 2nd send once and the 4th send twice (distinct
                               // messages: after the first loss the retransmission is send #3).
        let _scope = FaultPlane::new(9)
            .rule("net.send", Trigger::Nth(2), FaultOutcome::Drop)
            .rule("net.send", Trigger::Nth(4), FaultOutcome::Drop)
            .rule("net.send", Trigger::Nth(5), FaultOutcome::Drop)
            .arm();
        let mut chan = RpcChannel::new(m).with_retry_policy(policy);
        let receipt = chan.ship(payload).unwrap();
        let k = 3u64;
        assert_eq!(receipt.retransmits, k);
        assert_eq!(receipt.messages, m.messages_for(payload) + k);
        // Message 2 backs off once (50 ms); message 3 backs off twice
        // (50 ms + 100 ms).
        let expect_backoff =
            policy.backoff_seconds(1) + policy.backoff_seconds(1) + policy.backoff_seconds(2);
        assert!((receipt.backoff_seconds - expect_backoff).abs() < 1e-12);
        let expect_secs =
            m.seconds_for(payload) + k as f64 * m.per_message_seconds + expect_backoff;
        assert!((receipt.seconds - expect_secs).abs() < 1e-12);
        let stats = chan.stats();
        assert_eq!(stats.messages, receipt.messages);
        assert_eq!(stats.retransmits, k);
        assert!((stats.backoff_seconds - expect_backoff).abs() < 1e-12);
        assert_eq!(stats.answers, 1);
    }

    #[test]
    fn persistent_loss_times_out_with_partial_accounting() {
        let m = NetworkModel::TESTBED_1994;
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        // Every send of every message is lost.
        let _scope = FaultPlane::new(9).rule("net.send", Trigger::Always, FaultOutcome::Drop).arm();
        let mut chan = RpcChannel::new(m).with_retry_policy(policy);
        let err = chan.ship(100).unwrap_err();
        assert_eq!(err, NetError::Timeout { message: 0, attempts: 3 });
        let stats = chan.stats();
        assert_eq!(stats.messages, 3, "all three attempts hit the wire");
        assert_eq!(stats.retransmits, 2);
        assert_eq!(stats.answers, 0, "a timed-out answer is not an answer");
        assert_eq!(stats.bytes, 0);
        let expect_backoff = policy.backoff_seconds(1) + policy.backoff_seconds(2);
        assert!((stats.backoff_seconds - expect_backoff).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_loss_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let _scope =
                FaultPlane::new(seed).with_probability("net.send", 0.2, FaultOutcome::Drop).arm();
            let mut chan = RpcChannel::new(NetworkModel::TESTBED_1994);
            let mut out = Vec::new();
            for _ in 0..20 {
                out.push(chan.ship(4096).map(|r| (r.messages, r.retransmits)));
            }
            (out, chan.stats())
        };
        let (a, sa) = run(1234);
        let (b, sb) = run(1234);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(sa.retransmits > 0, "p=0.2 over ~120 sends should lose some");
    }

    proptest! {
        #[test]
        fn time_and_messages_are_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let m = NetworkModel::TESTBED_1994;
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(m.messages_for(lo) <= m.messages_for(hi));
            prop_assert!(m.seconds_for(lo) <= m.seconds_for(hi));
        }

        #[test]
        fn shipping_split_answers_costs_at_least_one_answer(
            total in 1u64..1_000_000, parts in 1u64..20,
        ) {
            // Splitting an answer into several ships can only add control
            // messages, never remove data chunks.
            let m = NetworkModel::TESTBED_1994;
            let mut split = RpcChannel::new(m);
            let each = total / parts;
            let mut shipped = 0;
            for _ in 0..parts {
                split.ship(each).unwrap();
                shipped += each;
            }
            split.ship(total - shipped).unwrap();
            let mut whole = RpcChannel::new(m);
            whole.ship(total).unwrap();
            prop_assert!(split.stats().messages >= whole.stats().messages);
            prop_assert_eq!(split.stats().bytes, whole.stats().bytes);
        }
    }
}
