//! Network cost model for the QBISM testbed.
//!
//! The paper's two machines sit on a 16 Mb/s Token Ring and a 10 Mb/s
//! Ethernet joined by a router (4 ms ping).  Table 3's network column
//! reports, per query, the number of RPC messages between MedicalServer
//! and the DX executive and their total real-time cost, "including both
//! software time (e.g., RPC overhead) and 'wire' time".
//!
//! Both quantities are deterministic functions of the answer's wire size,
//! so we model rather than emulate them: an answer of `B` payload bytes
//! costs a fixed number of control messages plus `ceil(B / chunk)` data
//! messages, each charged a software overhead, plus `B / bandwidth` of
//! wire time.  The default constants are calibrated against Table 3
//! (e.g. Q2: 372 messages, 4.4 s).
//!
//! # Example
//!
//! ```
//! use qbism_netsim::{NetworkModel, RpcChannel};
//!
//! let mut chan = RpcChannel::new(NetworkModel::TESTBED_1994);
//! chan.ship(400_000); // ship a 400 kB extraction answer
//! assert!(chan.stats().messages > 300);
//! assert!(chan.stats().seconds > 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic RPC cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Software cost per message (RPC marshalling, protocol stack), seconds.
    pub per_message_seconds: f64,
    /// Effective wire bandwidth in bytes/second (the 10 Mb/s Ethernet leg
    /// is the bottleneck of the paper's route).
    pub bandwidth_bytes_per_sec: f64,
    /// Payload bytes per data message.
    pub chunk_bytes: u64,
    /// Fixed control messages per shipped answer (request + completion).
    pub control_messages: u64,
}

impl NetworkModel {
    /// Calibrated to the paper's testbed: ≈ 1 KiB RPC chunks, ≈ 11 ms of
    /// software time per message, 10 Mb/s wire.
    pub const TESTBED_1994: NetworkModel = NetworkModel {
        per_message_seconds: 0.011,
        bandwidth_bytes_per_sec: 1_250_000.0,
        chunk_bytes: 1024,
        control_messages: 2,
    };

    /// Messages needed to ship `payload_bytes` (control + data chunks).
    pub fn messages_for(&self, payload_bytes: u64) -> u64 {
        self.control_messages + payload_bytes.div_ceil(self.chunk_bytes)
    }

    /// Total network real time to ship `payload_bytes`, seconds.
    pub fn seconds_for(&self, payload_bytes: u64) -> f64 {
        self.messages_for(payload_bytes) as f64 * self.per_message_seconds
            + payload_bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::TESTBED_1994
    }
}

/// Accumulated traffic counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetStats {
    /// Messages sent (the paper's "IPC Messages" column).
    pub messages: u64,
    /// Payload bytes shipped.
    pub bytes: u64,
    /// Simulated real time spent in networking, seconds (the paper's
    /// "Answer Time (real)" column).
    pub seconds: f64,
    /// Number of `ship` calls (logical answers).
    pub answers: u64,
}

/// A MedicalServer → DX channel that records what crosses it.
#[derive(Debug, Clone)]
pub struct RpcChannel {
    model: NetworkModel,
    stats: NetStats,
}

impl RpcChannel {
    /// A channel with the given cost model.
    pub fn new(model: NetworkModel) -> Self {
        RpcChannel { model, stats: NetStats::default() }
    }

    /// The cost model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Ships one logical answer of `payload_bytes`, updating counters.
    /// Returns the message count of this answer.
    pub fn ship(&mut self, payload_bytes: u64) -> u64 {
        let msgs = self.model.messages_for(payload_bytes);
        let seconds = self.model.seconds_for(payload_bytes);
        self.stats.messages += msgs;
        self.stats.bytes += payload_bytes;
        self.stats.seconds += seconds;
        self.stats.answers += 1;
        if qbism_obs::enabled() {
            // Describe and resolve once per process; per-ship cost is
            // three relaxed atomic adds.
            type NetCounters = (qbism_obs::Counter, qbism_obs::Counter, qbism_obs::Counter);
            static COUNTERS: std::sync::OnceLock<NetCounters> = std::sync::OnceLock::new();
            let (messages, bytes, micros) = COUNTERS.get_or_init(|| {
                let reg = qbism_obs::global();
                reg.describe(
                    "qbism_net_messages_total",
                    "RPC messages shipped (Table 3 IPC Messages).",
                );
                reg.describe(
                    "qbism_net_wire_bytes_total",
                    "Answer payload bytes shipped over the channel.",
                );
                reg.describe(
                    "qbism_net_sim_micros_total",
                    "Simulated 1994 network time, microseconds.",
                );
                (
                    reg.counter("qbism_net_messages_total"),
                    reg.counter("qbism_net_wire_bytes_total"),
                    reg.counter("qbism_net_sim_micros_total"),
                )
            });
            messages.add(msgs);
            bytes.add(payload_bytes);
            micros.add((seconds * 1e6) as u64);
            let span = qbism_obs::trace::span("net.ship");
            span.record_u64("bytes", payload_bytes);
            span.record_u64("messages", msgs);
            span.record_f64("sim_net_s", seconds);
        }
        msgs
    }

    /// Counters since construction or the last reset.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Zeroes the counters (between measured queries).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn message_count_includes_control_and_chunks() {
        let m = NetworkModel::TESTBED_1994;
        assert_eq!(m.messages_for(0), 2);
        assert_eq!(m.messages_for(1), 3);
        assert_eq!(m.messages_for(1024), 3);
        assert_eq!(m.messages_for(1025), 4);
    }

    #[test]
    fn q1_and_q2_scale_match_paper() {
        // Q1 ships a full 2 MiB study: the paper reports 2103 messages
        // and 24.8 s.  Our model should land within ~15 %.
        let m = NetworkModel::TESTBED_1994;
        let q1_bytes = 2_097_152u64 + 8;
        let msgs = m.messages_for(q1_bytes);
        assert!((1900..2300).contains(&msgs), "Q1 messages {msgs}");
        let secs = m.seconds_for(q1_bytes);
        assert!((20.0..28.0).contains(&secs), "Q1 seconds {secs}");
        // Q2: 357,911 voxels + 5,252 naive runs. Paper: 372 msgs, 4.4 s.
        let q2_bytes = 357_911u64 + 5252 * 8;
        let secs2 = m.seconds_for(q2_bytes);
        assert!((3.5..5.5).contains(&secs2), "Q2 seconds {secs2}");
    }

    #[test]
    fn channel_accumulates_and_resets() {
        let mut chan = RpcChannel::new(NetworkModel::TESTBED_1994);
        let m1 = chan.ship(100);
        let m2 = chan.ship(5000);
        assert_eq!(chan.stats().messages, m1 + m2);
        assert_eq!(chan.stats().bytes, 5100);
        assert_eq!(chan.stats().answers, 2);
        assert!(chan.stats().seconds > 0.0);
        chan.reset_stats();
        assert_eq!(chan.stats(), NetStats::default());
    }

    proptest! {
        #[test]
        fn time_and_messages_are_monotone(a in 0u64..10_000_000, b in 0u64..10_000_000) {
            let m = NetworkModel::TESTBED_1994;
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(m.messages_for(lo) <= m.messages_for(hi));
            prop_assert!(m.seconds_for(lo) <= m.seconds_for(hi));
        }

        #[test]
        fn shipping_split_answers_costs_at_least_one_answer(
            total in 1u64..1_000_000, parts in 1u64..20,
        ) {
            // Splitting an answer into several ships can only add control
            // messages, never remove data chunks.
            let m = NetworkModel::TESTBED_1994;
            let mut split = RpcChannel::new(m);
            let each = total / parts;
            let mut shipped = 0;
            for _ in 0..parts {
                split.ship(each);
                shipped += each;
            }
            split.ship(total - shipped);
            let mut whole = RpcChannel::new(m);
            whole.ship(total);
            prop_assert!(split.stats().messages >= whole.stats().messages);
            prop_assert_eq!(split.stats().bytes, whole.stats().bytes);
        }
    }
}
