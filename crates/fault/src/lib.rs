//! Deterministic, seeded fault injection for the QBISM simulated substrates.
//!
//! The paper's evaluation hardware — a raw disk partition under the Long
//! Field Manager and a 1994 Token-Ring/Ethernet testbed — failed in the
//! ways real hardware fails: I/O errors, partial writes, lost messages,
//! latency spikes, and outright crashes.  The reproduction models both
//! substrates in software, which means failures can be *injected* rather
//! than waited for, and injected **deterministically**: the same seed
//! and the same workload produce the same faults at the same operations,
//! every run.
//!
//! # Model
//!
//! Instrumented code calls [`inject`] at each *fault site* — a named
//! point where the simulated hardware touches the world, e.g.
//! `"lfm.write"` or `"net.send"`.  With no plane armed this is one
//! thread-local check and returns `None`.  When a [`FaultPlane`] is
//! armed (via [`FaultPlane::arm`], a scoped RAII guard), every call is
//! counted and matched against the plane's rules; the first rule that
//! fires yields a [`FaultOutcome`] which the call site is responsible
//! for honouring (return an error, tear the write, mark the device
//! crashed, add simulated latency, drop the message).
//!
//! # Composable schedules
//!
//! A plane is a list of rules, each `site-pattern × trigger × outcome`:
//!
//! ```
//! use qbism_fault::{FaultPlane, FaultOutcome};
//!
//! let plane = FaultPlane::new(0xC0FFEE)
//!     .fail_nth("lfm.write", 3)              // 3rd data write errors
//!     .with_probability("net.send", 0.05, FaultOutcome::Drop)
//!     .crash_at_op(41);                      // 41st injectable op anywhere
//! let scope = plane.arm();
//! assert!(qbism_fault::active());
//! drop(scope);
//! assert!(!qbism_fault::active());
//! ```
//!
//! Site patterns are exact names, a `prefix.*` glob, or `*` for
//! everything.  Probabilistic rules draw from a SplitMix64 stream keyed
//! on `(seed, rule, op index)`, so decisions depend only on the seed and
//! the operation sequence — never on wall clock, thread timing or map
//! iteration order.
//!
//! # Observer mode
//!
//! [`FaultPlane::observer`] arms a plane with no rules: nothing fails,
//! but every injectable operation is counted ([`FaultPlane::ops_seen`],
//! [`FaultPlane::site_ops`]).  The crash-point sweep uses this to learn
//! how many I/Os a workload performs, then re-runs it once per index
//! with `crash_at_op(k)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use qbism_check::sync::{AtomicU64, Mutex, Ordering};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// What the instrumented call site should do to the current operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// The operation fails with a device/wire error.
    Error,
    /// A write persists only a prefix: `fraction` (clamped to `[0, 1]`)
    /// of the payload reaches the medium, then the operation errors.
    /// Non-write sites treat this as [`FaultOutcome::Error`].
    Torn {
        /// Fraction of the payload that survives, in `[0, 1]`.
        fraction: f64,
    },
    /// The simulated machine dies at this operation: the call site must
    /// stop serving until an explicit recovery step.
    Crash,
    /// The operation succeeds but takes `seconds` of extra simulated
    /// time (accounted separately from the disk/network cost models).
    Latency {
        /// Extra simulated seconds added to the operation.
        seconds: f64,
    },
    /// A network message vanishes in flight (the sender times out).
    /// Non-network sites treat this as [`FaultOutcome::Error`].
    Drop,
}

impl FaultOutcome {
    fn name(&self) -> &'static str {
        match self {
            FaultOutcome::Error => "error",
            FaultOutcome::Torn { .. } => "torn",
            FaultOutcome::Crash => "crash",
            FaultOutcome::Latency { .. } => "latency",
            FaultOutcome::Drop => "drop",
        }
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fires on the `n`-th (1-based) operation matching the rule's site
    /// pattern, once.
    Nth(u64),
    /// Fires on the `n`-th (1-based) injectable operation seen by the
    /// plane *anywhere*, once.  The backbone of crash-point sweeps.
    OpIndex(u64),
    /// Fires independently per matching operation with probability `p`,
    /// drawn deterministically from the plane's seed.
    Probability(f64),
    /// Fires on every matching operation.
    Always,
}

#[derive(Debug)]
struct Rule {
    pattern: String,
    trigger: Trigger,
    outcome: FaultOutcome,
    /// Matching ops seen so far (drives `Nth`).
    matched: u64,
    /// One-shot triggers flip this after firing.
    spent: bool,
}

fn pattern_matches(pattern: &str, site: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix(".*") {
        return site.strip_prefix(prefix).is_some_and(|rest| rest.starts_with('.'));
    }
    pattern == site
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Unit-interval draw keyed on `(seed, rule index, op index, site)`.
fn unit_draw(seed: u64, rule_idx: usize, op: u64, site: &str) -> f64 {
    let key = splitmix64(
        seed ^ splitmix64(op) ^ (rule_idx as u64).wrapping_mul(0x9E37) ^ fnv1a64(site.as_bytes()),
    );
    // 53 mantissa bits → uniform in [0, 1).
    (key >> 11) as f64 / (1u64 << 53) as f64
}

/// A seeded, composable schedule of faults.  Build with the combinator
/// methods, then [`arm`](FaultPlane::arm) it for a scope.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    rules: Mutex<Vec<Rule>>,
    ops: AtomicU64,
    injected: AtomicU64,
    site_ops: Mutex<BTreeMap<String, u64>>,
    log: Mutex<Vec<InjectedFault>>,
}

/// One fault that actually fired, for post-mortem assertions.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectedFault {
    /// Global op index (1-based) at which the fault fired.
    pub op: u64,
    /// The fault site name.
    pub site: String,
    /// The outcome that was delivered.
    pub outcome: FaultOutcome,
}

impl FaultPlane {
    /// A plane with the given seed and no rules yet.
    pub fn new(seed: u64) -> Self {
        FaultPlane {
            seed,
            rules: Mutex::named("fault.rules", Vec::new()),
            ops: AtomicU64::named("fault.ops", 0),
            injected: AtomicU64::named("fault.injected", 0),
            site_ops: Mutex::named("fault.site_ops", BTreeMap::new()),
            log: Mutex::named("fault.log", Vec::new()),
        }
    }

    /// A rule-free plane: counts injectable operations without ever
    /// failing one.  Used to size crash-point sweeps.
    pub fn observer() -> Self {
        FaultPlane::new(0)
    }

    /// Adds a raw `pattern × trigger × outcome` rule.
    pub fn rule(self, pattern: &str, trigger: Trigger, outcome: FaultOutcome) -> Self {
        self.lock_rules().push(Rule {
            pattern: pattern.to_string(),
            trigger,
            outcome,
            matched: 0,
            spent: false,
        });
        self
    }

    /// The `n`-th (1-based) op at `pattern` fails with an error.
    pub fn fail_nth(self, pattern: &str, n: u64) -> Self {
        self.rule(pattern, Trigger::Nth(n), FaultOutcome::Error)
    }

    /// The `n`-th (1-based) op at `pattern` is a torn write: only
    /// `fraction` of the payload persists.
    pub fn torn_nth(self, pattern: &str, n: u64, fraction: f64) -> Self {
        self.rule(pattern, Trigger::Nth(n), FaultOutcome::Torn { fraction })
    }

    /// The simulated machine crashes at the `n`-th (1-based) op at
    /// `pattern`.
    pub fn crash_nth(self, pattern: &str, n: u64) -> Self {
        self.rule(pattern, Trigger::Nth(n), FaultOutcome::Crash)
    }

    /// The simulated machine crashes at the `n`-th (1-based) injectable
    /// operation overall, whatever its site.
    pub fn crash_at_op(self, n: u64) -> Self {
        self.rule("*", Trigger::OpIndex(n), FaultOutcome::Crash)
    }

    /// Each op matching `pattern` suffers `outcome` independently with
    /// probability `p` (deterministic in the seed).
    pub fn with_probability(self, pattern: &str, p: f64, outcome: FaultOutcome) -> Self {
        self.rule(pattern, Trigger::Probability(p), outcome)
    }

    /// Arms the plane on this thread until the returned guard drops.
    /// Scopes nest; the innermost armed plane decides.
    pub fn arm(self) -> FaultScope {
        Arc::new(self).arm_shared()
    }

    /// Arms an already-shared plane (lets the caller keep a handle for
    /// inspecting counters while the scope is active).
    pub fn arm_shared(self: Arc<Self>) -> FaultScope {
        STACK.with(|s| s.borrow_mut().push(Arc::clone(&self)));
        FaultScope { plane: self }
    }

    /// Total injectable operations seen while armed.
    pub fn ops_seen(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Total faults delivered.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Operations seen per site, sorted by site name.
    pub fn site_ops(&self) -> Vec<(String, u64)> {
        self.lock_sites().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Every fault that fired, in firing order.
    pub fn injected_log(&self) -> Vec<InjectedFault> {
        self.lock_log().clone()
    }

    fn lock_rules(&self) -> qbism_check::sync::MutexGuard<'_, Vec<Rule>> {
        self.rules.lock_or_recover()
    }

    fn lock_sites(&self) -> qbism_check::sync::MutexGuard<'_, BTreeMap<String, u64>> {
        self.site_ops.lock_or_recover()
    }

    fn lock_log(&self) -> qbism_check::sync::MutexGuard<'_, Vec<InjectedFault>> {
        self.log.lock_or_recover()
    }

    /// Counts the op, evaluates rules in order, returns the first
    /// outcome that fires.
    fn decide(&self, site: &str) -> Option<FaultOutcome> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1; // 1-based
        {
            let mut sites = self.lock_sites();
            *sites.entry(site.to_string()).or_insert(0) += 1;
        }
        let mut rules = self.lock_rules();
        // Every matching rule counts the op (so `Nth` means "the n-th
        // op at this site", independent of other rules firing first);
        // only the first rule that fires delivers its outcome.
        let mut delivered: Option<FaultOutcome> = None;
        for (idx, rule) in rules.iter_mut().enumerate() {
            if rule.spent || !pattern_matches(&rule.pattern, site) {
                continue;
            }
            rule.matched += 1;
            if delivered.is_some() {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Nth(n) => rule.matched == n,
                Trigger::OpIndex(n) => op == n,
                Trigger::Probability(p) => unit_draw(self.seed, idx, op, site) < p,
                Trigger::Always => true,
            };
            if fires {
                if matches!(rule.trigger, Trigger::Nth(_) | Trigger::OpIndex(_)) {
                    rule.spent = true;
                }
                delivered = Some(rule.outcome);
            }
        }
        drop(rules);
        if let Some(outcome) = delivered {
            self.injected.fetch_add(1, Ordering::Relaxed);
            self.lock_log().push(InjectedFault { op, site: site.to_string(), outcome });
            record_injection(site, &outcome);
        }
        delivered
    }
}

/// RAII guard keeping a [`FaultPlane`] armed on the current thread.
#[derive(Debug)]
pub struct FaultScope {
    plane: Arc<FaultPlane>,
}

impl FaultScope {
    /// Handle to the armed plane (for counters and the injected log).
    pub fn plane(&self) -> Arc<FaultPlane> {
        Arc::clone(&self.plane)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|p| Arc::ptr_eq(p, &self.plane)) {
                stack.remove(pos);
            }
        });
    }
}

thread_local! {
    static STACK: RefCell<Vec<Arc<FaultPlane>>> = const { RefCell::new(Vec::new()) };
    /// Non-zero while recovery/rollback code runs: injection is
    /// suppressed so repairing the damage cannot itself be damaged.
    static SUPPRESS: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Whether any fault plane is armed on this thread.
pub fn active() -> bool {
    STACK.with(|s| !s.borrow().is_empty())
}

/// The innermost plane armed on this thread, if any.  Arming is
/// thread-local, so code that fans work out to a pool captures the
/// current plane and re-arms it in each worker (via
/// [`FaultPlane::arm_shared`]) to keep the schedule in force there.
pub fn current() -> Option<Arc<FaultPlane>> {
    STACK.with(|s| s.borrow().last().cloned())
}

/// The instrumentation point: call at each simulated-hardware operation.
/// Returns the outcome to honour, or `None` (the overwhelmingly common
/// case) when the op proceeds normally.
pub fn inject(site: &str) -> Option<FaultOutcome> {
    if SUPPRESS.with(std::cell::Cell::get) > 0 {
        return None;
    }
    let plane = STACK.with(|s| s.borrow().last().cloned())?;
    plane.decide(site)
}

/// Runs `f` with fault injection suppressed on this thread.  Recovery
/// paths use this: replaying a journal must not re-enter the schedule
/// that crashed the device.
pub fn suppressed<T>(f: impl FnOnce() -> T) -> T {
    SUPPRESS.with(|c| c.set(c.get() + 1));
    let out = f();
    SUPPRESS.with(|c| c.set(c.get().saturating_sub(1)));
    out
}

/// Stable 64-bit FNV-1a checksum, shared by the LFM journal and the
/// crash-sweep's byte-identity assertions.
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

/// Well-known fault-site names of the sharded warehouse tier.
///
/// The cluster router consults these around every sub-query dispatch,
/// so a plane armed on the client thread (and re-armed in fan-out
/// workers via [`FaultPlane::arm_shared`]) can kill a shard, degrade
/// it, or drop its answer leg at a deterministic routing point.  All
/// names are dotted lowercase, as the `fault-site-name` lint requires.
pub mod sites {
    /// Routing a sub-query to a shard finds its service dead.  Any
    /// outcome delivered here downs the shard; the router fails over
    /// to the next replica.
    pub const CLUSTER_SHARD_KILL: &str = "cluster.shard.kill";
    /// The shard answers, but slowly.  Arm with
    /// [`FaultOutcome::Latency`](crate::FaultOutcome::Latency); the
    /// extra seconds flow into the sub-query's simulated database time.
    pub const CLUSTER_SHARD_SLOW: &str = "cluster.shard.slow";
    /// The shard→router answer leg loses a message.  The per-shard
    /// channel retries with bounded backoff; exhausting the budget
    /// surfaces as a timeout and the router fails over.
    pub const CLUSTER_ROUTE_DROP: &str = "cluster.route.drop";
}

fn record_injection(site: &str, outcome: &FaultOutcome) {
    if !qbism_obs::enabled() {
        return;
    }
    static DESCRIBED: OnceLock<()> = OnceLock::new();
    let reg = qbism_obs::global();
    DESCRIBED.get_or_init(|| {
        reg.describe(
            "qbism_faults_injected_total",
            "Faults delivered by the injection plane, by site and outcome",
        );
    });
    reg.counter_with("qbism_faults_injected_total", &[("site", site), ("outcome", outcome.name())])
        .inc();
    qbism_obs::event::fault_injected(site, outcome.name());
    if matches!(outcome, FaultOutcome::Crash) {
        // Snapshot the flight recorder *after* journaling the fault, so
        // the dump's event slice ends with the crash that caused it.
        qbism_obs::event::capture_crash_dump(site);
    }
    let span = qbism_obs::trace::span("fault.inject");
    span.record_str("site", site);
    span.record_str("outcome", outcome.name());
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn inactive_plane_is_silent() {
        assert!(!active());
        assert_eq!(inject("lfm.write"), None);
    }

    #[test]
    fn nth_rule_fires_once_at_exactly_n() {
        let scope = FaultPlane::new(1).fail_nth("lfm.write", 3).arm();
        assert_eq!(inject("lfm.write"), None);
        assert_eq!(inject("lfm.read"), None); // different site: not counted for the rule
        assert_eq!(inject("lfm.write"), None);
        assert_eq!(inject("lfm.write"), Some(FaultOutcome::Error));
        assert_eq!(inject("lfm.write"), None); // one-shot
        let plane = scope.plane();
        assert_eq!(plane.ops_seen(), 5);
        assert_eq!(plane.faults_injected(), 1);
        let log = plane.injected_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].op, 4);
        assert_eq!(log[0].site, "lfm.write");
    }

    #[test]
    fn op_index_trigger_counts_all_sites() {
        let _scope = FaultPlane::new(1).crash_at_op(2).arm();
        assert_eq!(inject("a"), None);
        assert_eq!(inject("b"), Some(FaultOutcome::Crash));
        assert_eq!(inject("c"), None);
    }

    #[test]
    fn patterns_match_exact_glob_and_star() {
        assert!(pattern_matches("lfm.write", "lfm.write"));
        assert!(!pattern_matches("lfm.write", "lfm.writex"));
        assert!(pattern_matches("lfm.*", "lfm.write"));
        assert!(pattern_matches("lfm.*", "lfm.meta.write"));
        assert!(!pattern_matches("lfm.*", "lfmx.write"));
        assert!(!pattern_matches("lfm.*", "lfm"));
        assert!(pattern_matches("*", "anything"));
    }

    #[test]
    fn probability_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let scope =
                FaultPlane::new(seed).with_probability("net.send", 0.3, FaultOutcome::Drop).arm();
            let hits: Vec<bool> = (0..200).map(|_| inject("net.send").is_some()).collect();
            drop(scope);
            hits
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must reproduce the same fault sequence");
        assert_ne!(a, c, "different seeds should differ");
        let rate = a.iter().filter(|h| **h).count();
        assert!((30..=90).contains(&rate), "p=0.3 over 200 draws fired {rate} times");
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let outer = FaultPlane::new(1).rule("x", Trigger::Always, FaultOutcome::Error).arm();
        assert_eq!(inject("x"), Some(FaultOutcome::Error));
        {
            let _inner = FaultPlane::observer().arm();
            assert_eq!(inject("x"), None, "innermost (rule-free) plane decides");
        }
        assert_eq!(inject("x"), Some(FaultOutcome::Error), "outer plane resumes");
        drop(outer);
        assert!(!active());
    }

    #[test]
    fn observer_counts_without_failing() {
        let scope = FaultPlane::observer().arm();
        for _ in 0..5 {
            assert_eq!(inject("lfm.read"), None);
        }
        assert_eq!(inject("lfm.write"), None);
        let plane = scope.plane();
        assert_eq!(plane.ops_seen(), 6);
        assert_eq!(plane.faults_injected(), 0);
        assert_eq!(
            plane.site_ops(),
            vec![("lfm.read".to_string(), 5), ("lfm.write".to_string(), 1)]
        );
    }

    #[test]
    fn suppression_hides_ops_from_the_plane() {
        let scope = FaultPlane::new(1).rule("*", Trigger::Always, FaultOutcome::Error).arm();
        assert_eq!(suppressed(|| inject("lfm.write")), None);
        assert_eq!(inject("lfm.write"), Some(FaultOutcome::Error));
        assert_eq!(scope.plane().ops_seen(), 1, "suppressed ops are not even counted");
    }

    #[test]
    fn latency_and_torn_carry_parameters() {
        let _scope = FaultPlane::new(1)
            .rule("slow", Trigger::Always, FaultOutcome::Latency { seconds: 0.25 })
            .torn_nth("lfm.write", 1, 0.5)
            .arm();
        assert_eq!(inject("slow"), Some(FaultOutcome::Latency { seconds: 0.25 }));
        assert_eq!(inject("lfm.write"), Some(FaultOutcome::Torn { fraction: 0.5 }));
    }

    #[test]
    fn cluster_sites_are_dotted_lowercase_and_glob_matchable() {
        for site in
            [sites::CLUSTER_SHARD_KILL, sites::CLUSTER_SHARD_SLOW, sites::CLUSTER_ROUTE_DROP]
        {
            assert!(
                site.split('.').count() >= 2
                    && site.chars().all(|c| c.is_ascii_lowercase() || c == '.'),
                "site {site} must be dotted lowercase"
            );
            assert!(pattern_matches("cluster.*", site));
            assert!(pattern_matches(site, site));
        }
        // A plane armed on the whole cluster namespace hits a kill consult.
        let _scope =
            FaultPlane::new(3).rule("cluster.*", Trigger::Always, FaultOutcome::Error).arm();
        assert_eq!(inject(sites::CLUSTER_SHARD_KILL), Some(FaultOutcome::Error));
        assert_eq!(inject("net.send"), None);
    }

    #[test]
    fn checksum_is_stable() {
        assert_eq!(checksum(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(checksum(b"qbism"), checksum(b"qbism"));
        assert_ne!(checksum(b"qbism"), checksum(b"qbisn"));
    }
}
