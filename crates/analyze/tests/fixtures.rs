//! Seeded-bug fixture corpus: one deliberately broken mini-workspace
//! per analysis, plus its fixed form.  Broken forms must be caught
//! with the right rule, key, and call trace; fixed forms must come
//! back completely clean — both halves gate regressions in the
//! analyses themselves.

use qbism_analyze::report::Report;
use qbism_analyze::{analyze_root, AnalysisConfig};
use std::path::{Path, PathBuf};

fn fixture(name: &str, form: &str) -> Report {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name).join(form);
    analyze_root(&root, &AnalysisConfig::workspace())
        .unwrap_or_else(|e| panic!("scanning fixture {name}/{form}: {e}"))
}

fn assert_clean(name: &str) {
    let r = fixture(name, "fixed");
    assert!(
        r.findings.is_empty(),
        "fixed fixture `{name}` should be clean, got: {:#?}",
        r.findings
    );
}

#[test]
fn taint_broken_is_caught_with_full_path() {
    let r = fixture("taint", "broken");
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "det-taint")
        .unwrap_or_else(|| panic!("no det-taint finding: {:#?}", r.findings));
    assert_eq!(
        f.key,
        "det-taint @ crates/server/src/lib.rs:sample_clock -> crates/server/src/lib.rs:record"
    );
    assert!(f.message.contains("Instant::now"), "{}", f.message);
    assert!(f.message.contains("sim_db_seconds"), "{}", f.message);
    // Full source → confluence → sink trace: sample_clock ← run_query → record.
    let funcs: Vec<&str> = f.path.iter().map(|s| s.func.as_str()).collect();
    assert_eq!(funcs, vec!["server::sample_clock", "server::run_query", "server::record"]);
}

#[test]
fn taint_fixed_is_clean() {
    assert_clean("taint");
}

#[test]
fn kernel_broken_is_caught_across_files() {
    let r = fixture("kernel", "broken");
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "kernel-materialize")
        .unwrap_or_else(|| panic!("no kernel-materialize finding: {:#?}", r.findings));
    assert_eq!(
        f.key,
        "kernel-materialize @ crates/region/src/kernel.rs:intersect -> crates/region/src/support.rs:normalize"
    );
    assert!(f.message.contains("from_ids"), "{}", f.message);
    assert_eq!(f.path.len(), 2, "{:#?}", f.path);
}

#[test]
fn kernel_fixed_is_clean() {
    assert_clean("kernel");
}

#[test]
fn panic_broken_is_caught_with_shortest_path() {
    let r = fixture("panics", "broken");
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "panic-reach")
        .unwrap_or_else(|| panic!("no panic-reach finding: {:#?}", r.findings));
    assert_eq!(f.key, "panic-reach @ crates/server/src/lib.rs:lookup");
    assert!(f.message.contains("fetch_study"), "{}", f.message);
    assert!(f.message.contains(".unwrap()"), "{}", f.message);
    // Entry → resolve → lookup.
    let funcs: Vec<&str> = f.path.iter().map(|s| s.func.as_str()).collect();
    assert_eq!(
        funcs,
        vec!["server::MedicalServer::fetch_study", "server::resolve", "server::lookup"]
    );
}

#[test]
fn panic_fixed_is_clean() {
    assert_clean("panics");
}

#[test]
fn lock_inversion_is_caught_with_both_witnesses() {
    let r = fixture("locks", "broken");
    let f = r
        .findings
        .iter()
        .find(|f| f.rule == "lock-order")
        .unwrap_or_else(|| panic!("no lock-order finding: {:#?}", r.findings));
    assert_eq!(f.key, "lock-order @ pool.free <-> pool.used");
    assert_eq!(f.path.len(), 2, "{:#?}", f.path);
    assert!(f.path.iter().any(|s| s.func.contains("grab")), "{:#?}", f.path);
    assert!(f.path.iter().any(|s| s.func.contains("release")), "{:#?}", f.path);
}

#[test]
fn lock_fixed_is_clean() {
    assert_clean("locks");
}

/// The workspace gate: the real tree plus the checked-in allowlist
/// must come back clean, with every allowlist entry earning its keep.
/// This is the same contract CI's analyze-gate enforces via the
/// binary; failing here means either a new violation crept in or an
/// allowlist entry went stale.
#[test]
fn workspace_is_clean_under_the_checked_in_allowlist() {
    let root = workspace_root();
    let mut report = analyze_root(&root, &AnalysisConfig::workspace())
        .unwrap_or_else(|e| panic!("scanning workspace: {e}"));
    let text = std::fs::read_to_string(root.join("analyze-allowlist.txt"))
        .unwrap_or_else(|e| panic!("reading allowlist: {e}"));
    let entries =
        qbism_analyze::allowlist::parse(&text).unwrap_or_else(|e| panic!("allowlist: {e}"));
    let unused = qbism_analyze::allowlist::apply(&mut report, &entries);
    assert!(
        report.findings.is_empty(),
        "unallowlisted findings in the workspace:\n{}",
        report.findings.iter().map(|f| f.key.as_str()).collect::<Vec<_>>().join("\n")
    );
    assert!(
        unused.is_empty(),
        "stale allowlist entries (matched nothing): {:?}",
        unused.iter().map(|e| e.pattern.as_str()).collect::<Vec<_>>()
    );
}

/// Cross-check against the dynamic lockorder checker: every
/// `Mutex::named` field literal in production code must show up at
/// some static lock site the lock-order analysis can see (non-test
/// code outside the `check` crate itself).  A literal missing from
/// the static universe means the analysis is blind to a lock the
/// dynamic checker orders at runtime.
#[test]
fn every_named_mutex_is_visible_to_the_static_lock_analysis() {
    let root = workspace_root();
    let ws = qbism_analyze::graph::Workspace::scan(&root, &["bench".to_string()])
        .unwrap_or_else(|e| panic!("scanning workspace: {e}"));
    let cfg = AnalysisConfig::workspace();
    let marks = qbism_analyze::marks::mark_all(&ws, &cfg);

    // Named-field literals outside the check crate (its internal
    // mutexes model the primitive itself, not an ordering client).
    let named: std::collections::BTreeSet<String> = qbism_analyze::marks::named_mutexes(&ws)
        .into_values()
        .filter(|lit| !lit.starts_with("mutex"))
        .collect();
    assert!(!named.is_empty(), "no Mutex::named field literals found in the workspace");

    // The static universe, scoped exactly as the lock-order analysis
    // scopes it: non-test functions outside crate `check`.
    let mut universe = std::collections::BTreeSet::new();
    for (id, m) in marks.iter().enumerate() {
        let (file, _) = ws.location(id);
        if ws.funcs[id].item.in_test || qbism_analyze::graph::crate_of(&file) == "check" {
            continue;
        }
        universe.extend(m.locks.iter().map(|l| l.name.clone()));
    }
    assert!(!universe.is_empty(), "no static lock sites resolved in the workspace");

    let invisible: Vec<&String> = named.iter().filter(|n| !universe.contains(*n)).collect();
    assert!(
        invisible.is_empty(),
        "Mutex::named locks never seen at a static lock site: {invisible:?}\nstatic universe: {universe:?}"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}
