//! Fixed form: both paths acquire `pool.free` before `pool.used`, so
//! the ordering graph has edges in one direction only.

struct Pool {
    free: Mutex,
    used: Mutex,
}

impl Pool {
    fn init() -> Pool {
        Pool { free: Mutex::named("pool.free", 0), used: Mutex::named("pool.used", 0) }
    }

    pub fn grab(&self) {
        let f = self.free.lock_or_recover();
        let u = self.used.lock_or_recover();
    }

    pub fn release(&self) {
        let f = self.free.lock_or_recover();
        let u = self.used.lock_or_recover();
    }
}
