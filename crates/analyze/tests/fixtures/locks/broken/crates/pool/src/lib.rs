//! Seeded bug: `grab` takes `pool.free` then `pool.used`; `release`
//! takes them in the opposite order.  A concurrent grab/release pair
//! can deadlock — the static twin of what the dynamic lockorder
//! checker would flag only once a run actually interleaves them.

struct Pool {
    free: Mutex,
    used: Mutex,
}

impl Pool {
    fn init() -> Pool {
        Pool { free: Mutex::named("pool.free", 0), used: Mutex::named("pool.used", 0) }
    }

    pub fn grab(&self) {
        let f = self.free.lock_or_recover();
        let u = self.used.lock_or_recover();
    }

    pub fn release(&self) {
        let u = self.used.lock_or_recover();
        let f = self.free.lock_or_recover();
    }
}
