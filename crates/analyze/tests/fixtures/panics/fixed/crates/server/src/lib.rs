//! Fixed form: the miss is propagated as an error instead of
//! unwrapped, so no panic site is reachable from the entry point.

impl MedicalServer {
    pub fn fetch_study(&self, id: u32) -> Result<Study> {
        resolve(&self.catalog, id)
    }
}

fn resolve(catalog: &StudyCatalog, id: u32) -> Result<Study> {
    lookup(catalog, id)
}

fn lookup(catalog: &StudyCatalog, id: u32) -> Result<Study> {
    catalog.get(id).ok_or(QbismError::UnknownStudy(id))
}
