//! Seeded bug: a public `MedicalServer` entry point reaches an
//! `.unwrap()` two hops down.  A missing study id panics the server
//! instead of surfacing an error.

impl MedicalServer {
    pub fn fetch_study(&self, id: u32) -> Study {
        resolve(&self.catalog, id)
    }
}

fn resolve(catalog: &StudyCatalog, id: u32) -> Study {
    lookup(catalog, id)
}

fn lookup(catalog: &StudyCatalog, id: u32) -> Study {
    catalog.get(id).unwrap()
}
