//! Seeded bug: a wall-clock reading leaks into a deterministic cost
//! column through a helper.  `run_query` gets the tainted value back
//! from `sample_clock` and hands it to `record`, which writes
//! `sim_db_seconds` — a column the determinism contract says must be
//! derived from the simulated cost model only.

pub fn run_query(cost: &mut QueryCost) {
    let elapsed = sample_clock();
    record(cost, elapsed);
}

fn sample_clock() -> f64 {
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}

fn record(cost: &mut QueryCost, elapsed: f64) {
    cost.sim_db_seconds += elapsed;
}
