//! Fixed form: the simulated column is fed from the cost model, not
//! the wall clock.  No nondeterminism source shares a caller with the
//! deterministic sink, so the confluence closure is empty.

pub fn run_query(cost: &mut QueryCost) {
    let elapsed = simulated_seconds(4096);
    record(cost, elapsed);
}

fn simulated_seconds(pages: u64) -> f64 {
    pages as f64 * 0.012
}

fn record(cost: &mut QueryCost, elapsed: f64) {
    cost.sim_db_seconds += elapsed;
}
