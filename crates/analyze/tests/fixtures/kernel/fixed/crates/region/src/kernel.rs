//! Fixed form: the kernel merges through the streaming cursor helper
//! instead of the materializing one.

pub fn intersect(a: &RunList, b: &RunList) -> RunList {
    crate::support::merge_streams(a, b)
}
