//! Streaming merge: walks both sorted run lists with two cursors and
//! never expands a run into its individual ids.

pub fn merge_streams(a: &RunList, b: &RunList) -> RunList {
    let mut out = RunList::new();
    out.extend_sorted(a);
    out.extend_sorted(b);
    out
}
