//! Out-of-scope helper that materializes an id list — fine when
//! called from API edges, a contract violation when the kernel
//! reaches it.

pub fn normalize(a: &RunList) -> RunList {
    from_ids(a)
}

fn from_ids(a: &RunList) -> RunList {
    a.clone()
}
