//! Seeded bug: the kernel launders a banned materialization through a
//! helper in another file.  The line linter cannot see it — no
//! `from_ids` token appears here — but the call graph can.

pub fn intersect(a: &RunList, b: &RunList) -> RunList {
    let lhs = crate::support::normalize(a);
    lhs
}
