//! The checked-in allowlist.
//!
//! Format, one entry per line:
//!
//! ```text
//! # comment
//! <key pattern> :: <justification>
//! ```
//!
//! Patterns are matched against finding keys; `*` matches any
//! substring, anchored at both ends (`det-taint @ crates/core/* -> *`).
//! The justification is mandatory — an entry without one is a parse
//! error, so every suppression carries its reasoning in review.

use crate::report::Report;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub pattern: String,
    pub justification: String,
    /// 1-based line in the allowlist file (for unused-entry warnings).
    pub line: usize,
}

/// Parses allowlist text; rejects entries without a justification.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((pattern, justification)) = trimmed.split_once("::") else {
            return Err(format!(
                "allowlist line {line}: missing ` :: <justification>` — every suppression must say why"
            ));
        };
        let pattern = pattern.trim();
        let justification = justification.trim();
        if pattern.is_empty() || justification.is_empty() {
            return Err(format!("allowlist line {line}: empty pattern or justification"));
        }
        entries.push(Entry {
            pattern: pattern.to_string(),
            justification: justification.to_string(),
            line,
        });
    }
    Ok(entries)
}

/// Anchored glob match where `*` matches any substring.
pub fn glob_match(pattern: &str, s: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == s;
    }
    let first = parts[0];
    let last = parts[parts.len() - 1];
    if !s.starts_with(first) {
        return false;
    }
    let mut pos = first.len();
    for mid in &parts[1..parts.len() - 1] {
        if mid.is_empty() {
            continue;
        }
        match s[pos..].find(mid) {
            Some(i) => pos += i + mid.len(),
            None => return false,
        }
    }
    if last.is_empty() {
        return true;
    }
    match s[pos..].rfind(last) {
        Some(i) => pos + i + last.len() == s.len(),
        None => false,
    }
}

/// Moves matching findings into `report.allowlisted`; returns the
/// entries that matched nothing (candidates for removal).
pub fn apply(report: &mut Report, entries: &[Entry]) -> Vec<Entry> {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for finding in report.findings.drain(..) {
        match entries.iter().position(|e| glob_match(&e.pattern, &finding.key)) {
            Some(i) => {
                used[i] = true;
                report.allowlisted.push((finding, entries[i].justification.clone()));
            }
            None => kept.push(finding),
        }
    }
    report.findings = kept;
    entries.iter().zip(used).filter(|(_, u)| !u).map(|(e, _)| e.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_semantics() {
        assert!(glob_match("a", "a"));
        assert!(!glob_match("a", "ab"));
        assert!(glob_match("a*", "ab"));
        assert!(glob_match("*b", "ab"));
        assert!(glob_match("a*c", "abc"));
        assert!(!glob_match("a*c", "abd"));
        assert!(glob_match(
            "det-taint @ crates/core/* -> *",
            "det-taint @ crates/core/src/server.rs:run -> crates/lfm/src/acct.rs:tally"
        ));
        assert!(!glob_match(
            "det-taint @ crates/core/* -> *",
            "panic-reach @ crates/core/src/server.rs:run"
        ));
        assert!(glob_match("*", "anything"));
    }

    #[test]
    fn entries_require_justification() {
        assert!(parse("panic-reach @ x").is_err());
        assert!(parse("panic-reach @ x ::   ").is_err());
        let ok = parse("# header\n\npanic-reach @ x :: invariant: checked above\n").expect("parse");
        assert_eq!(ok.len(), 1);
        assert_eq!(ok[0].pattern, "panic-reach @ x");
        assert_eq!(ok[0].justification, "invariant: checked above");
        assert_eq!(ok[0].line, 3);
    }

    #[test]
    fn apply_moves_matches_and_reports_unused() {
        use crate::report::{Finding, Report};
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "panic-reach".to_string(),
            key: "panic-reach @ crates/x/src/lib.rs:f".to_string(),
            message: String::new(),
            path: Vec::new(),
        });
        let entries =
            parse("panic-reach @ crates/x/* :: fine\nlock-order @ never <-> matches :: stale\n")
                .expect("parse");
        let unused = apply(&mut r, &entries);
        assert!(r.findings.is_empty());
        assert_eq!(r.allowlisted.len(), 1);
        assert_eq!(r.allowlisted[0].1, "fine");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].line, 2);
    }
}
