//! Panic reachability from public entry points.
//!
//! Entry points are the public methods of the served types
//! (`MedicalServer`, `Database`, `ClusterWarehouse`).  Any function
//! reachable from one that contains a panic site is reported with the
//! shortest entry → function call path.  Explicit panics
//! (`.unwrap()`, `.expect(`, `panic!` family) report under
//! `panic-reach`; slice indexing — pervasive and usually
//! bounds-correct by construction — reports separately under
//! `index-reach` so it can be allowlisted at file granularity without
//! masking new unwraps.

use super::Ctx;
use crate::reach::{multi_source, unwind_multi};
use crate::report::{steps, Finding};

pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let n = ctx.ws.funcs.len();
    let entries: Vec<usize> = (0..n)
        .filter(|&i| {
            let f = &ctx.ws.funcs[i].item;
            f.is_pub
                && !f.in_test
                && f.impl_type
                    .as_deref()
                    .is_some_and(|t| ctx.cfg.entry_types.iter().any(|e| e == t))
        })
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let (parent, dist) = multi_source(ctx.adj, &entries);

    let mut findings = Vec::new();
    for (id, d) in dist.iter().enumerate() {
        if d.is_none() || ctx.marks[id].panics.is_empty() {
            continue;
        }
        let path = unwind_multi(&parent, id);
        let (hard, index): (Vec<_>, Vec<_>) =
            ctx.marks[id].panics.iter().partition(|m| m.what != "slice index");
        if !hard.is_empty() {
            let sites: Vec<String> =
                hard.iter().take(3).map(|m| format!("`{}` at line {}", m.what, m.line)).collect();
            let more =
                if hard.len() > 3 { format!(" (+{} more)", hard.len() - 3) } else { String::new() };
            findings.push(Finding {
                rule: "panic-reach".to_string(),
                key: format!("panic-reach @ {}", ctx.loc(id)),
                message: format!(
                    "panic site reachable from entry point `{}` ({} hops): {}{more}",
                    ctx.ws.funcs[path[0]].qualified,
                    path.len() - 1,
                    sites.join(", ")
                ),
                path: steps(ctx.ws, &path),
            });
        }
        if !index.is_empty() {
            findings.push(Finding {
                rule: "index-reach".to_string(),
                key: format!("index-reach @ {}", ctx.loc(id)),
                message: format!(
                    "{} slice-index site(s) (first at line {}) reachable from entry point `{}`",
                    index.len(),
                    index[0].line,
                    ctx.ws.funcs[path[0]].qualified,
                ),
                path: steps(ctx.ws, &path),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use crate::test_util::analyze_files;

    #[test]
    fn unwrap_reachable_from_entry_point_is_flagged_with_path() {
        let r = analyze_files(&[(
            "crates/core/src/server.rs",
            "impl MedicalServer {\n\
               pub fn query(&self) -> Result<u32> { helper() }\n\
             }\n\
             fn helper() -> Result<u32> { Ok(inner()) }\n\
             fn inner() -> u32 { Some(1).unwrap() }\n",
        )]);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "panic-reach" && f.key.contains("inner"))
            .expect("panic-reach finding");
        assert_eq!(f.path.len(), 3, "{:?}", f.path);
        assert!(f.path[0].func.contains("query"));
    }

    #[test]
    fn unreachable_unwrap_is_not_flagged() {
        let r = analyze_files(&[(
            "crates/core/src/server.rs",
            "impl MedicalServer { pub fn query(&self) -> Result<u32> { Ok(0) } }\n\
             fn orphan() -> u32 { Some(1).unwrap() }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "panic-reach"), "{:?}", r.findings);
    }

    #[test]
    fn indexing_reports_under_its_own_rule() {
        let r = analyze_files(&[(
            "crates/core/src/server.rs",
            "impl MedicalServer { pub fn query(&self, v: &[u32]) -> u32 { v[0] } }\n",
        )]);
        assert!(r.findings.iter().any(|f| f.rule == "index-reach"));
        assert!(r.findings.iter().all(|f| f.rule != "panic-reach"));
    }

    #[test]
    fn private_methods_are_not_entry_points() {
        let r = analyze_files(&[(
            "crates/core/src/server.rs",
            "impl MedicalServer { fn internal(&self) -> u32 { Some(1).unwrap() } }\n",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "panic-reach"), "{:?}", r.findings);
    }
}
