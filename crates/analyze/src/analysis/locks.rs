//! Static lock-order analysis.
//!
//! Lock sites come from `marks` (`.lock()` / `.lock_or_recover()` on
//! a receiver whose name resolves to a `Mutex::named` literal where
//! the initializer is visible).  A `let`-bound guard is approximated
//! as held to the end of the function; while held, every later lock
//! site in the same body — and every lock transitively acquired by a
//! later callee — yields an ordering edge `a → b`.  A pair with edges
//! in both directions is a potential deadlock cycle, the static twin
//! of the dynamic `lockorder` checker's runtime graph.

use super::Ctx;
use crate::marks::FnMarks;
use crate::report::{Finding, Step};
use std::collections::{BTreeMap, BTreeSet};

/// `a → b` witness: which function ordered the pair, and where.
#[derive(Debug, Clone)]
struct Witness {
    func: usize,
    first_line: u32,
    second_line: u32,
}

pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let trans = transitive_locks(ctx.marks, ctx.adj);
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();

    for (id, m) in ctx.marks.iter().enumerate() {
        // The facade crate implements the lock types themselves; its
        // internal synchronization is the dynamic checker's model, not
        // an ordering client.
        if ctx.ws.funcs[id].item.in_test || ctx.crate_of(id) == "check" {
            continue;
        }
        for (i, site) in m.locks.iter().enumerate() {
            if !site.held {
                continue;
            }
            // Later lock sites in the same body.
            for later in &m.locks[i + 1..] {
                record(&mut edges, &site.name, &later.name, id, site.line, later.line);
            }
            // Locks acquired by callees invoked while the guard is held.
            for edge in &ctx.ws.calls[id] {
                if edge.pos <= site.pos {
                    continue;
                }
                for callee_lock in &trans[edge.callee] {
                    record(&mut edges, &site.name, callee_lock, id, site.line, edge.line);
                }
            }
        }
    }

    let mut findings = Vec::new();
    for ((a, b), w_ab) in &edges {
        if a >= b {
            continue;
        }
        let Some(w_ba) = edges.get(&(b.clone(), a.clone())) else { continue };
        let step = |w: &Witness, first: &str, second: &str| {
            let (file, _) = ctx.ws.location(w.func);
            Step {
                func: format!(
                    "{} (locks `{first}` at line {}, then `{second}` via line {})",
                    ctx.ws.funcs[w.func].qualified, w.first_line, w.second_line
                ),
                file,
                line: w.first_line,
                call_line: None,
            }
        };
        findings.push(Finding {
            rule: "lock-order".to_string(),
            key: format!("lock-order @ {a} <-> {b}"),
            message: format!(
                "lock order inversion: `{a}` → `{b}` and `{b}` → `{a}` both occur; a concurrent pair can deadlock"
            ),
            path: vec![step(w_ab, a, b), step(w_ba, b, a)],
        });
    }
    findings
}

/// Lock names each function may acquire, directly or transitively
/// (fixpoint over the call graph; cycles converge because sets only
/// grow).
pub fn transitive_locks(marks: &[FnMarks], adj: &[Vec<usize>]) -> Vec<BTreeSet<String>> {
    let mut trans: Vec<BTreeSet<String>> =
        marks.iter().map(|m| m.locks.iter().map(|l| l.name.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for id in 0..trans.len() {
            let mut add: Vec<String> = Vec::new();
            for &callee in &adj[id] {
                for name in &trans[callee] {
                    if !trans[id].contains(name) {
                        add.push(name.clone());
                    }
                }
            }
            if !add.is_empty() {
                changed = true;
                trans[id].extend(add);
            }
        }
        if !changed {
            return trans;
        }
    }
}

/// Every lock name seen at any static lock site — cross-checked by the
/// workspace gate against the `Mutex::named` registry the dynamic
/// `lockorder` checker orders at runtime.
pub fn lock_universe(marks: &[FnMarks]) -> BTreeSet<String> {
    marks.iter().flat_map(|m| m.locks.iter().map(|l| l.name.clone())).collect()
}

fn record(
    edges: &mut BTreeMap<(String, String), Witness>,
    a: &str,
    b: &str,
    func: usize,
    first_line: u32,
    second_line: u32,
) {
    if a == b {
        return;
    }
    edges.entry((a.to_string(), b.to_string())).or_insert(Witness {
        func,
        first_line,
        second_line,
    });
}

#[cfg(test)]
mod tests {
    use crate::test_util::analyze_files;

    const TWO_LOCKS: &str = "struct S { a: Mutex, b: Mutex }\n\
        impl S {\n\
          fn init() -> S { S { a: Mutex::named(\"s.a\", 0), b: Mutex::named(\"s.b\", 0) } }\n";

    #[test]
    fn direct_inversion_is_flagged() {
        let src = format!(
            "{TWO_LOCKS}\
              fn ab(&self) {{ let g = self.a.lock_or_recover(); let h = self.b.lock_or_recover(); }}\n\
              fn ba(&self) {{ let g = self.b.lock_or_recover(); let h = self.a.lock_or_recover(); }}\n\
            }}"
        );
        let r = analyze_files(&[("crates/x/src/lib.rs", &src)]);
        let f = r.findings.iter().find(|f| f.rule == "lock-order").expect("inversion");
        assert_eq!(f.key, "lock-order @ s.a <-> s.b");
        assert_eq!(f.path.len(), 2);
    }

    #[test]
    fn inversion_through_a_callee_is_flagged() {
        let src = format!(
            "{TWO_LOCKS}\
              fn ab(&self) {{ let g = self.a.lock_or_recover(); self.take_b(); }}\n\
              fn take_b(&self) {{ let h = self.b.lock_or_recover(); }}\n\
              fn ba(&self) {{ let g = self.b.lock_or_recover(); let h = self.a.lock_or_recover(); }}\n\
            }}"
        );
        let r = analyze_files(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.findings.iter().any(|f| f.rule == "lock-order"), "{:?}", r.findings);
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = format!(
            "{TWO_LOCKS}\
              fn ab(&self) {{ let g = self.a.lock_or_recover(); let h = self.b.lock_or_recover(); }}\n\
              fn ab2(&self) {{ let g = self.a.lock_or_recover(); self.take_b(); }}\n\
              fn take_b(&self) {{ let h = self.b.lock_or_recover(); }}\n\
            }}"
        );
        let r = analyze_files(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.findings.iter().all(|f| f.rule != "lock-order"), "{:?}", r.findings);
    }

    #[test]
    fn unheld_temporary_guards_do_not_order() {
        // `self.a.lock();` without a binding drops the guard at the
        // end of the statement: no ordering edge to the later lock.
        let src = format!(
            "{TWO_LOCKS}\
              fn ab(&self) {{ self.a.lock(); let h = self.b.lock_or_recover(); }}\n\
              fn ba(&self) {{ let g = self.b.lock_or_recover(); self.a.lock(); }}\n\
            }}"
        );
        let r = analyze_files(&[("crates/x/src/lib.rs", &src)]);
        assert!(r.findings.iter().all(|f| f.rule != "lock-order"), "{:?}", r.findings);
    }
}
