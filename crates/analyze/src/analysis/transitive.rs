//! Transitive lifting of the line-level workspace rules.
//!
//! The linter flags `from_ids` / `decode_all` / raw `std::sync` *in
//! the file where they appear*; these analyses lift the same rules to
//! reachability, catching the laundering case where kernel or facade
//! code calls a helper in an out-of-scope file that performs the
//! banned operation.  Direct (zero-hop) uses are the linter's job and
//! are not re-reported here.

use super::Ctx;
use crate::reach::shortest_path_to;
use crate::report::{steps, Finding};
use std::collections::{BTreeMap, BTreeSet};

/// Is this function in a kernel file of one of the scoped crates?
fn in_kernel_scope(ctx: &Ctx<'_>, id: usize, crates: &[String]) -> bool {
    let file = ctx.file_of(id);
    let name = file.rsplit('/').next().unwrap_or(file);
    name.contains("kernel") && crates.iter().any(|c| c == ctx.crate_of(id))
}

pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    kernel_rule(
        ctx,
        &mut findings,
        "kernel-materialize",
        &ctx.cfg.kernel_crates_materialize,
        |m| &m.materialize,
        "kernel code must not reach an id-materializing helper; stream the sorted run lists",
    );
    kernel_rule(
        ctx,
        &mut findings,
        "kernel-full-decode",
        &ctx.cfg.kernel_crates_decode,
        |m| &m.full_decode,
        "kernel code must not reach a full-decode helper; merge through the streaming cursor",
    );
    raw_sync(ctx, &mut findings);
    findings
}

fn kernel_rule(
    ctx: &Ctx<'_>,
    findings: &mut Vec<Finding>,
    rule: &str,
    crates: &[String],
    marks_of: impl Fn(&crate::marks::FnMarks) -> &Vec<crate::marks::Mark>,
    contract: &str,
) {
    let n = ctx.ws.funcs.len();
    // Targets: marked functions *outside* kernel scope (in-scope uses
    // are direct lint findings).
    let targets: BTreeSet<usize> = (0..n)
        .filter(|&i| !marks_of(&ctx.marks[i]).is_empty() && !in_kernel_scope(ctx, i, crates))
        .collect();
    if targets.is_empty() {
        return;
    }
    for id in 0..n {
        if !in_kernel_scope(ctx, id, crates) || ctx.ws.funcs[id].item.in_test {
            continue;
        }
        // Each reachable target gets its own stable key.
        for &t in &targets {
            if t == id {
                continue;
            }
            let Some(path) = shortest_path_to(ctx.adj, id, &[t].into_iter().collect()) else {
                continue;
            };
            if path.len() < 2 {
                continue;
            }
            let mark = &marks_of(&ctx.marks[t])[0];
            findings.push(Finding {
                rule: rule.to_string(),
                key: format!("{rule} @ {} -> {}", ctx.loc(id), ctx.loc(t)),
                message: format!(
                    "{contract}: reaches `{}` (line {}) outside kernel scope",
                    mark.what, mark.line
                ),
                path: steps(ctx.ws, &path),
            });
        }
    }
}

fn raw_sync(ctx: &Ctx<'_>, findings: &mut Vec<Finding>) {
    let n = ctx.ws.funcs.len();
    let facade = |c: &str| ctx.cfg.facade_crates.iter().any(|f| f == c);
    let targets: BTreeSet<usize> = (0..n)
        .filter(|&i| {
            let c = ctx.crate_of(i);
            !ctx.marks[i].raw_sync.is_empty() && !facade(c) && c != "check"
        })
        .collect();
    if targets.is_empty() {
        return;
    }
    // One finding per (facade crate, target file): the pairing is what
    // the allowlist reasons about, not each individual caller.
    let mut best: BTreeMap<(String, String), (Vec<usize>, usize)> = BTreeMap::new();
    for id in 0..n {
        if !facade(ctx.crate_of(id)) || ctx.ws.funcs[id].item.in_test {
            continue;
        }
        let Some(path) = shortest_path_to(ctx.adj, id, &targets) else { continue };
        if path.len() < 2 {
            continue;
        }
        let t = *path.last().unwrap_or(&id);
        let pair = (ctx.crate_of(id).to_string(), ctx.file_of(t).to_string());
        let entry = best.entry(pair).or_insert_with(|| (path.clone(), t));
        if path.len() < entry.0.len() {
            *entry = (path, t);
        }
    }
    for ((crate_name, file), (path, t)) in best {
        let mark = &ctx.marks[t].raw_sync[0];
        findings.push(Finding {
            rule: "raw-sync".to_string(),
            key: format!("raw-sync @ {crate_name} -> {file}"),
            message: format!(
                "facade crate `{crate_name}` reaches raw `{}` (line {}) in `{file}`, outside the model checker's view",
                mark.what, mark.line
            ),
            path: steps(ctx.ws, &path),
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::test_util::analyze_files;

    #[test]
    fn kernel_reaching_materializing_helper_is_flagged() {
        let r = analyze_files(&[
            (
                "crates/region/src/kernel.rs",
                "pub fn merge(a: &Run, b: &Run) -> Run { expand(a) }",
            ),
            (
                "crates/region/src/helper.rs",
                "pub fn expand(a: &Run) -> Run { from_ids(a) }\nfn from_ids(a: &Run) -> Run { a.clone() }",
            ),
        ]);
        assert!(
            r.findings.iter().any(|f| f.rule == "kernel-materialize" && f.key.contains("expand")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn direct_kernel_use_is_left_to_the_linter() {
        let r = analyze_files(&[(
            "crates/region/src/kernel.rs",
            "pub fn merge(a: &Run) -> Run { from_ids(a) }",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "kernel-materialize"), "{:?}", r.findings);
    }

    #[test]
    fn facade_crate_reaching_raw_sync_helper_is_flagged() {
        let r = analyze_files(&[
            ("crates/lfm/src/lib.rs", "pub fn account() { tally() }"),
            ("crates/util/src/lib.rs", "pub fn tally() { let m = std::sync::Mutex::new(0); }"),
        ]);
        assert!(
            r.findings.iter().any(|f| f.rule == "raw-sync" && f.key.contains("lfm")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn non_facade_crates_may_use_raw_sync() {
        let r = analyze_files(&[(
            "crates/util/src/lib.rs",
            "pub fn tally() { let m = std::sync::Mutex::new(0); }",
        )]);
        assert!(r.findings.iter().all(|f| f.rule != "raw-sync"), "{:?}", r.findings);
    }
}
