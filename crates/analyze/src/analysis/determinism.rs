//! Determinism taint: nondeterminism sources must not reach
//! deterministic sinks along any call path.
//!
//! Sources are wall-clock reads, hash-order iteration, thread
//! identity, and environment reads; sinks are writes to deterministic
//! `QueryCost`/`IoStats`/`NetStats` columns, table emitters, and span
//! minting (see `marks`).  With no data-flow, the call-graph
//! approximation is the *confluence* closure: a tainted value can
//! travel from source fn `s` to sink fn `t` when some function `c`
//! transitively calls both — the value returns up the `c → … → s`
//! chain and is passed down the `c → … → t` chain.  `c = s` is plain
//! argument flow, `c = t` is return flow, and `c = s = t` is inline
//! co-occurrence.
//!
//! Each confluence point contributes one `(nearest source, nearest
//! sink)` pair; pairs are deduplicated, and the stable key
//! `det-taint @ <source fn> -> <sink fn>` is what the allowlist
//! matches.

use super::Ctx;
use crate::reach::{multi_source, reverse, unwind_multi};
use crate::report::{Finding, Step};
use std::collections::BTreeSet;

pub fn run(ctx: &Ctx<'_>) -> Vec<Finding> {
    let n = ctx.ws.funcs.len();
    let sources: Vec<usize> = (0..n).filter(|&i| !ctx.marks[i].det_sources.is_empty()).collect();
    let sinks: Vec<usize> = (0..n).filter(|&i| !ctx.marks[i].det_sinks.is_empty()).collect();
    if sources.is_empty() || sinks.is_empty() {
        return Vec::new();
    }
    let radj = reverse(ctx.adj);
    let (sparent, sdist) = multi_source(&radj, &sources);
    let (tparent, tdist) = multi_source(&radj, &sinks);

    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut findings = Vec::new();
    for c in 0..n {
        if sdist[c].is_none() || tdist[c].is_none() {
            continue;
        }
        // `unwind_multi` walks the reversed-graph parents: the result
        // is `[s, …, c]`, i.e. the original call chain c → … → s read
        // backwards.
        let down_to_source = unwind_multi(&sparent, c);
        let down_to_sink = unwind_multi(&tparent, c);
        let (s, t) = (down_to_source[0], down_to_sink[0]);
        if !pairs.insert((s, t)) {
            continue;
        }
        let src = &ctx.marks[s].det_sources[0];
        let snk = &ctx.marks[t].det_sinks[0];

        // Full source → sink path: s … c … t.
        let mut nodes: Vec<usize> = down_to_source;
        nodes.extend(down_to_sink.iter().rev().skip(1));
        let path = path_steps(ctx, &nodes);

        let shape = if s == t {
            "inline in one function".to_string()
        } else if c == s {
            "via argument flow".to_string()
        } else if c == t {
            "via callee return flow".to_string()
        } else {
            format!("returning through `{}`", ctx.ws.funcs[c].qualified)
        };
        findings.push(Finding {
            rule: "det-taint".to_string(),
            key: format!("det-taint @ {} -> {}", ctx.loc(s), ctx.loc(t)),
            message: format!(
                "nondeterminism source `{}` (line {}) can reach deterministic sink `{}` (line {}) {shape}",
                src.what, src.line, snk.what, snk.line
            ),
            path,
        });
    }
    findings
}

/// Steps for a source→sink node list whose first half runs against the
/// call direction: the connecting call-site line is looked up in
/// whichever direction the edge exists.
fn path_steps(ctx: &Ctx<'_>, nodes: &[usize]) -> Vec<Step> {
    let mut out = Vec::with_capacity(nodes.len());
    for (i, &id) in nodes.iter().enumerate() {
        let (file, line) = ctx.ws.location(id);
        let call_line = if i == 0 {
            None
        } else {
            let prev = nodes[i - 1];
            ctx.ws.edge_line(prev, id).or_else(|| ctx.ws.edge_line(id, prev))
        };
        out.push(Step { func: ctx.ws.funcs[id].qualified.clone(), file, line, call_line });
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::test_util::analyze_source;

    #[test]
    fn confluence_through_a_common_caller_is_flagged() {
        let src = "\
            fn entry(c: &mut QueryCost) { let t = helper(); apply(c, t); }\n\
            fn helper() -> f64 { jitter() }\n\
            fn jitter() -> f64 { let t = Instant::now(); 0.0 }\n\
            fn apply(c: &mut QueryCost, t: f64) { c.sim_db_seconds += t; }\n";
        let r = analyze_source(src);
        let f = r
            .findings
            .iter()
            .find(|f| f.rule == "det-taint")
            .unwrap_or_else(|| panic!("no det-taint finding: {:?}", r.findings));
        assert!(f.key.contains("jitter") && f.key.contains("apply"), "{}", f.key);
        // Full path: jitter ← helper ← entry → apply.
        let funcs: Vec<&str> = f.path.iter().map(|s| s.func.as_str()).collect();
        assert_eq!(funcs, vec!["x::jitter", "x::helper", "x::entry", "x::apply"]);
        assert!(f.message.contains("entry"), "{}", f.message);
    }

    #[test]
    fn argument_flow_is_flagged() {
        let src = "\
            fn timed(c: &mut QueryCost) { let t = Instant::now(); apply(c); }\n\
            fn apply(c: &mut QueryCost) { c.sim_db_seconds += 1.0; }\n";
        let r = analyze_source(src);
        assert!(
            r.findings.iter().any(|f| f.rule == "det-taint"
                && f.key.contains("timed")
                && f.key.contains("apply")),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn inline_co_occurrence_is_flagged() {
        let src = "fn f(c: &mut QueryCost) { let t = Instant::now(); c.sim_db_seconds = 0.0; }\n";
        let r = analyze_source(src);
        assert!(r.findings.iter().any(|f| f.rule == "det-taint" && f.path.len() == 1));
    }

    #[test]
    fn unconnected_source_and_sink_are_clean() {
        let src = "\
            fn a() { let t = Instant::now(); }\n\
            fn b(c: &mut QueryCost) { c.sim_db_seconds = 0.0; }\n";
        let r = analyze_source(src);
        assert!(r.findings.iter().all(|f| f.rule != "det-taint"), "{:?}", r.findings);
    }

    #[test]
    fn native_db_seconds_is_not_a_sink() {
        let src =
            "fn f(c: &mut QueryCost) { let t = Instant::now(); c.native_db_seconds = 0.1; }\n";
        let r = analyze_source(src);
        assert!(r.findings.iter().all(|f| f.rule != "det-taint"), "{:?}", r.findings);
    }
}
