//! The four call-graph analyses.
//!
//! Each takes the same [`Ctx`] (workspace, per-function marks,
//! deduplicated adjacency, config) and returns [`Finding`]s with
//! stable keys; `lib.rs` runs them all and applies the allowlist.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod transitive;

use crate::graph::Workspace;
use crate::marks::FnMarks;
use crate::AnalysisConfig;

/// Shared read-only analysis context.
pub struct Ctx<'a> {
    pub ws: &'a Workspace,
    pub marks: &'a [FnMarks],
    pub adj: &'a [Vec<usize>],
    pub cfg: &'a AnalysisConfig,
}

impl Ctx<'_> {
    /// Short stable location used in allowlist keys: `file:fn`.
    pub fn loc(&self, id: usize) -> String {
        let (file, _) = self.ws.location(id);
        format!("{file}:{}", self.ws.funcs[id].item.name)
    }

    pub fn crate_of(&self, id: usize) -> &str {
        &self.ws.files[self.ws.funcs[id].file].crate_name
    }

    pub fn file_of(&self, id: usize) -> &str {
        &self.ws.files[self.ws.funcs[id].file].rel
    }
}
