//! Item-level Rust parser over the shared lexer.
//!
//! This is not a full grammar: it recovers exactly the structure the
//! call-graph analyses need — modules, inherent/trait impls, function
//! items with signatures and body token ranges, struct field types
//! (for method-receiver resolution), and `std::sync` imports.  Bodies
//! are kept as raw token ranges; expression structure is recovered
//! lazily by the call-extraction pass in `graph`.
//!
//! Known approximations (documented in DESIGN.md): nested `fn` items
//! and closures are attributed to their enclosing function; macro
//! bodies are scanned as plain token streams; `#[cfg(...)]` selections
//! other than `test` are treated as always-compiled.

use qbism_check::lexer::{lex, Token, TokenKind};

/// One parsed source file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel: String,
    /// `crates/<name>/src/…` → `<name>`; the workspace's own `src/`
    /// tree is crate `suite`.
    pub crate_name: String,
    pub tokens: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    /// Banned `std::sync` names this file imports (`Mutex`,
    /// `AtomicU64`, …) — ownership types (`Arc` etc.) excluded.
    pub raw_sync_imports: Vec<String>,
}

/// A function item (free fn, inherent/trait method, or trait default
/// method).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// The `impl` target's (or trait's) last path segment, if any.
    pub impl_type: Option<String>,
    /// Defined inside `impl Trait for Type` or a `trait` declaration.
    pub in_trait: bool,
    /// Inline-module path within the file (file-level path is added by
    /// the graph layer).
    pub modules: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    pub is_pub: bool,
    pub has_self: bool,
    pub returns_result: bool,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub in_test: bool,
    /// Body token range `[start, end)` into [`ParsedFile::tokens`]
    /// (the tokens between, not including, the outer braces).  Empty
    /// for bodyless trait-method declarations.
    pub body: (usize, usize),
}

/// A struct with named fields: `field → outermost type segment`
/// (`cache: Mutex<PageCache>` → `("cache", "Mutex")`).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub fields: Vec<(String, String)>,
}

/// `std::sync` leaf names that carry no locking/ordering behaviour.
const SYNC_OWNERSHIP_OK: &[&str] = &[
    "Arc",
    "Weak",
    "OnceLock",
    "Once",
    "PoisonError",
    "LockResult",
    "TryLockError",
    "mpsc",
    "Ordering",
    "self",
    "atomic",
];

/// Keywords that can directly precede `(` without being a call.
pub const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "fn", "impl", "where",
    "use", "mod", "struct", "enum", "trait", "type", "const", "static", "ref", "mut", "else",
    "break", "continue", "dyn", "move", "unsafe", "pub", "crate", "super", "async", "await",
];

pub fn is_call_keyword(name: &str) -> bool {
    CALL_KEYWORDS.contains(&name)
}

/// Parses one file's source text.
pub fn parse_file(source: &str, rel: &str, crate_name: &str) -> ParsedFile {
    let tokens = lex(source);
    let mut file = ParsedFile {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        tokens: Vec::new(),
        fns: Vec::new(),
        structs: Vec::new(),
        raw_sync_imports: Vec::new(),
    };
    let end = tokens.len();
    let mut ctx = Ctx { tokens: &tokens, out: &mut file };
    parse_items(&mut ctx, 0, end, &ItemScope::default());
    file.tokens = tokens;
    file
}

/// Scope inherited while recursing into modules / impls / traits.
#[derive(Debug, Clone, Default)]
struct ItemScope {
    modules: Vec<String>,
    impl_type: Option<String>,
    in_trait: bool,
    in_test: bool,
}

struct Ctx<'a> {
    tokens: &'a [Token],
    out: &'a mut ParsedFile,
}

/// Pending per-item modifiers reset after each item.
#[derive(Debug, Clone, Default)]
struct Pending {
    is_pub: bool,
    cfg_test: bool,
    is_test_attr: bool,
}

fn parse_items(ctx: &mut Ctx<'_>, mut i: usize, end: usize, scope: &ItemScope) {
    let mut pending = Pending::default();
    while i < end {
        let tok = &ctx.tokens[i];
        match &tok.kind {
            TokenKind::Punct('#') => {
                let (cfg_test, is_test, next) = parse_attr(ctx.tokens, i, end);
                pending.cfg_test |= cfg_test;
                pending.is_test_attr |= is_test;
                i = next;
            }
            TokenKind::Ident(name) => match name.as_str() {
                "pub" => {
                    pending.is_pub = true;
                    i += 1;
                    if i < end && ctx.tokens[i].is_punct('(') {
                        i = skip_balanced(ctx.tokens, i, end, '(', ')');
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    // `extern "C" fn` (modifier) vs `extern crate x;`.
                    i += 1;
                    if i < end && matches!(ctx.tokens[i].kind, TokenKind::Str(_)) {
                        i += 1;
                    } else {
                        i = skip_to_semi(ctx.tokens, i, end);
                        pending = Pending::default();
                    }
                }
                "const" => {
                    // `const fn` is a modifier; `const X: T = …;` is an item.
                    if ctx.tokens.get(i + 1).is_some_and(|t| t.is_ident("fn")) {
                        i += 1;
                    } else {
                        i = skip_to_semi(ctx.tokens, i, end);
                        pending = Pending::default();
                    }
                }
                "fn" => {
                    i = parse_fn(ctx, i, end, scope, &pending);
                    pending = Pending::default();
                }
                "mod" => {
                    i = parse_mod(ctx, i, end, scope, &pending);
                    pending = Pending::default();
                }
                "impl" => {
                    i = parse_impl(ctx, i, end, scope, &pending);
                    pending = Pending::default();
                }
                "trait" => {
                    i = parse_trait(ctx, i, end, scope, &pending);
                    pending = Pending::default();
                }
                "struct" => {
                    i = parse_struct(ctx, i, end, &pending);
                    pending = Pending::default();
                }
                "enum" | "union" => {
                    i += 1;
                    while i < end && !ctx.tokens[i].is_punct('{') && !ctx.tokens[i].is_punct(';') {
                        i += 1;
                    }
                    if i < end && ctx.tokens[i].is_punct('{') {
                        i = skip_balanced(ctx.tokens, i, end, '{', '}');
                    } else {
                        i += 1;
                    }
                    pending = Pending::default();
                }
                "use" => {
                    let semi = skip_to_semi(ctx.tokens, i, end);
                    record_sync_imports(ctx, i + 1, semi.saturating_sub(1));
                    i = semi;
                    pending = Pending::default();
                }
                "static" | "type" => {
                    i = skip_to_semi(ctx.tokens, i, end);
                    pending = Pending::default();
                }
                "macro_rules" => {
                    // macro_rules! name { … }
                    i += 1;
                    while i < end && !ctx.tokens[i].is_punct('{') {
                        i += 1;
                    }
                    i = skip_balanced(ctx.tokens, i, end, '{', '}');
                    pending = Pending::default();
                }
                _ => {
                    i += 1;
                    pending = Pending::default();
                }
            },
            TokenKind::Punct('{') => {
                i = skip_balanced(ctx.tokens, i, end, '{', '}');
                pending = Pending::default();
            }
            _ => {
                i += 1;
                pending = Pending::default();
            }
        }
    }
}

/// Parses `#…[…]` starting at the `#`; returns (is cfg(test)-like,
/// is #[test]-like, index after the attribute).
fn parse_attr(tokens: &[Token], i: usize, end: usize) -> (bool, bool, usize) {
    let mut j = i + 1;
    if j < end && tokens[j].is_punct('!') {
        j += 1;
    }
    if j >= end || !tokens[j].is_punct('[') {
        return (false, false, i + 1);
    }
    let close = skip_balanced(tokens, j, end, '[', ']');
    let body = &tokens[j + 1..close.saturating_sub(1).max(j + 1)];
    let idents: Vec<&str> = body.iter().filter_map(Token::ident).collect();
    let cfg_test = idents.first() == Some(&"cfg") && idents.contains(&"test");
    // `#[test]`, `#[tokio::test]`, but not `#[cfg(test)]`.
    let is_test = !cfg_test && idents.last() == Some(&"test");
    (cfg_test, is_test, close)
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index
/// after the item.
fn parse_fn(
    ctx: &mut Ctx<'_>,
    i: usize,
    end: usize,
    scope: &ItemScope,
    pending: &Pending,
) -> usize {
    let line = ctx.tokens[i].line;
    let mut j = i + 1;
    let name = match ctx.tokens.get(j).and_then(Token::ident) {
        Some(n) => n.to_string(),
        None => return i + 1,
    };
    j += 1;
    if j < end && ctx.tokens[j].is_punct('<') {
        j = skip_angles(ctx.tokens, j, end);
    }
    if j >= end || !ctx.tokens[j].is_punct('(') {
        return j;
    }
    let params_end = skip_balanced(ctx.tokens, j, end, '(', ')');
    let has_self = params_have_self(&ctx.tokens[j + 1..params_end.saturating_sub(1).max(j + 1)]);
    j = params_end;

    // Return type + where clause: scan to the body `{` or a `;`.
    let mut returns_result = false;
    let mut depth = 0i64;
    while j < end {
        match &ctx.tokens[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('<') if !prev_is(ctx.tokens, j, '-') => depth += 1,
            TokenKind::Punct('>')
                if !prev_is(ctx.tokens, j, '-') && !prev_is(ctx.tokens, j, '=') =>
            {
                depth -= 1
            }
            TokenKind::Punct('{') if depth <= 0 => break,
            TokenKind::Punct(';') if depth <= 0 => {
                // Bodyless trait-method declaration.
                ctx.out.fns.push(FnItem {
                    name,
                    impl_type: scope.impl_type.clone(),
                    in_trait: scope.in_trait,
                    modules: scope.modules.clone(),
                    line,
                    is_pub: pending.is_pub,
                    has_self,
                    returns_result,
                    in_test: scope.in_test || pending.cfg_test || pending.is_test_attr,
                    body: (0, 0),
                });
                return j + 1;
            }
            TokenKind::Ident(id) if id == "Result" || id.ends_with("Result") => {
                returns_result = true
            }
            _ => {}
        }
        j += 1;
    }
    if j >= end {
        return end;
    }
    let body_end = skip_balanced(ctx.tokens, j, end, '{', '}');
    ctx.out.fns.push(FnItem {
        name,
        impl_type: scope.impl_type.clone(),
        in_trait: scope.in_trait,
        modules: scope.modules.clone(),
        line,
        is_pub: pending.is_pub,
        has_self,
        returns_result,
        in_test: scope.in_test || pending.cfg_test || pending.is_test_attr,
        body: (j + 1, body_end.saturating_sub(1).max(j + 1)),
    });
    body_end
}

fn parse_mod(
    ctx: &mut Ctx<'_>,
    i: usize,
    end: usize,
    scope: &ItemScope,
    pending: &Pending,
) -> usize {
    let mut j = i + 1;
    let name = match ctx.tokens.get(j).and_then(Token::ident) {
        Some(n) => n.to_string(),
        None => return i + 1,
    };
    j += 1;
    if j < end && ctx.tokens[j].is_punct(';') {
        return j + 1;
    }
    if j >= end || !ctx.tokens[j].is_punct('{') {
        return j;
    }
    let body_end = skip_balanced(ctx.tokens, j, end, '{', '}');
    let mut inner = scope.clone();
    inner.modules.push(name);
    inner.in_test = scope.in_test || pending.cfg_test;
    inner.impl_type = None;
    inner.in_trait = false;
    parse_items(ctx, j + 1, body_end.saturating_sub(1).max(j + 1), &inner);
    body_end
}

fn parse_impl(
    ctx: &mut Ctx<'_>,
    i: usize,
    end: usize,
    scope: &ItemScope,
    pending: &Pending,
) -> usize {
    let mut j = i + 1;
    if j < end && ctx.tokens[j].is_punct('<') {
        j = skip_angles(ctx.tokens, j, end);
    }
    // Header tokens up to `{` (or `where`).
    let mut header: Vec<usize> = Vec::new();
    let mut depth = 0i64;
    while j < end {
        match &ctx.tokens[j].kind {
            TokenKind::Punct('<') if !prev_is(ctx.tokens, j, '-') => depth += 1,
            TokenKind::Punct('>')
                if !prev_is(ctx.tokens, j, '-') && !prev_is(ctx.tokens, j, '=') =>
            {
                depth -= 1
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') if depth <= 0 => break,
            TokenKind::Ident(w) if w == "where" && depth <= 0 => break,
            _ => {}
        }
        header.push(j);
        j += 1;
    }
    // Skip a where clause.
    while j < end && !ctx.tokens[j].is_punct('{') {
        j += 1;
    }
    if j >= end {
        return end;
    }

    // `impl Trait for Type` → self type after `for`; else whole header.
    let mut in_trait = false;
    let mut type_tokens: &[usize] = &header;
    if let Some(pos) = header.iter().position(|&t| ctx.tokens[t].is_ident("for")) {
        in_trait = true;
        type_tokens = &header[pos + 1..];
    }
    let impl_type = last_type_segment(ctx.tokens, type_tokens);

    let body_end = skip_balanced(ctx.tokens, j, end, '{', '}');
    let mut inner = scope.clone();
    inner.impl_type = impl_type;
    inner.in_trait = in_trait;
    inner.in_test = scope.in_test || pending.cfg_test;
    parse_items(ctx, j + 1, body_end.saturating_sub(1).max(j + 1), &inner);
    body_end
}

fn parse_trait(
    ctx: &mut Ctx<'_>,
    i: usize,
    end: usize,
    scope: &ItemScope,
    pending: &Pending,
) -> usize {
    let mut j = i + 1;
    let name = match ctx.tokens.get(j).and_then(Token::ident) {
        Some(n) => n.to_string(),
        None => return i + 1,
    };
    while j < end && !ctx.tokens[j].is_punct('{') && !ctx.tokens[j].is_punct(';') {
        j += 1;
    }
    if j >= end || ctx.tokens[j].is_punct(';') {
        return j.saturating_add(1).min(end);
    }
    let body_end = skip_balanced(ctx.tokens, j, end, '{', '}');
    let mut inner = scope.clone();
    inner.impl_type = Some(name);
    inner.in_trait = true;
    inner.in_test = scope.in_test || pending.cfg_test;
    parse_items(ctx, j + 1, body_end.saturating_sub(1).max(j + 1), &inner);
    body_end
}

fn parse_struct(ctx: &mut Ctx<'_>, i: usize, end: usize, pending: &Pending) -> usize {
    let mut j = i + 1;
    let name = match ctx.tokens.get(j).and_then(Token::ident) {
        Some(n) => n.to_string(),
        None => return i + 1,
    };
    j += 1;
    if j < end && ctx.tokens[j].is_punct('<') {
        j = skip_angles(ctx.tokens, j, end);
    }
    // Skip a where clause before the body.
    while j < end
        && !ctx.tokens[j].is_punct('{')
        && !ctx.tokens[j].is_punct('(')
        && !ctx.tokens[j].is_punct(';')
    {
        j += 1;
    }
    if j >= end {
        return end;
    }
    if ctx.tokens[j].is_punct('(') {
        // Tuple struct: skip to the terminating `;`.
        let close = skip_balanced(ctx.tokens, j, end, '(', ')');
        return skip_to_semi(ctx.tokens, close, end);
    }
    if ctx.tokens[j].is_punct(';') {
        return j + 1;
    }
    let body_end = skip_balanced(ctx.tokens, j, end, '{', '}');
    if pending.cfg_test {
        return body_end;
    }
    let mut fields = Vec::new();
    let mut k = j + 1;
    let inner_end = body_end.saturating_sub(1).max(j + 1);
    while k < inner_end {
        // Skip attributes and `pub(…)`.
        if ctx.tokens[k].is_punct('#') {
            let (_, _, next) = parse_attr(ctx.tokens, k, inner_end);
            k = next;
            continue;
        }
        if ctx.tokens[k].is_ident("pub") {
            k += 1;
            if k < inner_end && ctx.tokens[k].is_punct('(') {
                k = skip_balanced(ctx.tokens, k, inner_end, '(', ')');
            }
            continue;
        }
        let Some(field) = ctx.tokens.get(k).and_then(Token::ident).map(str::to_string) else {
            k += 1;
            continue;
        };
        if k + 1 >= inner_end || !ctx.tokens[k + 1].is_punct(':') {
            k += 1;
            continue;
        }
        // Type tokens to the next `,` at depth 0.
        let mut t = k + 2;
        let mut depth = 0i64;
        let mut ty: Vec<usize> = Vec::new();
        while t < inner_end {
            match &ctx.tokens[t].kind {
                TokenKind::Punct('<') if !prev_is(ctx.tokens, t, '-') => depth += 1,
                TokenKind::Punct('>') if !prev_is(ctx.tokens, t, '-') => depth -= 1,
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct(',') if depth <= 0 => break,
                _ => {}
            }
            ty.push(t);
            t += 1;
        }
        if let Some(seg) = last_type_segment(ctx.tokens, &ty) {
            fields.push((field, seg));
        }
        k = t + 1;
    }
    ctx.out.structs.push(StructItem { name, fields });
    body_end
}

/// The outermost type's last path segment: the last identifier seen at
/// angle/paren/bracket depth 0 (`std::sync::Arc<Foo>` → `Arc`,
/// `&'a mut Foo` → `Foo`).
fn last_type_segment(tokens: &[Token], indices: &[usize]) -> Option<String> {
    let mut depth = 0i64;
    let mut last: Option<String> = None;
    for &t in indices {
        match &tokens[t].kind {
            TokenKind::Punct('<') if !prev_is(tokens, t, '-') => depth += 1,
            TokenKind::Punct('>') if !prev_is(tokens, t, '-') => depth -= 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Ident(id)
                if depth <= 0
                    && !matches!(
                        id.as_str(),
                        "mut" | "dyn" | "impl" | "const" | "where" | "as"
                    ) =>
            {
                last = Some(id.clone());
            }
            _ => {}
        }
    }
    last
}

/// True when a parameter list starts with a receiver (`self`,
/// `&self`, `&'a mut self`, `mut self`).
fn params_have_self(params: &[Token]) -> bool {
    for tok in params.iter().take(5) {
        match &tok.kind {
            TokenKind::Ident(id) if id == "self" => return true,
            TokenKind::Ident(id) if id == "mut" => continue,
            TokenKind::Punct('&') => continue,
            TokenKind::Lifetime(_) => continue,
            _ => return false,
        }
    }
    false
}

/// Records banned `std::sync` imports from the token span of one `use`
/// statement (exclusive of `use` and `;`).
fn record_sync_imports(ctx: &mut Ctx<'_>, start: usize, end: usize) {
    let toks = &ctx.tokens[start..end.min(ctx.tokens.len())];
    let idents: Vec<&str> = toks.iter().filter_map(Token::ident).collect();
    // Must start `std::sync::…` (or `::std::sync::…`).
    if idents.len() < 3 || idents[0] != "std" || idents[1] != "sync" {
        return;
    }
    for id in &idents[2..] {
        let banned = !SYNC_OWNERSHIP_OK.contains(id)
            && (matches!(*id, "Mutex" | "RwLock" | "Condvar" | "Barrier" | "mpsc")
                || id.starts_with("Atomic"));
        if banned && !ctx.out.raw_sync_imports.iter().any(|b| b == id) {
            ctx.out.raw_sync_imports.push((*id).to_string());
        }
    }
}

// ---------------------------------------------------------------------------
// Token-walk helpers (shared with graph)
// ---------------------------------------------------------------------------

/// Index after the group opened by `open` at `i` (or `end`).
pub fn skip_balanced(tokens: &[Token], i: usize, end: usize, open: char, close: char) -> usize {
    debug_assert!(i >= tokens.len() || tokens[i].is_punct(open));
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        if tokens[j].is_punct(open) {
            depth += 1;
        } else if tokens[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Index after a generic group `<…>` opened at `i`; `->` and `=>`
/// arrows do not count as angle brackets.
pub fn skip_angles(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < end {
        if tokens[j].is_punct('<') && !prev_is(tokens, j, '-') && !prev_is(tokens, j, '<') {
            depth += 1;
        } else if tokens[j].is_punct('>') && !prev_is(tokens, j, '-') && !prev_is(tokens, j, '=') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    end
}

/// Index after the next `;` at brace depth 0 (skipping `{…}` groups,
/// so `static X: T = { … };` works).
pub fn skip_to_semi(tokens: &[Token], i: usize, end: usize) -> usize {
    let mut j = i;
    while j < end {
        if tokens[j].is_punct('{') {
            j = skip_balanced(tokens, j, end, '{', '}');
            continue;
        }
        if tokens[j].is_punct(';') {
            return j + 1;
        }
        j += 1;
    }
    end
}

fn prev_is(tokens: &[Token], i: usize, c: char) -> bool {
    i > 0 && tokens[i - 1].is_punct(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src, "crates/x/src/lib.rs", "x")
    }

    #[test]
    fn extracts_free_and_method_fns() {
        let f = parse(
            "pub fn free(a: u32) -> Result<u32> { helper(a) }\n\
             struct S { inner: Mutex<u64> }\n\
             impl S {\n  pub fn method(&self) -> u32 { 1 }\n  fn private(&mut self) {}\n}\n\
             impl Drop for S { fn drop(&mut self) {} }",
        );
        let names: Vec<(&str, Option<&str>, bool)> =
            f.fns.iter().map(|x| (x.name.as_str(), x.impl_type.as_deref(), x.in_trait)).collect();
        assert_eq!(
            names,
            vec![
                ("free", None, false),
                ("method", Some("S"), false),
                ("private", Some("S"), false),
                ("drop", Some("S"), true),
            ]
        );
        assert!(f.fns[0].returns_result && f.fns[0].is_pub && !f.fns[0].has_self);
        assert!(f.fns[1].has_self && f.fns[1].is_pub);
        assert_eq!(f.structs.len(), 1);
        assert_eq!(f.structs[0].fields, vec![("inner".to_string(), "Mutex".to_string())]);
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_marked() {
        let f = parse(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { prod() }\n  fn helper() {}\n}",
        );
        let by_name = |n: &str| f.fns.iter().find(|x| x.name == n).map(|x| x.in_test);
        assert_eq!(by_name("prod"), Some(false));
        assert_eq!(by_name("t"), Some(true));
        assert_eq!(by_name("helper"), Some(true));
    }

    #[test]
    fn generics_where_clauses_and_fn_pointers_parse() {
        let f = parse(
            "pub fn map<T, F: Fn(T) -> T>(xs: Vec<T>, f: F) -> Vec<T> where T: Clone { xs }\n\
             fn takes_ptr(g: fn(u32) -> u32) -> u32 { g(3) }",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].name, "map");
        assert_eq!(f.fns[1].name, "takes_ptr");
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let f = parse(
            "pub trait Cursor {\n  fn peek(&self) -> Option<u64>;\n  fn count(&mut self) -> usize { 0 }\n}",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[0].body, (0, 0));
        assert!(
            f.fns[1].body.0 < f.fns[1].body.1
                || f.fns[1].body == (f.fns[1].body.0, f.fns[1].body.0)
        );
        assert!(f.fns.iter().all(|x| x.in_trait && x.impl_type.as_deref() == Some("Cursor")));
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let f = parse("mod outer { mod inner { fn deep() {} } fn shallow() {} }");
        let deep = f.fns.iter().find(|x| x.name == "deep").map(|x| x.modules.clone());
        assert_eq!(deep, Some(vec!["outer".to_string(), "inner".to_string()]));
    }

    #[test]
    fn sync_imports_recorded() {
        let f = parse(
            "use std::sync::{Arc, Mutex};\nuse std::sync::atomic::{AtomicU64, Ordering};\nuse std::collections::HashMap;",
        );
        assert_eq!(f.raw_sync_imports, vec!["Mutex".to_string(), "AtomicU64".to_string()]);
    }

    #[test]
    fn impl_headers_with_generics() {
        let f = parse("impl<T: Clone> Wrapper<T> { fn get(&self) -> &T { &self.0 } }");
        assert_eq!(f.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn macro_rules_bodies_do_not_leak_items() {
        let f = parse("macro_rules! m { ($x:expr) => { fn fake() {} }; }\nfn real() {}");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }
}
