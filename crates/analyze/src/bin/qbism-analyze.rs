//! The `qbism-analyze` gate binary.
//!
//! ```text
//! qbism-analyze [--root DIR] [--allowlist FILE] [--json FILE]
//! ```
//!
//! Scans the workspace, runs all four analyses, applies the allowlist
//! (default `<root>/analyze-allowlist.txt`, if present), prints human
//! diagnostics with call traces, optionally writes the JSON report,
//! and exits non-zero when any unallowlisted finding remains — the CI
//! analyze-gate contract.

use qbism_analyze::{allowlist, analyze_root, AnalysisConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut allow = None;
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--root" => root = PathBuf::from(value("--root")?),
            "--allowlist" => allow = Some(PathBuf::from(value("--allowlist")?)),
            "--json" => json = Some(PathBuf::from(value("--json")?)),
            "--help" | "-h" => {
                return Err("usage: qbism-analyze [--root DIR] [--allowlist FILE] [--json FILE]"
                    .to_string())
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args { root, allowlist: allow, json })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let started = Instant::now();
    let mut report = match analyze_root(&args.root, &AnalysisConfig::workspace()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qbism-analyze: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.stats.scan_ms = started.elapsed().as_millis();

    // Allowlist: explicit path must exist; the default is optional.
    let allow_path =
        args.allowlist.clone().unwrap_or_else(|| args.root.join("analyze-allowlist.txt"));
    let mut unused = Vec::new();
    match std::fs::read_to_string(&allow_path) {
        Ok(text) => match allowlist::parse(&text) {
            Ok(entries) => {
                unused = allowlist::apply(&mut report, &entries);
                report.finalize();
            }
            Err(msg) => {
                eprintln!("qbism-analyze: {}: {msg}", allow_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(e) if args.allowlist.is_some() => {
            eprintln!("qbism-analyze: {}: {e}", allow_path.display());
            return ExitCode::FAILURE;
        }
        Err(_) => {}
    }

    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("qbism-analyze: writing {}: {e}", json_path.display());
            return ExitCode::FAILURE;
        }
    }

    let s = &report.stats;
    println!(
        "qbism-analyze: {} files, {} functions, {} call edges ({}/{} call sites resolved), {} ms",
        s.files, s.functions, s.edges, s.resolved_call_sites, s.call_sites, s.scan_ms
    );
    for (rule, n) in &s.per_rule {
        println!("  {rule}: {n} finding(s)");
    }
    if !report.allowlisted.is_empty() {
        println!(
            "  allowlisted: {} finding(s) suppressed with justification",
            report.allowlisted.len()
        );
    }
    for entry in &unused {
        println!(
            "  warning: allowlist entry at line {} matched nothing: `{}`",
            entry.line, entry.pattern
        );
    }

    if report.findings.is_empty() {
        println!("qbism-analyze: clean");
        return ExitCode::SUCCESS;
    }
    println!();
    for finding in &report.findings {
        print!("{}", finding.render());
        println!();
    }
    println!(
        "qbism-analyze: {} unallowlisted finding(s) — fix them or add a justified allowlist entry",
        report.findings.len()
    );
    ExitCode::FAILURE
}
