//! Workspace module map and function-level call graph.
//!
//! Files are collected the same way the linter's gate walks the tree
//! (`crates/*/src/**.rs` plus the root `src/`), parsed with
//! [`crate::parser`], and joined into one function table.  Call edges
//! are *name-based* (no type inference): qualified calls resolve
//! through `Type::method` / `module::fn` suffixes, bare calls resolve
//! same-module → same-crate → workspace-unique, and method calls
//! resolve through receiver typing (`self`, `self.field` via struct
//! field types, `let`-bound locals) with a conservative name-based
//! fallback.  The approximations are listed in DESIGN.md.

use crate::parser::{is_call_keyword, parse_file, skip_angles, FnItem, ParsedFile};
use qbism_check::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One function in the workspace call graph.
#[derive(Debug)]
pub struct Func {
    /// Index into [`Workspace::files`].
    pub file: usize,
    pub item: FnItem,
    /// Display name: `crate::module::Type::name`.
    pub qualified: String,
}

/// A resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    pub callee: usize,
    /// 1-based source line of the call site.
    pub line: u32,
    /// Token index of the callee name (ordering within the caller).
    pub pos: usize,
}

/// The parsed workspace.
pub struct Workspace {
    pub files: Vec<ParsedFile>,
    pub funcs: Vec<Func>,
    /// Outgoing call edges per function (caller-ordered by position).
    pub calls: Vec<Vec<CallEdge>>,
    /// `(type, field) → outermost field type segment`.
    pub field_types: BTreeMap<(String, String), String>,
    /// Resolved / total call-site counts (graph density stats).
    pub resolved_calls: usize,
    pub total_calls: usize,
}

/// Methods so common on std types that a name-based fallback edge
/// would be noise; receiver-typed resolution still links them.
const COMMON_STD_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "clone",
    "cloned",
    "copied",
    "collect",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "map",
    "and_then",
    "or_else",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "to_string",
    "to_vec",
    "to_owned",
    "as_str",
    "as_ref",
    "as_mut",
    "as_bytes",
    "as_slice",
    "as_deref",
    "into",
    "from",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "total_cmp",
    "hash",
    "default",
    "drop",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "round",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "dedup",
    "extend",
    "clear",
    "join",
    "split",
    "splitn",
    "trim",
    "parse",
    "write",
    "read",
    "flush",
    "take",
    "replace",
    "swap",
    "zip",
    "enumerate",
    "sum",
    "product",
    "count",
    "last",
    "first",
    "rev",
    "chain",
    "skip",
    "skip_while",
    "take_while",
    "step_by",
    "windows",
    "chunks",
    "starts_with",
    "ends_with",
    "find",
    "rfind",
    "position",
    "any",
    "all",
    "retain",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "keys",
    "values",
    "drain",
    "truncate",
    "resize",
    "reserve",
    "with_capacity",
    "split_at",
    "split_off",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "saturating_add",
    "saturating_sub",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "wrapping_add",
    "wrapping_sub",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "get_or_init",
    "get_or_insert_with",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "expect",
    "unwrap",
    "push_str",
    "chars",
    "bytes",
    "lines",
    "flatten",
    "copied",
    "peekable",
    "peek",
    "nth",
    "front",
    "back",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "range",
    "abs_diff",
    "powi",
    "powf",
    "sqrt",
    "exp",
    "ln",
    "log2",
    "to_le_bytes",
    "to_be_bytes",
    "from_le_bytes",
    "contains_key",
    "rsplit",
    "strip_prefix",
    "strip_suffix",
];

impl Workspace {
    /// Scans a workspace root (a directory with `crates/*/src`, plus
    /// an optional root `src/`) or, for fixture corpora, any directory
    /// containing a `crates/` tree.  `skip_crates` names crates whose
    /// sources are harness code and stay out of the graph.
    pub fn scan(root: &Path, skip_crates: &[String]) -> std::io::Result<Workspace> {
        let mut paths = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            for entry in std::fs::read_dir(&crates_dir)? {
                let dir = entry?.path();
                let name = dir.file_name().map(|n| n.to_string_lossy().to_string());
                if name.as_deref().is_some_and(|n| skip_crates.iter().any(|s| s == n)) {
                    continue;
                }
                let src = dir.join("src");
                if src.is_dir() {
                    collect_rs(&src, &mut paths)?;
                }
            }
            let root_src = root.join("src");
            if root_src.is_dir() {
                collect_rs(&root_src, &mut paths)?;
            }
        } else {
            collect_rs(root, &mut paths)?;
        }
        paths.sort();

        let mut files = Vec::new();
        for path in &paths {
            let source = std::fs::read_to_string(path)?;
            let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
            let crate_name = crate_of(&rel).to_string();
            files.push(parse_file(&source, &rel, &crate_name));
        }
        Ok(Workspace::link(files))
    }

    /// Builds the function table and resolves call edges.
    pub fn link(files: Vec<ParsedFile>) -> Workspace {
        let mut funcs = Vec::new();
        let mut field_types = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for s in &file.structs {
                for (field, ty) in &s.fields {
                    field_types.insert((s.name.clone(), field.clone()), ty.clone());
                }
            }
            for item in &file.fns {
                let qualified = qualified_name(file, item);
                funcs.push(Func { file: fi, item: item.clone(), qualified });
            }
        }

        // Per-function module paths, owned up-front so the resolution
        // indices below can borrow them.
        let modules: Vec<Vec<String>> =
            funcs.iter().map(|f| module_path(&files[f.file], &f.item)).collect();

        // Resolution indices over non-test functions.
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_module: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_global: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, f) in funcs.iter().enumerate() {
            if f.item.in_test {
                continue;
            }
            let name = f.item.name.as_str();
            if let Some(ty) = f.item.impl_type.as_deref() {
                typed.entry((ty, name)).or_default().push(id);
                if f.item.has_self {
                    methods_by_name.entry(name).or_default().push(id);
                }
            } else {
                let file = &files[f.file];
                if let Some(last) = modules[id].last() {
                    free_by_module.entry((last.as_str(), name)).or_default().push(id);
                }
                free_by_crate.entry((file.crate_name.as_str(), name)).or_default().push(id);
                free_global.entry(name).or_default().push(id);
            }
        }

        let mut calls: Vec<Vec<CallEdge>> = vec![Vec::new(); funcs.len()];
        let mut resolved = 0usize;
        let mut total = 0usize;
        for id in 0..funcs.len() {
            if funcs[id].item.in_test {
                continue;
            }
            let file = &files[funcs[id].file];
            let (start, end) = funcs[id].item.body;
            if start >= end {
                continue;
            }
            let locals = local_types(&file.tokens, start, end);
            let sites = call_sites(&file.tokens, start, end);
            total += sites.len();
            let mut edges = Vec::new();
            for site in sites {
                let targets = resolve(
                    &site,
                    &funcs[id],
                    file,
                    &locals,
                    &field_types,
                    &typed,
                    &free_by_module,
                    &free_by_crate,
                    &free_global,
                    &methods_by_name,
                );
                if !targets.is_empty() {
                    resolved += 1;
                }
                for callee in targets {
                    edges.push(CallEdge { callee, line: site.line, pos: site.pos });
                }
            }
            calls[id] = edges;
        }

        Workspace { files, funcs, calls, field_types, resolved_calls: resolved, total_calls: total }
    }

    /// Deduplicated adjacency (callee set per function).
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        self.calls
            .iter()
            .map(|edges| {
                let set: BTreeSet<usize> = edges.iter().map(|e| e.callee).collect();
                set.into_iter().collect()
            })
            .collect()
    }

    /// Total resolved edge count.
    pub fn edge_count(&self) -> usize {
        self.calls.iter().map(Vec::len).sum()
    }

    /// `file:line` of a function's definition.
    pub fn location(&self, id: usize) -> (String, u32) {
        (self.files[self.funcs[id].file].rel.clone(), self.funcs[id].item.line)
    }

    /// The line of the first edge `caller → callee`, if any.
    pub fn edge_line(&self, caller: usize, callee: usize) -> Option<u32> {
        self.calls[caller].iter().find(|e| e.callee == callee).map(|e| e.line)
    }
}

/// `crates/<name>/src/…` → `<name>`; anything else → `suite` (matches
/// the linter's convention).
pub fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => "suite",
    }
}

/// File-level module path (from the path under `src/`) plus the item's
/// inline modules.
fn module_path(file: &ParsedFile, item: &FnItem) -> Vec<String> {
    let mut modules = Vec::new();
    if let Some(idx) = file.rel.find("src/") {
        let under = &file.rel[idx + 4..];
        for part in under.split('/') {
            let stem = part.strip_suffix(".rs").unwrap_or(part);
            if stem != "lib" && stem != "main" && stem != "mod" && !stem.is_empty() {
                modules.push(stem.to_string());
            }
        }
    }
    modules.extend(item.modules.iter().cloned());
    modules
}

fn qualified_name(file: &ParsedFile, item: &FnItem) -> String {
    let mut parts = vec![file.crate_name.clone()];
    parts.extend(module_path(file, item));
    if let Some(ty) = &item.impl_type {
        parts.push(ty.clone());
    }
    parts.push(item.name.clone());
    parts.join("::")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Call-site extraction
// ---------------------------------------------------------------------------

/// One syntactic call site inside a body.
#[derive(Debug)]
pub struct CallSite {
    pub name: String,
    /// `a::b::name(` → `["a", "b"]`.
    pub qualifier: Vec<String>,
    /// Receiver chain for `.name(` calls: `self.field.name(` →
    /// `["self", "field"]`; `None` when the receiver is an expression.
    pub receiver: Option<Vec<String>>,
    pub is_method: bool,
    pub line: u32,
    pub pos: usize,
}

/// Extracts every `name(`, `path::name(`, `.name(` and
/// `name::<T>(` site in `[start, end)`.
pub fn call_sites(tokens: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut sites = Vec::new();
    let mut j = start;
    while j < end {
        let Some(name) = tokens[j].ident() else {
            j += 1;
            continue;
        };
        if is_call_keyword(name) {
            j += 1;
            continue;
        }
        // Where does the argument list open?  Either directly, or
        // after a turbofish `::<…>`.
        let mut open = j + 1;
        if open + 2 < end
            && tokens[open].is_punct(':')
            && tokens[open + 1].is_punct(':')
            && tokens[open + 2].is_punct('<')
        {
            open = skip_angles(tokens, open + 2, end);
        }
        if open >= end || !tokens[open].is_punct('(') {
            j += 1;
            continue;
        }
        // Macro invocation (`name!(…)`) is not a call.
        if j > 0 && tokens[j - 1].is_punct('!') {
            j = open;
            continue;
        }
        let is_method = j >= 1 && tokens[j - 1].is_punct('.');
        let mut qualifier = Vec::new();
        let mut receiver = None;
        if is_method {
            receiver = receiver_chain(tokens, j - 1, start);
        } else {
            // Walk back `ident ::` pairs.
            let mut k = j;
            while k >= 2 && tokens[k - 1].is_punct(':') && tokens[k - 2].is_punct(':') {
                if k >= 3 {
                    if let Some(seg) = tokens[k - 3].ident() {
                        qualifier.insert(0, seg.to_string());
                        k -= 3;
                        continue;
                    }
                }
                break;
            }
        }
        sites.push(CallSite {
            name: name.to_string(),
            qualifier,
            receiver,
            is_method,
            line: tokens[j].line,
            pos: j,
        });
        j = open;
    }
    sites
}

/// Walks back from the `.` at `dot` to recover a simple receiver
/// chain (`self`, `self.field`, `var`).  Returns `None` for
/// expression receivers (`foo().bar(`, `xs[i].bar(`).
fn receiver_chain(tokens: &[Token], dot: usize, start: usize) -> Option<Vec<String>> {
    let mut chain = Vec::new();
    let mut k = dot;
    loop {
        if k == 0 || k <= start {
            break;
        }
        let prev = &tokens[k - 1];
        match &prev.kind {
            TokenKind::Ident(id) => {
                chain.insert(0, id.clone());
                // Continue if the ident is itself preceded by `.`.
                if k >= 2 && tokens[k - 2].is_punct('.') {
                    k -= 2;
                    continue;
                }
                break;
            }
            // `foo().bar(` / `xs[i].bar(` / `"s".bar(` — expression
            // receiver, unknown type.
            _ => return None,
        }
    }
    if chain.is_empty() {
        None
    } else {
        Some(chain)
    }
}

/// Crude local `let` typing: `let x: Type = …` and `let x = Type::…`.
pub fn local_types(tokens: &[Token], start: usize, end: usize) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut j = start;
    while j < end {
        if !tokens[j].is_ident("let") {
            j += 1;
            continue;
        }
        let mut k = j + 1;
        if k < end && tokens[k].is_ident("mut") {
            k += 1;
        }
        let Some(var) = tokens.get(k).and_then(Token::ident).map(str::to_string) else {
            j = k;
            continue;
        };
        k += 1;
        if k < end && tokens[k].is_punct(':') {
            // `let x: Type = …` — type tokens until `=` or `;`.
            let mut ty: Option<String> = None;
            let mut depth = 0i64;
            while k < end {
                match &tokens[k].kind {
                    TokenKind::Punct('<') => depth += 1,
                    TokenKind::Punct('>') => depth -= 1,
                    TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Punct('=') | TokenKind::Punct(';') if depth <= 0 => break,
                    TokenKind::Ident(id)
                        if depth <= 0 && !matches!(id.as_str(), "mut" | "dyn" | "impl") =>
                    {
                        ty = Some(id.clone())
                    }
                    _ => {}
                }
                k += 1;
            }
            if let Some(t) = ty {
                out.insert(var, t);
            }
        } else if k + 1 < end && tokens[k].is_punct('=') {
            // `let x = Type::…` — first segment of an uppercase path.
            if let Some(first) = tokens.get(k + 1).and_then(Token::ident) {
                if first.chars().next().is_some_and(char::is_uppercase)
                    && tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(k + 3).is_some_and(|t| t.is_punct(':'))
                {
                    out.insert(var, first.to_string());
                }
            }
        }
        j = k;
    }
    out
}

// ---------------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn resolve(
    site: &CallSite,
    caller: &Func,
    file: &ParsedFile,
    locals: &BTreeMap<String, String>,
    field_types: &BTreeMap<(String, String), String>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_module: &BTreeMap<(&str, &str), Vec<usize>>,
    free_by_crate: &BTreeMap<(&str, &str), Vec<usize>>,
    free_global: &BTreeMap<&str, Vec<usize>>,
    methods_by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let name = site.name.as_str();
    if site.is_method {
        // Receiver-typed resolution first.
        if let Some(chain) = &site.receiver {
            let mut ty: Option<String> = match chain[0].as_str() {
                "self" => caller.item.impl_type.clone(),
                var => locals.get(var).cloned(),
            };
            for seg in &chain[1..] {
                ty = ty.and_then(|t| field_types.get(&(t, seg.clone())).cloned());
            }
            if let Some(t) = ty {
                if let Some(ids) = typed.get(&(t.as_str(), name)) {
                    return ids.clone();
                }
            }
        }
        // Name-based fallback: skip std-common noise, cap ambiguity.
        if COMMON_STD_METHODS.contains(&name) {
            return Vec::new();
        }
        if let Some(ids) = methods_by_name.get(name) {
            if ids.len() <= 3 {
                return ids.clone();
            }
        }
        return Vec::new();
    }

    if let Some(last) = site.qualifier.last() {
        let q = if last == "Self" {
            caller.item.impl_type.clone().unwrap_or_else(|| last.clone())
        } else {
            last.clone()
        };
        if let Some(ids) = typed.get(&(q.as_str(), name)) {
            return ids.clone();
        }
        if let Some(ids) = free_by_module.get(&(q.as_str(), name)) {
            return ids.clone();
        }
        // `crate::helper::f(…)` style with an unmatched middle: fall
        // back to a unique global free fn.
        if let Some(ids) = free_global.get(name) {
            if ids.len() == 1 {
                return ids.clone();
            }
        }
        return Vec::new();
    }

    // Bare call: same module → same crate → workspace-unique.
    let module = module_path(file, &caller.item);
    if let Some(last) = module.last() {
        if let Some(ids) = free_by_module.get(&(last.as_str(), name)) {
            return ids.clone();
        }
    }
    if let Some(ids) = free_by_crate.get(&(file.crate_name.as_str(), name)) {
        return ids.clone();
    }
    if let Some(ids) = free_global.get(name) {
        if ids.len() == 1 {
            return ids.clone();
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn link_one(src: &str) -> Workspace {
        Workspace::link(vec![parse_file(src, "crates/x/src/lib.rs", "x")])
    }

    fn fid(ws: &Workspace, name: &str) -> usize {
        ws.funcs.iter().position(|f| f.item.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    fn callees(ws: &Workspace, name: &str) -> Vec<String> {
        let id = fid(ws, name);
        let mut v: Vec<String> =
            ws.calls[id].iter().map(|e| ws.funcs[e.callee].item.name.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn bare_calls_resolve_same_crate() {
        let ws = link_one("fn a() { b(); }\nfn b() {}");
        assert_eq!(callees(&ws, "a"), vec!["b"]);
    }

    #[test]
    fn qualified_and_self_method_calls_resolve() {
        let ws = link_one(
            "struct S { t: T }\nstruct T;\n\
             impl T { fn leaf(&self) {} }\n\
             impl S {\n\
               fn a(&self) { self.b(); self.t.leaf(); S::c(); Self::c(); }\n\
               fn b(&self) {}\n fn c() {}\n}",
        );
        assert_eq!(callees(&ws, "a"), vec!["b", "c", "leaf"]);
    }

    #[test]
    fn local_let_typing_resolves_methods() {
        let ws = link_one(
            "struct Cur;\nimpl Cur { fn advance(&mut self) {} }\n\
             fn go() { let mut c = Cur::fresh(); c.advance(); }\n\
             impl Cur { fn fresh() -> Cur { Cur } }",
        );
        assert!(callees(&ws, "go").contains(&"advance".to_string()));
        assert!(callees(&ws, "go").contains(&"fresh".to_string()));
    }

    #[test]
    fn common_std_methods_do_not_link_by_name() {
        let ws = link_one(
            "struct S;\nimpl S { fn len(&self) -> usize { 0 } }\n\
             fn f(v: Vec<u32>) -> usize { v.len() }",
        );
        assert!(callees(&ws, "f").is_empty(), "{:?}", callees(&ws, "f"));
    }

    #[test]
    fn test_functions_are_outside_the_graph() {
        let ws = link_one(
            "fn prod() {}\n#[cfg(test)]\nmod tests { fn prod() { panic!() } #[test] fn t() { super::prod(); } }",
        );
        let prod = fid(&ws, "prod");
        assert!(!ws.funcs[prod].item.in_test);
        assert!(ws
            .calls
            .iter()
            .enumerate()
            .all(|(i, c)| i == prod || c.is_empty() || !ws.funcs[i].item.in_test));
    }

    #[test]
    fn turbofish_calls_resolve() {
        let ws = link_one("fn a() { b::<u32>(); }\nfn b<T>() {}");
        assert_eq!(callees(&ws, "a"), vec!["b"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let ws = link_one("fn a() { println!(\"x\"); vec![1, 2]; }\nfn println() {}");
        assert!(callees(&ws, "a").is_empty());
    }
}
