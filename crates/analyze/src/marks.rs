//! Per-function marker extraction.
//!
//! A *marker* is a syntactic fact about one function body that the
//! reachability analyses combine over the call graph: determinism
//! sources (wall-clock reads, hash-order iteration, thread identity,
//! environment reads), determinism sinks (writes to deterministic
//! cost columns, table emitters, span minting), panic sites,
//! kernel-contract operations (`from_ids`, `decode_all`, …), raw
//! `std::sync` usage, and lock acquisitions.

use crate::graph::{call_sites, local_types, Workspace};
use crate::AnalysisConfig;
use qbism_check::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// One marker occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Mark {
    /// Short label, e.g. `Instant::now`, `write sim_db_seconds`.
    pub what: String,
    pub line: u32,
}

/// One `lock()` / `lock_or_recover()` acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Stable lock name: the `Mutex::named` literal when the field's
    /// initializer is known, else `Type.field`.
    pub name: String,
    pub line: u32,
    /// Token position (orders the site against call edges).
    pub pos: usize,
    /// Whether the guard is `let`-bound (held past the statement).
    pub held: bool,
}

/// All markers for one function.
#[derive(Debug, Clone, Default)]
pub struct FnMarks {
    pub det_sources: Vec<Mark>,
    pub det_sinks: Vec<Mark>,
    pub panics: Vec<Mark>,
    pub materialize: Vec<Mark>,
    pub full_decode: Vec<Mark>,
    pub raw_sync: Vec<Mark>,
    pub locks: Vec<LockSite>,
}

const HASH_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Extracts markers for every function in the workspace.
pub fn mark_all(ws: &Workspace, cfg: &AnalysisConfig) -> Vec<FnMarks> {
    let named = named_mutexes(ws);
    let mut out = Vec::with_capacity(ws.funcs.len());
    for id in 0..ws.funcs.len() {
        out.push(mark_fn(ws, cfg, id, &named));
    }
    out
}

/// Workspace-wide map `field → Mutex::named literal`, harvested from
/// `field: Mutex::named("…")` initializers (the `Mutex` may carry a
/// module path, as in `qbism_check::sync::Mutex::named`) so static
/// lock names line up with the dynamic lock-order registry.
pub fn named_mutexes(ws: &Workspace) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for file in &ws.files {
        let toks = &file.tokens;
        for j in 0..toks.len() {
            // field : [path ::]* Mutex :: named ( "literal"
            if !toks[j].is_ident("Mutex") {
                continue;
            }
            let lit = (|| {
                if !(toks.get(j + 1)?.is_punct(':') && toks.get(j + 2)?.is_punct(':')) {
                    return None;
                }
                if !toks.get(j + 3)?.is_ident("named") || !toks.get(j + 4)?.is_punct('(') {
                    return None;
                }
                match &toks.get(j + 5)?.kind {
                    TokenKind::Str(s) | TokenKind::RawStr(s) => Some(s.clone()),
                    _ => None,
                }
            })();
            let Some(lit) = lit else { continue };
            // Skip back over any leading `module ::` path segments.
            let mut k = j;
            while k >= 3
                && toks[k - 1].is_punct(':')
                && toks[k - 2].is_punct(':')
                && toks[k - 3].ident().is_some()
            {
                k -= 3;
            }
            if k >= 2 && toks[k - 1].is_punct(':') && !toks[k - 2].is_punct(':') {
                if let Some(field) = toks[k - 2].ident() {
                    out.insert(field.to_string(), lit);
                }
            }
        }
    }
    out
}

fn mark_fn(
    ws: &Workspace,
    cfg: &AnalysisConfig,
    id: usize,
    named: &BTreeMap<String, String>,
) -> FnMarks {
    let func = &ws.funcs[id];
    let file = &ws.files[func.file];
    let toks = &file.tokens;
    let (start, end) = func.item.body;
    let mut m = FnMarks::default();
    if func.item.in_test || start >= end {
        return m;
    }
    let locals = local_types(toks, start, end);
    let chain_type = |chain: &[String]| -> Option<String> {
        let mut ty: Option<String> = match chain[0].as_str() {
            "self" => func.item.impl_type.clone(),
            var => locals.get(var).cloned(),
        };
        for seg in &chain[1..] {
            ty = ty.and_then(|t| ws.field_types.get(&(t, seg.clone())).cloned());
        }
        ty
    };

    // Tablegen emitters are sinks by definition.
    if cfg.sink_fns.iter().any(|f| f == &func.item.name) {
        m.det_sinks.push(Mark { what: "tablegen emitter".to_string(), line: func.item.line });
    }

    // --- call-site driven markers -------------------------------------
    for site in call_sites(toks, start, end) {
        let name = site.name.as_str();
        if site.is_method {
            match name {
                "unwrap" | "expect" => {
                    m.panics.push(Mark { what: format!(".{name}()"), line: site.line });
                }
                "lock" | "lock_or_recover" => {
                    if let Some(chain) = &site.receiver {
                        let lock_name = lock_name(chain, func.item.impl_type.as_deref(), named);
                        let held = let_bound(toks, site.pos, start);
                        m.locks.push(LockSite {
                            name: lock_name,
                            line: site.line,
                            pos: site.pos,
                            held,
                        });
                    }
                }
                _ if HASH_ITER_METHODS.contains(&name) => {
                    if let Some(chain) = &site.receiver {
                        if let Some(ty) = chain_type(chain) {
                            if cfg.hash_types.iter().any(|h| h == &ty) {
                                m.det_sources.push(Mark {
                                    what: format!("{ty}::{name} iteration order"),
                                    line: site.line,
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        } else {
            let qual = site.qualifier.last().map(String::as_str);
            match (qual, name) {
                (Some("Instant"), "now") | (Some("SystemTime"), "now") => {
                    m.det_sources.push(Mark {
                        what: format!("{}::now", qual.unwrap_or_default()),
                        line: site.line,
                    });
                }
                (Some("thread"), "current") => {
                    m.det_sources
                        .push(Mark { what: "thread::current".to_string(), line: site.line });
                }
                (Some("thread"), "available_parallelism")
                | (None, "available_parallelism")
                | (Some("env"), "var")
                | (Some("env"), "var_os")
                | (Some("env"), "vars") => {
                    m.det_sources.push(Mark {
                        what: format!("{}::{name}", qual.unwrap_or("std")),
                        line: site.line,
                    });
                }
                _ => {}
            }
            if cfg.sink_calls.iter().any(|c| c == name) {
                m.det_sinks.push(Mark { what: format!("{name}(…)"), line: site.line });
            }
        }
        match name {
            "from_ids" | "iter_voxels" => {
                m.materialize.push(Mark { what: format!("{name}(…)"), line: site.line });
            }
            "decode_all" | "to_runs_vec" => {
                m.full_decode.push(Mark { what: format!("{name}(…)"), line: site.line });
            }
            _ => {}
        }
    }

    // --- token-pattern markers ----------------------------------------
    let mut j = start;
    while j < end {
        match &toks[j].kind {
            // `for … in <chain> {` — hash iteration via IntoIterator.
            TokenKind::Ident(id) if id == "in" => {
                let mut k = j + 1;
                while k < end && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
                    k += 1;
                }
                let mut chain = Vec::new();
                while let Some(seg) = toks.get(k).and_then(Token::ident) {
                    chain.push(seg.to_string());
                    if k + 1 < end && toks[k + 1].is_punct('.') {
                        k += 2;
                    } else {
                        k += 1;
                        break;
                    }
                }
                if !chain.is_empty() && toks.get(k).is_some_and(|t| t.is_punct('{')) {
                    if let Some(ty) = chain_type(&chain) {
                        if cfg.hash_types.iter().any(|h| h == &ty) {
                            m.det_sources.push(Mark {
                                what: format!("for-loop over {ty} (iteration order)"),
                                line: toks[j].line,
                            });
                        }
                    }
                }
            }
            // Panic macros: `panic!(…)` etc.
            TokenKind::Ident(id)
                if PANIC_MACROS.contains(&id.as_str())
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                m.panics.push(Mark { what: format!("{id}!"), line: toks[j].line });
            }
            // Deterministic struct literal: `QueryCost { … }`.
            TokenKind::Ident(id)
                if cfg.det_structs.iter().any(|s| s == id)
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
                    && !(j > 0 && (toks[j - 1].is_ident("let") || toks[j - 1].is_punct('|'))) =>
            {
                m.det_sinks.push(Mark { what: format!("{id} {{ … }}"), line: toks[j].line });
            }
            // Deterministic field write: `.field =` / `.field +=`.
            TokenKind::Punct('.') => {
                if let Some(field) = toks.get(j + 1).and_then(Token::ident) {
                    if cfg.det_fields.iter().any(|f| f == field) {
                        let k = j + 2;
                        let compound = toks.get(k).is_some_and(|t| {
                            matches!(t.kind, TokenKind::Punct('+' | '-' | '*' | '/'))
                        }) && toks.get(k + 1).is_some_and(|t| t.is_punct('='));
                        let plain = toks.get(k).is_some_and(|t| t.is_punct('='))
                            && !toks.get(k + 1).is_some_and(|t| t.is_punct('='));
                        if compound || plain {
                            m.det_sinks
                                .push(Mark { what: format!("write {field}"), line: toks[j].line });
                        }
                    }
                }
            }
            // Slice / array indexing: `expr[…]`.
            TokenKind::Punct('[') if j > start => {
                let indexes = match &toks[j - 1].kind {
                    TokenKind::Ident(id) => !crate::parser::is_call_keyword(id),
                    TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    m.panics.push(Mark { what: "slice index".to_string(), line: toks[j].line });
                }
            }
            // Raw `std::sync::X` path in the body.
            TokenKind::Ident(id)
                if id == "sync"
                    && j >= 3
                    && j + 2 < end
                    && toks[j - 1].is_punct(':')
                    && toks[j - 2].is_punct(':')
                    && toks[j - 3].is_ident("std")
                    && toks[j + 1].is_punct(':') =>
            {
                if let Some(what) = toks.get(j + 3).and_then(Token::ident) {
                    if qbism_check::lint::is_banned_sync(what) {
                        m.raw_sync
                            .push(Mark { what: format!("std::sync::{what}"), line: toks[j].line });
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }

    // File-level raw-sync imports taint any function in the file that
    // names the imported primitive.
    if !file.raw_sync_imports.is_empty() {
        for tok in &toks[start..end] {
            if let Some(id) = tok.ident() {
                if file.raw_sync_imports.iter().any(|b| b == id) {
                    m.raw_sync
                        .push(Mark { what: format!("imported std::sync::{id}"), line: tok.line });
                    break;
                }
            }
        }
    }
    m
}

/// Maps a receiver chain to a stable lock name.
fn lock_name(
    chain: &[String],
    impl_type: Option<&str>,
    named: &BTreeMap<String, String>,
) -> String {
    let field = chain.last().map(String::as_str).unwrap_or("?");
    if let Some(lit) = named.get(field) {
        return lit.clone();
    }
    match (chain.first().map(String::as_str), impl_type) {
        (Some("self"), Some(ty)) => format!("{ty}.{field}"),
        _ => chain.join("."),
    }
}

/// Is the lock call's statement `let`-bound (guard outlives the
/// expression)?  Scans back to the statement boundary.
fn let_bound(toks: &[Token], pos: usize, start: usize) -> bool {
    let mut k = pos;
    let floor = start.max(pos.saturating_sub(16));
    while k > floor {
        k -= 1;
        match &toks[k].kind {
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => return false,
            TokenKind::Ident(id) if id == "let" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::AnalysisConfig;

    fn marks_for(src: &str, name: &str) -> FnMarks {
        let ws = Workspace::link(vec![parse_file(src, "crates/x/src/lib.rs", "x")]);
        let cfg = AnalysisConfig::workspace();
        let all = mark_all(&ws, &cfg);
        let id = ws.funcs.iter().position(|f| f.item.name == name).expect("fn");
        all[id].clone()
    }

    #[test]
    fn named_mutex_harvest_handles_qualified_paths() {
        let src = "struct S { plain: Mutex, remote: Mutex }\n\
            impl S { fn init() -> S { S {\n\
              plain: Mutex::named(\"s.plain\", 0),\n\
              remote: qbism_check::sync::Mutex::named(\"s.remote\", 0),\n\
            } } }";
        let ws = Workspace::link(vec![parse_file(src, "crates/x/src/lib.rs", "x")]);
        let named = named_mutexes(&ws);
        assert_eq!(named.get("plain").map(String::as_str), Some("s.plain"));
        assert_eq!(named.get("remote").map(String::as_str), Some("s.remote"));
    }

    #[test]
    fn clock_reads_are_sources() {
        let m = marks_for("fn f() { let t = Instant::now(); }", "f");
        assert_eq!(m.det_sources.len(), 1);
        assert!(m.det_sources[0].what.contains("Instant::now"));
    }

    #[test]
    fn hash_iteration_is_a_source_when_receiver_is_typed() {
        let m = marks_for(
            "struct S { map: HashMap }\nimpl S { fn f(&self) { for k in self.map.keys() { } } }",
            "f",
        );
        assert!(m.det_sources.iter().any(|s| s.what.contains("HashMap")), "{:?}", m.det_sources);
    }

    #[test]
    fn for_loop_over_hashmap_field_is_a_source() {
        let m = marks_for(
            "struct S { map: HashMap }\nimpl S { fn f(&self) { for kv in &self.map { } } }",
            "f",
        );
        assert!(m.det_sources.iter().any(|s| s.what.contains("for-loop")), "{:?}", m.det_sources);
    }

    #[test]
    fn vec_iteration_is_not_a_source() {
        let m = marks_for(
            "struct S { v: Vec }\nimpl S { fn f(&self) { for x in self.v.iter() { } } }",
            "f",
        );
        assert!(m.det_sources.is_empty());
    }

    #[test]
    fn deterministic_field_writes_are_sinks() {
        let m = marks_for(
            "fn f(c: &mut QueryCost) { c.sim_db_seconds += 1.0; c.rows_scanned = 3; c.native_db_seconds = 0.5; }",
            "f",
        );
        let whats: Vec<&str> = m.det_sinks.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(whats, vec!["write sim_db_seconds", "write rows_scanned"]);
    }

    #[test]
    fn equality_tests_are_not_writes() {
        let m = marks_for("fn f(c: &QueryCost) -> bool { c.rows_scanned == 3 }", "f");
        assert!(m.det_sinks.is_empty(), "{:?}", m.det_sinks);
    }

    #[test]
    fn struct_literal_is_a_sink_but_patterns_are_not() {
        let m = marks_for("fn f() -> QueryCost { QueryCost { lfm: 0 } }", "f");
        assert_eq!(m.det_sinks.len(), 1);
        let m = marks_for("fn g(c: C) { let QueryCost { .. } = c; }", "g");
        assert!(m.det_sinks.is_empty());
    }

    #[test]
    fn panic_markers() {
        let m = marks_for(
            "fn f(v: Vec<u32>, o: Option<u32>) -> u32 { if v[0] > 1 { panic!() } o.unwrap() }",
            "f",
        );
        let mut whats: Vec<&str> = m.panics.iter().map(|s| s.what.as_str()).collect();
        whats.sort_unstable();
        assert_eq!(whats, vec![".unwrap()", "panic!", "slice index"]);
    }

    #[test]
    fn array_literals_and_attrs_are_not_indexing() {
        let m = marks_for("fn f() -> [u8; 2] { let a = [1u8, 2]; return a; }", "f");
        assert!(m.panics.is_empty(), "{:?}", m.panics);
    }

    #[test]
    fn lock_sites_use_named_literals_and_track_let_binding() {
        let src = "struct S { acct: Mutex }\n\
                   impl S {\n\
                     fn init() -> S { S { acct: Mutex::named(\"lfm.acct\", 0) } }\n\
                     fn f(&self) { let g = self.acct.lock_or_recover(); drop(g); self.acct.lock(); }\n\
                   }";
        let m = marks_for(src, "f");
        assert_eq!(m.locks.len(), 2);
        assert_eq!(m.locks[0].name, "lfm.acct");
        assert!(m.locks[0].held);
        assert!(!m.locks[1].held);
    }

    #[test]
    fn raw_sync_paths_are_marked() {
        let m = marks_for("fn f() { let m = std::sync::Mutex::new(0); }", "f");
        assert_eq!(m.raw_sync.len(), 1);
    }
}
