//! Findings, call-path rendering, and the machine-readable report.
//!
//! Every finding carries a *stable key* (`rule @ from -> to`) that the
//! allowlist matches against, a human message, and the full call path
//! as `file:line` steps.  The JSON writer is hand-rolled (the analyzer
//! is dependency-free) and emits findings in sorted order so the
//! report is byte-stable across runs.

use crate::graph::Workspace;
use std::fmt::Write as _;

/// One hop on a call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Qualified function name (`crate::module::Type::fn`).
    pub func: String,
    /// Definition site.
    pub file: String,
    pub line: u32,
    /// Line in the *previous* step's body where this function is
    /// called (absent for the first step).
    pub call_line: Option<u32>,
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    /// Stable allowlist key: `rule @ file:fn -> file:fn`.
    pub key: String,
    pub message: String,
    pub path: Vec<Step>,
}

impl Finding {
    /// Human rendering with the full call trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "[{}] {}", self.rule, self.message);
        let _ = writeln!(out, "  key: {}", self.key);
        for (i, step) in self.path.iter().enumerate() {
            let arrow = if i == 0 { "  at" } else { "  ->" };
            match step.call_line {
                Some(cl) => {
                    let _ = writeln!(
                        out,
                        "{arrow} {} ({}:{}, called at line {cl})",
                        step.func, step.file, step.line
                    );
                }
                None => {
                    let _ = writeln!(out, "{arrow} {} ({}:{})", step.func, step.file, step.line);
                }
            }
        }
        out
    }
}

/// Builds the step list for a node path, attaching call-site lines
/// from the edge table.
pub fn steps(ws: &Workspace, path: &[usize]) -> Vec<Step> {
    let mut out = Vec::with_capacity(path.len());
    for (i, &id) in path.iter().enumerate() {
        let (file, line) = ws.location(id);
        let call_line = if i == 0 { None } else { ws.edge_line(path[i - 1], id) };
        out.push(Step { func: ws.funcs[id].qualified.clone(), file, line, call_line });
    }
    out
}

/// Scan-level statistics (the EXPERIMENTS table row).
#[derive(Debug, Clone, Default)]
pub struct ScanStats {
    pub files: usize,
    pub functions: usize,
    pub edges: usize,
    pub call_sites: usize,
    pub resolved_call_sites: usize,
    pub scan_ms: u128,
    /// Findings per rule, including allowlisted ones.
    pub per_rule: Vec<(String, usize)>,
}

/// The full analysis output.
#[derive(Debug, Default)]
pub struct Report {
    pub stats: ScanStats,
    /// Unallowlisted findings (gate-failing), sorted by key.
    pub findings: Vec<Finding>,
    /// Suppressed findings with the allowlist justification.
    pub allowlisted: Vec<(Finding, String)>,
}

impl Report {
    /// Sorts findings and fills the per-rule counts; call once after
    /// all analyses ran.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| a.key.cmp(&b.key));
        self.findings.dedup_by(|a, b| a.key == b.key);
        self.allowlisted.sort_by(|a, b| a.0.key.cmp(&b.0.key));
        self.allowlisted.dedup_by(|a, b| a.0.key == b.0.key);
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for f in self.findings.iter().chain(self.allowlisted.iter().map(|(f, _)| f)) {
            *counts.entry(f.rule.as_str()).or_default() += 1;
        }
        self.stats.per_rule = counts.into_iter().map(|(r, n)| (r.to_string(), n)).collect();
    }

    /// Machine-readable JSON (sorted, byte-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"stats\": {{");
        let _ = writeln!(out, "    \"files\": {},", self.stats.files);
        let _ = writeln!(out, "    \"functions\": {},", self.stats.functions);
        let _ = writeln!(out, "    \"edges\": {},", self.stats.edges);
        let _ = writeln!(out, "    \"call_sites\": {},", self.stats.call_sites);
        let _ = writeln!(out, "    \"resolved_call_sites\": {},", self.stats.resolved_call_sites);
        let _ = writeln!(out, "    \"scan_ms\": {},", self.stats.scan_ms);
        let _ = writeln!(out, "    \"per_rule\": {{");
        for (i, (rule, n)) in self.stats.per_rule.iter().enumerate() {
            let comma = if i + 1 == self.stats.per_rule.len() { "" } else { "," };
            let _ = writeln!(out, "      \"{}\": {n}{comma}", esc(rule));
        }
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "  }},");
        let _ = writeln!(out, "  \"findings\": [");
        write_findings(&mut out, self.findings.iter().map(|f| (f, None)));
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"allowlisted\": [");
        write_findings(&mut out, self.allowlisted.iter().map(|(f, j)| (f, Some(j.as_str()))));
        let _ = writeln!(out, "  ]");
        out.push('}');
        out.push('\n');
        out
    }
}

fn write_findings<'a, I>(out: &mut String, findings: I)
where
    I: Iterator<Item = (&'a Finding, Option<&'a str>)>,
{
    let items: Vec<_> = findings.collect();
    for (i, (f, justification)) in items.iter().enumerate() {
        let comma = if i + 1 == items.len() { "" } else { "," };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"rule\": \"{}\",", esc(&f.rule));
        let _ = writeln!(out, "      \"key\": \"{}\",", esc(&f.key));
        let _ = writeln!(out, "      \"message\": \"{}\",", esc(&f.message));
        if let Some(j) = justification {
            let _ = writeln!(out, "      \"justification\": \"{}\",", esc(j));
        }
        let _ = writeln!(out, "      \"path\": [");
        for (k, s) in f.path.iter().enumerate() {
            let comma = if k + 1 == f.path.len() { "" } else { "," };
            let call = s.call_line.map(|c| c.to_string()).unwrap_or_else(|| "null".to_string());
            let _ = writeln!(
                out,
                "        {{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"call_line\": {call}}}{comma}",
                esc(&s.func),
                esc(&s.file),
                s.line
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{comma}");
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(key: &str) -> Finding {
        Finding {
            rule: "det-taint".to_string(),
            key: key.to_string(),
            message: "m".to_string(),
            path: vec![Step {
                func: "x::f".to_string(),
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                call_line: None,
            }],
        }
    }

    #[test]
    fn finalize_sorts_dedupes_and_counts() {
        let mut r = Report::default();
        r.findings.push(finding("b"));
        r.findings.push(finding("a"));
        r.findings.push(finding("a"));
        r.finalize();
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].key, "a");
        assert_eq!(r.stats.per_rule, vec![("det-taint".to_string(), 2)]);
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let mut r = Report::default();
        let mut f = finding("k\"1");
        f.message = "line1\nline2".to_string();
        r.findings.push(f);
        r.finalize();
        let j = r.to_json();
        assert!(j.contains("k\\\"1"));
        assert!(j.contains("line1\\nline2"));
        assert_eq!(j, {
            let mut r2 = Report::default();
            let mut f2 = finding("k\"1");
            f2.message = "line1\nline2".to_string();
            r2.findings.push(f2);
            r2.finalize();
            r2.to_json()
        });
    }
}
