//! `qbism-analyze` — whole-program static analysis for the QBISM
//! workspace.
//!
//! Where `qbism-check`'s linter reasons line-by-line, this crate
//! parses every source file into a function table (over the same
//! shared lexer, so the two layers agree on what is code), links a
//! name-resolved call graph, and runs four reachability analyses:
//!
//! 1. **determinism taint** — wall-clock / hash-order / thread-id /
//!    env sources must not reach deterministic cost-model sinks;
//! 2. **transitive rule lifting** — the kernel-materialize,
//!    full-decode, and raw-sync line rules, lifted to call paths;
//! 3. **panic reachability** — panic sites reachable from the public
//!    server/database/warehouse entry points, with shortest paths;
//! 4. **static lock order** — guard-held sets propagated over the
//!    graph, flagging order inversions before the dynamic checker can
//!    ever hit them.
//!
//! Findings carry stable keys matched by a checked-in allowlist whose
//! entries must each state a justification.  Output is a sorted,
//! byte-stable [`report::Report`] with human call traces and JSON.

pub mod allowlist;
pub mod analysis;
pub mod graph;
pub mod marks;
pub mod parser;
pub mod reach;
pub mod report;

use graph::Workspace;
use report::Report;
use std::path::Path;

/// Marker and scoping configuration for the four analyses.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Crates left out of the graph entirely (harness code).
    pub skip_crates: Vec<String>,
    /// Types whose public methods are panic-analysis entry points.
    pub entry_types: Vec<String>,
    /// Crates ported to the sync facade (raw-sync transitive scope).
    pub facade_crates: Vec<String>,
    /// Kernel-file crates for the materialize rule.
    pub kernel_crates_materialize: Vec<String>,
    /// Kernel-file crates for the full-decode rule.
    pub kernel_crates_decode: Vec<String>,
    /// Field names whose writes are deterministic sinks.
    pub det_fields: Vec<String>,
    /// Struct names whose literal construction is a deterministic sink.
    pub det_structs: Vec<String>,
    /// Call names that are deterministic sinks (span minting).
    pub sink_calls: Vec<String>,
    /// Function names that are deterministic sinks by definition
    /// (table emitters).
    pub sink_fns: Vec<String>,
    /// Receiver types whose iteration order is a nondeterminism source.
    pub hash_types: Vec<String>,
}

impl AnalysisConfig {
    /// The workspace configuration — the analysis-level single source
    /// of truth for the determinism contract.  `native_db_seconds` is
    /// deliberately absent from `det_fields`: it is the one
    /// wall-clock-fed column.
    pub fn workspace() -> AnalysisConfig {
        let s = |v: &[&str]| v.iter().map(|c| c.to_string()).collect();
        AnalysisConfig {
            skip_crates: s(&["bench"]),
            entry_types: s(&["MedicalServer", "Database", "ClusterWarehouse"]),
            facade_crates: s(&["parallel", "lfm", "netsim", "fault", "core", "cluster"]),
            kernel_crates_materialize: s(&["region", "sfc", "volume"]),
            kernel_crates_decode: s(&["region", "sfc", "volume", "coding"]),
            det_fields: s(&[
                // QueryCost deterministic columns.
                "lfm",
                "rows_scanned",
                "sim_db_seconds",
                "wire_bytes",
                "messages",
                "sim_net_seconds",
                "coverage",
                // IoStats.
                "pages_read",
                "pages_written",
                "extents_read",
                "extents_written",
                "read_calls",
                "write_calls",
                // NetStats.
                "bytes",
                "seconds",
                "answers",
                "retransmits",
                "backoff_seconds",
                "payload_bytes",
            ]),
            det_structs: s(&["QueryCost", "IoStats", "NetStats"]),
            sink_calls: s(&["mint_trace", "SpanId"]),
            sink_fns: s(&[
                "table1_z_octants",
                "table1_z_oblong_octants",
                "table2_hilbert_octants",
                "table3_row",
                "table3_header",
            ]),
            hash_types: s(&["HashMap", "HashSet"]),
        }
    }
}

/// Runs all four analyses over an already-linked workspace (no I/O,
/// no allowlist).  The report is finalized (sorted, deduped).
pub fn analyze_workspace(ws: &Workspace, cfg: &AnalysisConfig) -> Report {
    let marks = marks::mark_all(ws, cfg);
    let adj = ws.adjacency();
    let ctx = analysis::Ctx { ws, marks: &marks, adj: &adj, cfg };

    let mut report = Report::default();
    report.findings.extend(analysis::determinism::run(&ctx));
    report.findings.extend(analysis::transitive::run(&ctx));
    report.findings.extend(analysis::panics::run(&ctx));
    report.findings.extend(analysis::locks::run(&ctx));
    report.stats.files = ws.files.len();
    report.stats.functions = ws.funcs.len();
    report.stats.edges = ws.edge_count();
    report.stats.call_sites = ws.total_calls;
    report.stats.resolved_call_sites = ws.resolved_calls;
    report.finalize();
    report
}

/// Scans a workspace root and analyzes it.
pub fn analyze_root(root: &Path, cfg: &AnalysisConfig) -> std::io::Result<Report> {
    let ws = Workspace::scan(root, &cfg.skip_crates)?;
    Ok(analyze_workspace(&ws, cfg))
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use crate::graph::crate_of;
    use crate::parser::parse_file;

    /// Analyzes in-memory sources with the workspace config and no
    /// allowlist.
    pub fn analyze_files(files: &[(&str, &str)]) -> Report {
        let parsed = files.iter().map(|(rel, src)| parse_file(src, rel, crate_of(rel))).collect();
        let ws = Workspace::link(parsed);
        analyze_workspace(&ws, &AnalysisConfig::workspace())
    }

    pub fn analyze_source(src: &str) -> Report {
        analyze_files(&[("crates/x/src/lib.rs", src)])
    }
}
