//! Small BFS helpers over the deduplicated call-graph adjacency.

use std::collections::{BTreeSet, VecDeque};

/// Shortest path (as a node list, `from` first) from `from` to any
/// node in `targets`.  `from` itself counts when it is a target.
pub fn shortest_path_to(
    adj: &[Vec<usize>],
    from: usize,
    targets: &BTreeSet<usize>,
) -> Option<Vec<usize>> {
    if targets.contains(&from) {
        return Some(vec![from]);
    }
    let mut parent: Vec<Option<usize>> = vec![None; adj.len()];
    let mut seen = vec![false; adj.len()];
    let mut queue = VecDeque::new();
    seen[from] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            parent[v] = Some(u);
            if targets.contains(&v) {
                return Some(unwind(&parent, from, v));
            }
            queue.push_back(v);
        }
    }
    None
}

/// Every node reachable from `from` (excluding `from` unless cyclic).
pub fn reachable_from(adj: &[Vec<usize>], from: usize) -> BTreeSet<usize> {
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Reversed adjacency (caller lists per callee).
pub fn reverse(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); adj.len()];
    for (u, vs) in adj.iter().enumerate() {
        for &v in vs {
            rev[v].push(u);
        }
    }
    rev
}

/// Multi-source BFS: for each node, the parent on a shortest path from
/// the nearest entry (entries have `parent = None`, `dist = 0`).
pub fn multi_source(
    adj: &[Vec<usize>],
    entries: &[usize],
) -> (Vec<Option<usize>>, Vec<Option<u32>>) {
    let mut parent: Vec<Option<usize>> = vec![None; adj.len()];
    let mut dist: Vec<Option<u32>> = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    for &e in entries {
        if dist[e].is_none() {
            dist[e] = Some(0);
            queue.push_back(e);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u].unwrap_or(0);
        for &v in &adj[u] {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (parent, dist)
}

/// Path from the entry to `node` using a multi-source parent table.
pub fn unwind_multi(parent: &[Option<usize>], node: usize) -> Vec<usize> {
    let mut path = vec![node];
    let mut cur = node;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    path
}

fn unwind(parent: &[Option<usize>], from: usize, to: usize) -> Vec<usize> {
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        match parent[cur] {
            Some(p) => {
                path.push(p);
                cur = p;
            }
            None => break,
        }
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        // 0→1→3, 0→2→3 (tie broken by adjacency order), 0→3 absent.
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let targets: BTreeSet<usize> = [3].into_iter().collect();
        assert_eq!(shortest_path_to(&adj, 0, &targets), Some(vec![0, 1, 3]));
    }

    #[test]
    fn self_target_is_a_single_step() {
        let adj = vec![vec![]];
        let targets: BTreeSet<usize> = [0].into_iter().collect();
        assert_eq!(shortest_path_to(&adj, 0, &targets), Some(vec![0]));
    }

    #[test]
    fn multi_source_distances() {
        let adj = vec![vec![2], vec![2], vec![3], vec![]];
        let (parent, dist) = multi_source(&adj, &[0, 1]);
        assert_eq!(dist[3], Some(2));
        let path = unwind_multi(&parent, 3);
        assert_eq!(path.len(), 3);
        assert!(path[0] == 0 || path[0] == 1);
    }

    #[test]
    fn cycles_terminate() {
        let adj = vec![vec![1], vec![0]];
        let targets: BTreeSet<usize> = BTreeSet::new();
        assert_eq!(shortest_path_to(&adj, 0, &targets), None);
        assert!(reachable_from(&adj, 0).contains(&0));
    }
}
