//! Deterministic patient demographics.
//!
//! Queries like "display the PET studies of 40-year old females that show
//! high physiological activity inside the hippocampus" need a *Patient*
//! entity with something in it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Patient sex as recorded in the demographic record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Female.
    Female,
    /// Male.
    Male,
}

impl Sex {
    /// Single-letter code stored in the database.
    pub fn code(self) -> &'static str {
        match self {
            Sex::Female => "F",
            Sex::Male => "M",
        }
    }
}

/// One patient record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patient {
    /// Stable id (assigned in generation order from 1).
    pub patient_id: i64,
    /// Display name.
    pub name: String,
    /// Age in years.
    pub age: i64,
    /// Sex.
    pub sex: Sex,
}

const FIRST_NAMES: [&str; 16] = [
    "Jane", "Sue", "Ann", "Mia", "Lena", "Ruth", "Ida", "Nora", "Carl", "Otto", "Hugo", "Ivan",
    "Marc", "Nils", "Paul", "Rene",
];

const LAST_NAMES: [&str; 12] = [
    "Smith", "Jones", "Garcia", "Kim", "Chen", "Novak", "Haas", "Mori", "Silva", "Weber", "Rossi",
    "Dubois",
];

/// Generates `count` deterministic patients from a seed.
///
/// Ages cluster in the research-population range 20–80, and the first
/// generated patient of any seed is always a 40-year-old female named
/// after the paper's canonical query, so examples have a guaranteed hit.
pub fn generate_patients(seed: u64, count: usize) -> Vec<Patient> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdeca_de01);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let (name, age, sex) = if i == 0 {
            ("Jane Smith".to_string(), 40, Sex::Female)
        } else {
            let name = format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            );
            let age = rng.gen_range(20..=80);
            let sex = if rng.gen_bool(0.5) { Sex::Female } else { Sex::Male };
            (name, age, sex)
        };
        out.push(Patient { patient_id: (i + 1) as i64, name, age, sex });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_ids() {
        let a = generate_patients(5, 20);
        let b = generate_patients(5, 20);
        assert_eq!(a, b);
        let ids: Vec<i64> = a.iter().map(|p| p.patient_id).collect();
        assert_eq!(ids, (1..=20).collect::<Vec<i64>>());
        let c = generate_patients(6, 20);
        assert_ne!(a[5], c[5], "different seeds differ somewhere");
    }

    #[test]
    fn canonical_first_patient() {
        let p = &generate_patients(123, 3)[0];
        assert_eq!(p.name, "Jane Smith");
        assert_eq!(p.age, 40);
        assert_eq!(p.sex, Sex::Female);
        assert_eq!(p.sex.code(), "F");
    }

    #[test]
    fn ages_in_population_range() {
        for p in generate_patients(9, 100) {
            assert!((20..=80).contains(&p.age), "age {} out of range", p.age);
        }
    }

    #[test]
    fn both_sexes_present_in_a_population() {
        let pop = generate_patients(1, 50);
        assert!(pop.iter().any(|p| p.sex == Sex::Female));
        assert!(pop.iter().any(|p| p.sex == Sex::Male));
    }
}
