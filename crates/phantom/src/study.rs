//! Acquisition simulation: sampling a field onto a scanner grid through
//! a misalignment transform.
//!
//! "A PET study of a patient is not perfectly aligned with the
//! corresponding atlas" — we *generate* that misalignment: a random
//! small rigid+scale transform maps patient space to atlas space, the
//! scanner samples the atlas-space truth through its inverse, and the
//! loader later recovers the transform from landmark pairs and warps the
//! study back.

use crate::field::ScalarField3;
use qbism_geometry::{Affine3, Vec3};
use qbism_warp::RawStudy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Imaging modality, with the paper's native grid shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Modality {
    /// Positron emission tomography: coarse, functional.
    /// Paper-native grid: 128x128 slices, 51 of them.
    Pet,
    /// Magnetic resonance imaging: fine, structural.
    /// Paper-native grid: 512x512 slices, 44 of them.
    Mri,
}

impl Modality {
    /// Native grid dims for an atlas of side `s` (scaled from the
    /// paper's 128-atlas shapes so small test atlases stay cheap).
    pub fn native_dims(self, s: u32) -> [u32; 3] {
        match self {
            // 128x128x51 at s = 128.
            Modality::Pet => [s, s, (s * 51).div_ceil(128).max(4)],
            // 512x512x44 at s = 128.
            Modality::Mri => [s * 4, s * 4, (s * 44).div_ceil(128).max(4)],
        }
    }

    /// Native voxel spacing (mm) for an atlas of side `s` mm: each
    /// modality covers the same physical head volume with its own grid.
    pub fn native_spacing(self, s: u32) -> Vec3 {
        let dims = self.native_dims(s);
        Vec3::new(
            f64::from(s) / f64::from(dims[0]),
            f64::from(s) / f64::from(dims[1]),
            f64::from(s) / f64::from(dims[2]),
        )
    }

    /// Modality name as stored in the *Raw Volume* entity.
    pub fn name(self) -> &'static str {
        match self {
            Modality::Pet => "PET",
            Modality::Mri => "MRI",
        }
    }
}

/// One simulated acquisition.
pub struct AcquiredStudy {
    /// The scanner-grid volume (scanline order, native spacing).
    pub raw: RawStudy,
    /// Ground-truth patient→atlas transform (what registration should
    /// recover).
    pub true_transform: Affine3,
    /// Landmark pairs `(patient_mm, atlas_mm)` — the anatomist's clicks.
    pub landmarks: Vec<(Vec3, Vec3)>,
    /// Modality of the acquisition.
    pub modality: Modality,
}

impl std::fmt::Debug for AcquiredStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquiredStudy")
            .field("modality", &self.modality)
            .field("dims", &self.raw.dims())
            .finish()
    }
}

/// Deterministic study factory.
#[derive(Debug, Clone, Copy)]
pub struct StudyGenerator {
    /// Atlas side in voxels (= mm).
    pub atlas_side: u32,
    /// Measurement noise amplitude (intensity units).
    pub noise: f64,
}

impl StudyGenerator {
    /// A generator for the given atlas side with default scanner noise.
    pub fn new(atlas_side: u32) -> Self {
        StudyGenerator { atlas_side, noise: 9.0 }
    }

    /// Draws a small random patient→atlas misalignment: rotations up to
    /// ~6°, scale within 5 %, translations up to 6 % of the head.
    pub fn random_misalignment(&self, rng: &mut StdRng) -> Affine3 {
        let s = f64::from(self.atlas_side);
        let t = s * 0.06;
        Affine3::rotation_x(rng.gen_range(-0.1..0.1))
            .then(&Affine3::rotation_y(rng.gen_range(-0.1..0.1)))
            .then(&Affine3::rotation_z(rng.gen_range(-0.1..0.1)))
            .then(&Affine3::uniform_scaling(rng.gen_range(0.95..1.05)))
            .then(&Affine3::translation(Vec3::new(
                rng.gen_range(-t..t),
                rng.gen_range(-t..t),
                rng.gen_range(-t..t),
            )))
    }

    /// Acquires `field` (atlas-space truth) as a `modality` study with
    /// seed-determined misalignment, scanner noise, and landmarks.
    pub fn acquire<F: ScalarField3>(
        &self,
        field: &F,
        modality: Modality,
        seed: u64,
    ) -> AcquiredStudy {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xacc0_1ade);
        let patient_to_atlas = self.random_misalignment(&mut rng);
        let atlas_to_patient = match patient_to_atlas.inverse() {
            Some(inv) => inv,
            None => panic!("small rigid+scale transforms are invertible"),
        };
        let dims = modality.native_dims(self.atlas_side);
        let spacing = modality.native_spacing(self.atlas_side);
        let noise = self.noise;
        let mut nrng = StdRng::seed_from_u64(seed ^ 0x0157_1030);
        let raw = RawStudy::from_fn(dims, spacing, |x, y, z| {
            let patient_mm = Vec3::new(
                (f64::from(x) + 0.5) * spacing.x,
                (f64::from(y) + 0.5) * spacing.y,
                (f64::from(z) + 0.5) * spacing.z,
            );
            let atlas_mm = patient_to_atlas.apply(patient_mm);
            let v = field.value(atlas_mm) + nrng.gen_range(-noise..noise);
            v.round().clamp(0.0, 255.0) as u8
        });
        // Landmarks: well-spread atlas points mapped back to patient
        // space (an anatomist marks matching points in both frames).
        let s = f64::from(self.atlas_side);
        let landmarks: Vec<(Vec3, Vec3)> = [
            (0.3, 0.3, 0.4),
            (0.7, 0.3, 0.45),
            (0.3, 0.7, 0.5),
            (0.7, 0.7, 0.55),
            (0.5, 0.5, 0.3),
            (0.5, 0.5, 0.75),
            (0.4, 0.55, 0.6),
            (0.62, 0.45, 0.38),
        ]
        .into_iter()
        .map(|(x, y, z)| {
            let atlas = Vec3::new(x * s, y * s, z * s);
            (atlas_to_patient.apply(atlas), atlas)
        })
        .collect();
        AcquiredStudy { raw, true_transform: patient_to_atlas, landmarks, modality }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomy::build_atlas;
    use crate::field::{PetField, ScalarField3};
    use qbism_region::GridGeometry;
    use qbism_sfc::CurveKind;
    use qbism_warp::{register_landmarks, warp_to_atlas};

    fn atlas() -> crate::PhantomAtlas {
        build_atlas(GridGeometry::new(CurveKind::Hilbert, 3, 5))
    }

    #[test]
    fn native_shapes_scale_from_paper() {
        assert_eq!(Modality::Pet.native_dims(128), [128, 128, 51]);
        assert_eq!(Modality::Mri.native_dims(128), [512, 512, 44]);
        // spacing covers the same head volume
        let sp = Modality::Pet.native_spacing(128);
        assert!((sp.z * 51.0 - 128.0).abs() < 1e-9);
        assert_eq!(Modality::Pet.name(), "PET");
        assert_eq!(Modality::Mri.name(), "MRI");
    }

    #[test]
    fn acquisition_is_deterministic() {
        let a = atlas();
        let f = PetField::new(&a, 3, 3);
        let g = StudyGenerator::new(32);
        let s1 = g.acquire(&f, Modality::Pet, 99);
        let s2 = g.acquire(&f, Modality::Pet, 99);
        assert_eq!(s1.raw, s2.raw);
        assert_eq!(s1.true_transform, s2.true_transform);
        let s3 = g.acquire(&f, Modality::Pet, 100);
        assert_ne!(s1.raw, s3.raw, "different seeds differ");
    }

    #[test]
    fn landmarks_are_consistent_with_truth() {
        let a = atlas();
        let f = PetField::new(&a, 3, 3);
        let s = StudyGenerator::new(32).acquire(&f, Modality::Pet, 5);
        for (patient, atlas_pt) in &s.landmarks {
            let mapped = s.true_transform.apply(*patient);
            assert!(mapped.distance(*atlas_pt) < 1e-9);
        }
        assert!(s.landmarks.len() >= 4, "enough landmarks for affine registration");
    }

    #[test]
    fn register_then_warp_recovers_atlas_truth() {
        // End-to-end data path the loader executes: acquire -> register
        // from landmarks -> warp to atlas -> compare against the truth
        // field.  Agreement is approximate (resampling + noise), so
        // compare means over the brain.
        let a = atlas();
        let f = PetField::new(&a, 3, 2);
        let gen = StudyGenerator::new(32);
        let s = gen.acquire(&f, Modality::Pet, 5);
        let (pts_p, pts_a): (Vec<_>, Vec<_>) = s.landmarks.iter().copied().unzip();
        let est = register_landmarks(&pts_p, &pts_a).unwrap();
        assert!(est.max_abs_diff(&s.true_transform) < 1e-6, "landmarks are exact");
        let warped = warp_to_atlas(&s.raw, &est, a.geometry(), 1.0);
        // Compare against direct sampling of the truth at atlas centres.
        let ntal = &a.structure("ntal").unwrap().region;
        let mut truth_sum = 0.0;
        let mut got_sum = 0.0;
        let mut n = 0.0;
        for (x, y, z) in ntal.iter_voxels3() {
            let p = Vec3::new(f64::from(x) + 0.5, f64::from(y) + 0.5, f64::from(z) + 0.5);
            truth_sum += f.value(p);
            got_sum += f64::from(warped.probe(x, y, z));
            n += 1.0;
        }
        let (truth_mean, got_mean) = (truth_sum / n, got_sum / n);
        assert!(
            (truth_mean - got_mean).abs() < 12.0,
            "warped mean {got_mean:.1} far from truth {truth_mean:.1}"
        );
        assert!(got_mean > 20.0, "warped ntal should show real activity");
    }

    #[test]
    fn misalignment_is_small_but_nonzero() {
        let g = StudyGenerator::new(64);
        let mut rng = StdRng::seed_from_u64(1);
        let t = g.random_misalignment(&mut rng);
        assert!(t.max_abs_diff(&Affine3::IDENTITY) > 1e-3, "should be misaligned");
        // determinant near 1 (rigid + mild scale)
        assert!((0.85..1.18).contains(&t.det()), "det {}", t.det());
    }

    #[test]
    fn pet_study_captures_bright_blobs() {
        let a = atlas();
        let f = PetField::new(&a, 8, 4);
        let s = StudyGenerator::new(32).acquire(&f, Modality::Pet, 2);
        let max = s.raw.data().iter().copied().max().unwrap();
        assert!(max > 120, "study should capture hot spots, max={max}");
    }
}
