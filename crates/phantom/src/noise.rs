//! Deterministic lattice value noise.
//!
//! Tissue texture and measurement noise must be reproducible across runs
//! (the paper averages repeated query executions; our tables must
//! regenerate byte-identically), so noise comes from a hash of the
//! integer lattice point and a seed, interpolated trilinearly.

use qbism_geometry::Vec3;

/// Trilinearly interpolated hash noise over 3-space, in `[0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct ValueNoise {
    seed: u64,
    /// Feature size: lattice spacing in the input units (millimetres).
    scale: f64,
}

impl ValueNoise {
    /// Noise with the given seed and feature size.
    ///
    /// # Panics
    /// Panics unless `scale` is positive.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "noise scale must be positive, got {scale}");
        ValueNoise { seed, scale }
    }

    /// Hash of one lattice point, uniform in `[0, 1)`.
    fn lattice(&self, x: i64, y: i64, z: i64) -> f64 {
        // SplitMix64-style avalanche over the packed coordinates.
        let mut h = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((x as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add((y as u64).wrapping_mul(0x94d0_49bb_1331_11eb))
            .wrapping_add((z as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sampled noise at `p`, in `[0, 1)`.
    pub fn sample(&self, p: Vec3) -> f64 {
        let q = p / self.scale;
        let (x0, fx) = (q.x.floor() as i64, q.x - q.x.floor());
        let (y0, fy) = (q.y.floor() as i64, q.y - q.y.floor());
        let (z0, fz) = (q.z.floor() as i64, q.z - q.z.floor());
        // Smoothstep the fractions for C1 continuity.
        let sx = fx * fx * (3.0 - 2.0 * fx);
        let sy = fy * fy * (3.0 - 2.0 * fy);
        let sz = fz * fz * (3.0 - 2.0 * fz);
        let mut acc = 0.0;
        for (dx, wx) in [(0, 1.0 - sx), (1, sx)] {
            for (dy, wy) in [(0, 1.0 - sy), (1, sy)] {
                for (dz, wz) in [(0, 1.0 - sz), (1, sz)] {
                    acc += wx * wy * wz * self.lattice(x0 + dx, y0 + dy, z0 + dz);
                }
            }
        }
        acc
    }

    /// Two-octave fractal variant for richer tissue texture, in `[0, 1)`.
    pub fn sample_fractal(&self, p: Vec3) -> f64 {
        let fine = ValueNoise { seed: self.seed ^ 0xabcd_ef01, scale: self.scale * 0.5 };
        (self.sample(p) * 2.0 / 3.0) + (fine.sample(p) / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let n = ValueNoise::new(7, 4.0);
        let p = Vec3::new(10.3, 5.9, 22.1);
        assert_eq!(n.sample(p), n.sample(p));
        let m = ValueNoise::new(8, 4.0);
        assert_ne!(n.sample(p), m.sample(p), "different seeds differ");
    }

    #[test]
    fn range_is_unit_interval() {
        let n = ValueNoise::new(42, 3.0);
        for i in 0..500 {
            let p = Vec3::new(i as f64 * 0.77, i as f64 * 1.31, i as f64 * 0.13);
            let v = n.sample(p);
            assert!((0.0..1.0).contains(&v), "sample {v} out of range");
            let f = n.sample_fractal(p);
            assert!((0.0..1.0).contains(&f), "fractal {f} out of range");
        }
    }

    #[test]
    fn continuity_at_small_steps() {
        // Value noise is continuous: close points give close values.
        let n = ValueNoise::new(3, 5.0);
        let p = Vec3::new(12.0, 7.5, 3.25);
        let a = n.sample(p);
        let b = n.sample(p + Vec3::splat(0.01));
        assert!((a - b).abs() < 0.05, "jump of {} over 0.01 mm", (a - b).abs());
    }

    #[test]
    fn varies_across_space() {
        let n = ValueNoise::new(9, 2.0);
        let vals: Vec<f64> =
            (0..100).map(|i| n.sample(Vec3::new(i as f64 * 3.1, 0.0, 0.0))).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(var > 0.01, "noise should not be (nearly) constant, var={var}");
        assert!((0.2..0.8).contains(&mean), "mean {mean} suspicious");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_scale_panics() {
        let _ = ValueNoise::new(1, 0.0);
    }
}
