//! The synthetic atlas: 11 named neuro-anatomic structures.
//!
//! Stands in for the digitized Talairach & Tournoux atlas ("11
//! neuro-anatomic structures as REGIONs in a 128x128x128 atlas space
//! grid").  Two structure names are load-bearing for the evaluation,
//! because Table 3 queries them by name and reports their sizes:
//!
//! * `ntal`  — a deep central structure, ≈ 16 k voxels at 128³
//!   (paper Q3: 16,016 voxels);
//! * `ntal1` — one brain hemisphere, ≈ 160 k voxels at 128³
//!   (paper Q4: 162,628 voxels).
//!
//! Structure sizes are defined as fractions of the grid side, so the
//! same anatomy scales from test grids (32³) to the paper's 128³.

use qbism_geometry::{
    Affine3, Ellipsoid, HalfSpace, Intersection, Solid, Superquadric, Transformed, Vec3,
};
use qbism_region::{GridGeometry, Region};

/// A named structure: its analytic solid and its rasterized REGION.
pub struct AtlasStructure {
    /// Structure name (the *Neural Structure* entity's `structureName`).
    pub name: &'static str,
    /// The analytic membership predicate (drives rasterization and
    /// MRI tissue synthesis).
    pub solid: Box<dyn Solid + Send + Sync>,
    /// The volumetric REGION stored in the *Atlas Structure* entity.
    pub region: Region,
    /// Characteristic MRI tissue intensity (0-255) of this structure.
    pub mri_intensity: f64,
}

impl std::fmt::Debug for AtlasStructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtlasStructure")
            .field("name", &self.name)
            .field("voxels", &self.region.voxel_count())
            .finish()
    }
}

/// The full synthetic atlas.
pub struct PhantomAtlas {
    geom: GridGeometry,
    structures: Vec<AtlasStructure>,
    /// The cerebral ellipsoid (hemispheres without the longitudinal
    /// fissure carved out) — the tissue mask for field synthesis.
    cerebrum: Ellipsoid,
    cerebellum: Ellipsoid,
}

impl std::fmt::Debug for PhantomAtlas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhantomAtlas")
            .field("geom", &self.geom)
            .field("structures", &self.structures)
            .finish()
    }
}

/// The 11 structure names, in synthesis order (later structures lie
/// inside earlier ones and override their tissue intensity).
pub const STRUCTURE_NAMES: [&str; 11] = [
    "ntal0",
    "ntal1",
    "cerebellum",
    "ntal",
    "thalamus",
    "caudate",
    "ventricle",
    "putamen-l",
    "putamen-r",
    "hippocampus-l",
    "hippocampus-r",
];

impl PhantomAtlas {
    /// Grid geometry the regions live on.
    pub fn geometry(&self) -> GridGeometry {
        self.geom
    }

    /// All structures, in [`STRUCTURE_NAMES`] order.
    pub fn structures(&self) -> &[AtlasStructure] {
        &self.structures
    }

    /// Looks a structure up by name.
    pub fn structure(&self, name: &str) -> Option<&AtlasStructure> {
        self.structures.iter().find(|s| s.name == name)
    }

    /// The whole-brain solid (cerebrum plus cerebellum, fissure filled),
    /// used as the tissue mask during field synthesis.
    pub fn brain_solid(&self, side: f64) -> impl Solid + '_ {
        let _ = side;
        qbism_geometry::Union(self.cerebrum, self.cerebellum)
    }
}

/// Builds the atlas on the given grid (1 atlas voxel = 1 mm by
/// convention; coordinates below are voxel units).
///
/// # Panics
/// Panics unless the geometry is 3-D with side ≥ 16 (the smallest grid
/// on which the smallest structure still rasterizes to something).
pub fn build_atlas(geom: GridGeometry) -> PhantomAtlas {
    assert_eq!(geom.dims(), 3, "atlas must be 3-D");
    assert!(geom.side() >= 16, "atlas grid too small for the anatomy");
    let s = f64::from(geom.side());
    let c = |x: f64, y: f64, z: f64| Vec3::new(x * s, y * s, z * s);
    let r = |x: f64, y: f64, z: f64| Vec3::new(x * s, y * s, z * s);

    // The cerebral ellipsoid both hemispheres are carved from.
    let brain = || Ellipsoid::new(c(0.5, 0.5, 0.54), r(0.40, 0.33, 0.28));
    let mut specs: Vec<(&'static str, Box<dyn Solid + Send + Sync>, f64)> = vec![(
        "ntal0",
        Box::new(Intersection(brain(), HalfSpace::new(Vec3::new(1.0, 0.0, 0.0), 0.495 * s))),
        95.0,
    )];
    specs.push((
        "ntal1",
        Box::new(Intersection(brain(), HalfSpace::new(Vec3::new(-1.0, 0.0, 0.0), -0.505 * s))),
        95.0,
    ));
    specs.push((
        "cerebellum",
        Box::new(Ellipsoid::new(c(0.5, 0.72, 0.30), r(0.17, 0.12, 0.09))),
        105.0,
    ));
    specs.push(("ntal", Box::new(Ellipsoid::new(c(0.5, 0.48, 0.47), r(0.16, 0.11, 0.104))), 150.0));
    specs.push((
        "thalamus",
        Box::new(Ellipsoid::new(c(0.5, 0.55, 0.52), r(0.07, 0.055, 0.05))),
        120.0,
    ));
    specs.push((
        "caudate",
        Box::new(Superquadric::new(c(0.5, 0.42, 0.58), r(0.04, 0.10, 0.04), 1.7)),
        135.0,
    ));
    specs.push((
        "ventricle",
        Box::new(Superquadric::new(c(0.5, 0.5, 0.56), r(0.03, 0.09, 0.06), 1.3)),
        30.0,
    ));
    // Putamina: small tilted ellipsoids, one per hemisphere.  The tilt
    // exercises the Transformed solid path.
    let putamen = |cx: f64, tilt: f64| -> Box<dyn Solid + Send + Sync> {
        let base = Ellipsoid::new(Vec3::ZERO, r(0.055, 0.035, 0.045));
        let place = Affine3::rotation_z(tilt).then(&Affine3::translation(c(cx, 0.52, 0.5)));
        Box::new(Transformed::new(base, place))
    };
    specs.push(("putamen-l", putamen(0.36, 0.3), 140.0));
    specs.push(("putamen-r", putamen(0.64, -0.3), 140.0));
    let hippo = |cx: f64, yaw: f64| -> Box<dyn Solid + Send + Sync> {
        let base = Superquadric::new(Vec3::ZERO, r(0.09, 0.030, 0.030), 2.0);
        let place = Affine3::rotation_y(yaw).then(&Affine3::translation(c(cx, 0.62, 0.42)));
        Box::new(Transformed::new(base, place))
    };
    specs.push(("hippocampus-l", hippo(0.40, 0.5), 130.0));
    specs.push(("hippocampus-r", hippo(0.60, -0.5), 130.0));

    let structures: Vec<AtlasStructure> = specs
        .into_iter()
        .map(|(name, solid, mri)| {
            let region = Region::rasterize_solid(geom, &solid);
            AtlasStructure { name, solid, region, mri_intensity: mri }
        })
        .collect();
    debug_assert_eq!(structures.len(), STRUCTURE_NAMES.len());
    PhantomAtlas {
        geom,
        structures,
        cerebrum: brain(),
        cerebellum: Ellipsoid::new(c(0.5, 0.72, 0.30), r(0.17, 0.12, 0.09)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbism_sfc::CurveKind;

    fn atlas64() -> PhantomAtlas {
        build_atlas(GridGeometry::new(CurveKind::Hilbert, 3, 6))
    }

    #[test]
    fn eleven_structures_in_declared_order() {
        let a = atlas64();
        assert_eq!(a.structures().len(), 11);
        for (s, name) in a.structures().iter().zip(STRUCTURE_NAMES) {
            assert_eq!(s.name, name);
            assert!(!s.region.is_empty(), "{name} rasterized to nothing");
        }
        assert!(a.structure("putamen-l").is_some());
        assert!(a.structure("amygdala").is_none());
    }

    #[test]
    fn paper_target_volume_fractions() {
        // Scale-invariant check of the Table 3 query sizes:
        // ntal  -> 16,016 / 128^3 ≈ 0.76 % of the grid;
        // ntal1 -> 162,628 / 128^3 ≈ 7.75 %.
        let a = atlas64();
        let cells = a.geometry().cell_count() as f64;
        let ntal = a.structure("ntal").unwrap().region.voxel_count() as f64 / cells;
        assert!((0.0061..0.0092).contains(&ntal), "ntal fraction {ntal}");
        let ntal1 = a.structure("ntal1").unwrap().region.voxel_count() as f64 / cells;
        assert!((0.062..0.093).contains(&ntal1), "ntal1 fraction {ntal1}");
    }

    #[test]
    fn hemispheres_are_disjoint_and_mirror_sized() {
        let a = atlas64();
        let l = &a.structure("ntal0").unwrap().region;
        let r = &a.structure("ntal1").unwrap().region;
        assert!(l.intersect(r).is_empty(), "hemispheres must not overlap");
        let (lv, rv) = (l.voxel_count() as f64, r.voxel_count() as f64);
        assert!((lv / rv - 1.0).abs() < 0.05, "asymmetric hemispheres: {lv} vs {rv}");
    }

    #[test]
    fn deep_structures_sit_inside_a_hemisphere_or_midline() {
        let a = atlas64();
        let brain =
            a.structure("ntal0").unwrap().region.union(&a.structure("ntal1").unwrap().region);
        for name in ["thalamus", "putamen-l", "putamen-r", "ventricle"] {
            let s = &a.structure(name).unwrap().region;
            let inside = brain.intersect(s).voxel_count() as f64 / s.voxel_count() as f64;
            assert!(inside > 0.60, "{name} mostly outside the brain ({inside:.2})");
        }
    }

    #[test]
    fn lateral_structures_are_mirrored_pairs() {
        let a = atlas64();
        for (l, r) in [("putamen-l", "putamen-r"), ("hippocampus-l", "hippocampus-r")] {
            let lv = a.structure(l).unwrap().region.voxel_count() as f64;
            let rv = a.structure(r).unwrap().region.voxel_count() as f64;
            assert!((lv / rv - 1.0).abs() < 0.10, "{l} vs {r}: {lv} vs {rv}");
            assert!(a
                .structure(l)
                .unwrap()
                .region
                .intersect(&a.structure(r).unwrap().region)
                .is_empty());
        }
    }

    #[test]
    fn regions_match_their_solids() {
        let a = atlas64();
        let s = a.structure("thalamus").unwrap();
        for (x, y, z) in s.region.iter_voxels3().step_by(7) {
            assert!(s.solid.contains(qbism_geometry::IVec3::new(x, y, z).center()));
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = atlas64();
        let b = atlas64();
        for (sa, sb) in a.structures().iter().zip(b.structures()) {
            assert_eq!(sa.region, sb.region, "{} differs across builds", sa.name);
        }
    }

    #[test]
    fn brain_mask_covers_all_structures() {
        let a = atlas64();
        let mask = a.brain_solid(64.0);
        let p = Vec3::new(32.0, 32.0, 34.0);
        assert!(mask.contains(p), "brain centre inside mask");
        assert!(!mask.contains(Vec3::new(1.0, 1.0, 1.0)), "corner outside mask");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_grid_rejected() {
        let _ = build_atlas(GridGeometry::new(CurveKind::Hilbert, 3, 3));
    }

    /// Exact paper-scale sizes; ignored by default because rasterizing
    /// 11 structures at 128³ in a debug build takes a while.  Run with
    /// `cargo test -p qbism-phantom --release -- --ignored`.
    #[test]
    #[ignore = "128^3 rasterization is release-build work"]
    fn paper_scale_voxel_counts() {
        let a = build_atlas(GridGeometry::new(CurveKind::Hilbert, 3, 7));
        let ntal = a.structure("ntal").unwrap().region.voxel_count();
        assert!((13_000..20_000).contains(&ntal), "ntal {ntal} vs paper 16,016");
        let ntal1 = a.structure("ntal1").unwrap().region.voxel_count();
        assert!((140_000..190_000).contains(&ntal1), "ntal1 {ntal1} vs paper 162,628");
    }
}
