//! Continuous atlas-space intensity fields.
//!
//! A *study* is ultimately a sampled scalar field (Section 1 of the
//! paper).  We synthesize the underlying continuous field per modality
//! and let [`crate::study`] sample it through a misalignment transform,
//! which is exactly how a scanner sees a patient.

use crate::anatomy::PhantomAtlas;
use crate::noise::ValueNoise;
use qbism_geometry::{Solid, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A continuous scalar field over atlas space (units: atlas voxels =
/// millimetres), producing values in `[0, 255]`.
pub trait ScalarField3 {
    /// Field value at a point.
    fn value(&self, p: Vec3) -> f64;
}

/// MRI-like structural field: each structure has a characteristic tissue
/// intensity, modulated by fractal noise ("soft-tissue structural
/// information").
pub struct MriField<'a> {
    atlas: &'a PhantomAtlas,
    texture: ValueNoise,
    /// Noise amplitude around each tissue's base intensity.
    amplitude: f64,
}

impl<'a> MriField<'a> {
    /// An MRI field with the given seed.
    pub fn new(atlas: &'a PhantomAtlas, seed: u64) -> Self {
        let side = f64::from(atlas.geometry().side());
        MriField { atlas, texture: ValueNoise::new(seed, side / 18.0), amplitude: 28.0 }
    }
}

impl ScalarField3 for MriField<'_> {
    fn value(&self, p: Vec3) -> f64 {
        // Last matching structure wins: deep structures are listed after
        // the hemispheres and override their base tissue.
        let mut base = None;
        for s in self.atlas.structures() {
            if s.solid.contains(p) {
                base = Some(s.mri_intensity);
            }
        }
        // The longitudinal fissure lies between the hemisphere REGIONs
        // but is still brain tissue on an MR image.
        let side = f64::from(self.atlas.geometry().side());
        if base.is_none() && self.atlas.brain_solid(side).contains(p) {
            base = Some(95.0);
        }
        let Some(base) = base else { return 0.0 };
        let t = self.texture.sample_fractal(p) - 0.5;
        (base + t * 2.0 * self.amplitude).clamp(0.0, 255.0)
    }
}

/// One focal activation: a Gaussian blob of elevated metabolic activity.
#[derive(Debug, Clone, Copy)]
pub struct Activation {
    /// Blob centre in atlas coordinates.
    pub center: Vec3,
    /// Gaussian sigma in millimetres.
    pub sigma: f64,
    /// Peak intensity contribution.
    pub peak: f64,
}

/// PET-like functional field: a smooth metabolic baseline inside the
/// brain plus focal activations ("localized, non-uniform intensity
/// distributions involving sections or layers of brain structures").
pub struct PetField<'a> {
    atlas: &'a PhantomAtlas,
    baseline: f64,
    activations: Vec<Activation>,
    /// Fine-grained measurement texture.
    texture: ValueNoise,
    /// Broad regional perfusion variation: real PET images span most of
    /// the intensity range across the cortex, not just at focal spots.
    perfusion: ValueNoise,
}

impl<'a> PetField<'a> {
    /// A PET field with `blob_count` activations placed pseudo-randomly
    /// inside structures (seeded, deterministic).
    pub fn new(atlas: &'a PhantomAtlas, seed: u64, blob_count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let side = f64::from(atlas.geometry().side());
        let deep: Vec<&str> = vec![
            "ntal",
            "thalamus",
            "putamen-l",
            "putamen-r",
            "hippocampus-l",
            "hippocampus-r",
            "caudate",
            "cerebellum",
        ];
        let mut activations = Vec::with_capacity(blob_count);
        let mut guard = 0;
        while activations.len() < blob_count && guard < blob_count * 200 {
            guard += 1;
            let name = deep[rng.gen_range(0..deep.len())];
            let Some(structure) = atlas.structure(name) else {
                continue;
            };
            let region = &structure.region;
            if region.is_empty() {
                continue;
            }
            // Pick a random voxel of the structure as the blob centre.
            let nth = rng.gen_range(0..region.voxel_count());
            let Some((x, y, z)) = region.iter_voxels3().nth(nth as usize) else {
                continue;
            };
            activations.push(Activation {
                center: Vec3::new(f64::from(x) + 0.5, f64::from(y) + 0.5, f64::from(z) + 0.5),
                sigma: rng.gen_range(0.03..0.08) * side,
                peak: rng.gen_range(120.0..190.0),
            });
        }
        PetField {
            atlas,
            baseline: 100.0,
            activations,
            texture: ValueNoise::new(seed ^ 0x5151_5151, side / 24.0),
            perfusion: ValueNoise::new(seed ^ 0x0bad_cafe, side / 5.0),
        }
    }

    /// The activation blobs (exposed so experiments can assert ground
    /// truth, e.g. "the high band must overlap blob centres").
    pub fn activations(&self) -> &[Activation] {
        &self.activations
    }
}

impl ScalarField3 for PetField<'_> {
    fn value(&self, p: Vec3) -> f64 {
        let side = f64::from(self.atlas.geometry().side());
        let brain = self.atlas.brain_solid(side);
        if !brain.contains(p) {
            return 0.0;
        }
        let mut v = self.baseline
            + (self.perfusion.sample_fractal(p) - 0.5) * 110.0
            + (self.texture.sample(p) - 0.5) * 36.0;
        // Anatomy-locked metabolism, identical across studies and seeds:
        // cortical grey matter (the outer shell) and the deep nuclei burn
        // more glucose than white matter.  This is what makes voxels
        // *consistently* fall in a band across a population of studies —
        // the effect Table 4's n-way intersection depends on.
        let depth = -brain.field(p); // positive inside
        if depth < 0.10 * side {
            v += 28.0;
        }
        for st in self.atlas.structures().iter().skip(3) {
            if st.solid.contains(p) {
                v += 22.0;
                break;
            }
        }
        for a in &self.activations {
            let d2 = (p - a.center).length_squared();
            v += a.peak * (-d2 / (2.0 * a.sigma * a.sigma)).exp();
        }
        v.clamp(0.0, 255.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anatomy::build_atlas;
    use qbism_region::GridGeometry;
    use qbism_sfc::CurveKind;

    fn atlas() -> PhantomAtlas {
        build_atlas(GridGeometry::new(CurveKind::Hilbert, 3, 5))
    }

    #[test]
    fn mri_zero_outside_brain_tissue_inside() {
        let a = atlas();
        let f = MriField::new(&a, 1);
        assert_eq!(f.value(Vec3::new(0.5, 0.5, 0.5)), 0.0, "air is 0");
        // A plain white-matter point in the left hemisphere, clear of
        // the dark ventricle and the deep nuclei.
        let tissue = Vec3::new(10.0, 16.0, 17.0);
        let v = f.value(tissue);
        assert!(v > 40.0, "brain tissue should be bright, got {v}");
    }

    #[test]
    fn mri_deep_structures_override_hemisphere_tissue() {
        let a = atlas();
        let f = MriField::new(&a, 1);
        // ventricle (dark CSF) lies inside the brain but must read dark.
        let s = a.structure("ventricle").unwrap();
        let (x, y, z) = s.region.iter_voxels3().next().unwrap();
        let p = Vec3::new(f64::from(x) + 0.5, f64::from(y) + 0.5, f64::from(z) + 0.5);
        assert!(f.value(p) < 90.0, "ventricle should be dark, got {}", f.value(p));
    }

    #[test]
    fn pet_blobs_raise_activity_at_their_centres() {
        let a = atlas();
        let f = PetField::new(&a, 7, 3);
        assert_eq!(f.activations().len(), 3);
        for blob in f.activations() {
            let at = f.value(blob.center);
            let far = f.value(blob.center + Vec3::splat(blob.sigma * 5.0));
            assert!(at > far, "activation centre {at} not hotter than far point {far}");
            assert!(at > 100.0, "blob centre too cold: {at}");
        }
    }

    #[test]
    fn pet_outside_brain_is_zero() {
        let a = atlas();
        let f = PetField::new(&a, 7, 2);
        assert_eq!(f.value(Vec3::new(1.0, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn fields_are_deterministic_per_seed() {
        let a = atlas();
        let p = Vec3::new(15.0, 17.0, 16.0);
        assert_eq!(PetField::new(&a, 9, 4).value(p), PetField::new(&a, 9, 4).value(p));
        assert_eq!(MriField::new(&a, 3).value(p), MriField::new(&a, 3).value(p));
        // Different seeds give different activations.
        let f1 = PetField::new(&a, 1, 4);
        let f2 = PetField::new(&a, 2, 4);
        assert_ne!(
            f1.activations().first().map(|b| (b.center.x, b.sigma)),
            f2.activations().first().map(|b| (b.center.x, b.sigma))
        );
    }

    #[test]
    fn values_stay_in_byte_range() {
        let a = atlas();
        let pet = PetField::new(&a, 11, 6);
        let mri = MriField::new(&a, 11);
        for i in 0..200 {
            let p = Vec3::new((i % 32) as f64, ((i * 7) % 32) as f64, ((i * 13) % 32) as f64);
            for v in [pet.value(p), mri.value(p)] {
                assert!((0.0..=255.0).contains(&v), "value {v} out of byte range");
            }
        }
    }
}
