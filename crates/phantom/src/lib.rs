//! Synthetic brain phantoms — the stand-in for the paper's UCLA data.
//!
//! The original evaluation used an atlas "digitally extracted from the
//! Talairach & Tournoux atlas" with 11 neuro-anatomic structures, plus 5
//! PET studies (128x128x51) and 3 MRI studies (512x512x44), each warped
//! to a 128³ 8-bit atlas volume and banded into 8 intensity bands.  That
//! data is not publicly available, so this crate synthesizes a
//! statistically faithful substitute:
//!
//! * [`anatomy`] — 11 named analytic structures (hemispheres,
//!   putamen, hippocampus, thalamus, …) rasterized into volumetric
//!   REGIONs.  Structure volumes are tuned so the paper's query targets
//!   match: `ntal` ≈ 16 k voxels, `ntal1` (one hemisphere) ≈ 160 k at
//!   128³;
//! * [`field`] — continuous atlas-space intensity fields: MRI-like
//!   (tissue-dependent intensity + lattice noise) and PET-like (smooth
//!   metabolic baseline + focal activation blobs);
//! * [`study`] — acquisition simulation: a random rigid+scale
//!   misalignment, sampling onto the modality's native anisotropic grid,
//!   quantization noise, plus ground-truth landmarks for registration;
//! * [`demographics`] — deterministic patients (name, age, sex) so
//!   population queries ("PET studies of 40-year-old females") have
//!   something to select.
//!
//! Everything is deterministic given a seed, so every benchmark table
//! regenerates identically.
//!
//! Why the substitution preserves the evaluation: the paper's measured
//! quantities depend only on statistical properties of the data —
//! compact connected anatomic REGIONs, smooth fields whose intensity
//! bands have power-law delta lengths (EQ 1), and volumes of the right
//! magnitude.  The benches verify those properties rather than assume
//! them (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anatomy;
pub mod demographics;
pub mod field;
pub mod study;

mod noise;

pub use anatomy::{build_atlas, AtlasStructure, PhantomAtlas};
pub use demographics::{Patient, Sex};
pub use field::{MriField, PetField, ScalarField3};
pub use noise::ValueNoise;
pub use study::{AcquiredStudy, Modality, StudyGenerator};
