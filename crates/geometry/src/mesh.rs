//! Triangle meshes.
//!
//! The *Atlas Structure* entity stores, next to the volumetric REGION of
//! each structure, "a triangular mesh representing the surface of the
//! structure to support faster rendering" (Section 3.3).  [`TriMesh`] is
//! that second long-field column; `qbism-render` extracts and rasterizes
//! these meshes.

use crate::Vec3;

/// An indexed triangle mesh with per-vertex normals.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    /// Vertex positions.
    pub vertices: Vec<Vec3>,
    /// Per-vertex unit normals (same length as `vertices`).
    pub normals: Vec<Vec3>,
    /// Triangles as counter-clockwise vertex index triples.
    pub triangles: Vec<[u32; 3]>,
}

impl TriMesh {
    /// Creates an empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Appends a vertex with a placeholder normal, returning its index.
    pub fn push_vertex(&mut self, v: Vec3) -> u32 {
        let idx = match u32::try_from(self.vertices.len()) {
            Ok(idx) => idx,
            Err(_) => panic!("more than u32::MAX vertices"),
        };
        self.vertices.push(v);
        self.normals.push(Vec3::ZERO);
        idx
    }

    /// Appends a triangle.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn push_triangle(&mut self, tri: [u32; 3]) {
        let n = self.vertices.len() as u32;
        assert!(
            tri.iter().all(|&i| i < n),
            "triangle {tri:?} references missing vertices (have {n})"
        );
        self.triangles.push(tri);
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| {
                let [a, b, c] = self.corners(t);
                (b - a).cross(c - a).length() * 0.5
            })
            .sum()
    }

    /// The three corner positions of triangle `t`.
    pub fn corners(&self, t: &[u32; 3]) -> [Vec3; 3] {
        [self.vertices[t[0] as usize], self.vertices[t[1] as usize], self.vertices[t[2] as usize]]
    }

    /// Axis-aligned bounding box `(min, max)`, or `None` for an empty mesh.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let mut it = self.vertices.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Recomputes per-vertex normals as the area-weighted average of the
    /// incident triangle normals (standard smooth shading normals).
    pub fn recompute_normals(&mut self) {
        self.normals = vec![Vec3::ZERO; self.vertices.len()];
        for t in &self.triangles {
            let [a, b, c] = [
                self.vertices[t[0] as usize],
                self.vertices[t[1] as usize],
                self.vertices[t[2] as usize],
            ];
            // Cross product length is 2x area, so summing unnormalized
            // face normals area-weights automatically.
            let n = (b - a).cross(c - a);
            for &i in t {
                self.normals[i as usize] += n;
            }
        }
        for n in &mut self.normals {
            *n = n.normalized();
        }
    }

    /// Serialized byte size with 32-bit floats and indices — the footprint
    /// the mesh long-field column would occupy.
    pub fn encoded_len(&self) -> usize {
        // header (2 x u32 counts) + vertices (3 f32) + normals (3 f32) + tris (3 u32)
        8 + self.vertices.len() * 12 + self.normals.len() * 12 + self.triangles.len() * 12
    }

    /// Appends all of `other` into `self` (indices re-based).
    pub fn merge(&mut self, other: &TriMesh) {
        let base = self.vertices.len() as u32;
        self.vertices.extend_from_slice(&other.vertices);
        self.normals.extend_from_slice(&other.normals);
        self.triangles
            .extend(other.triangles.iter().map(|t| [t[0] + base, t[1] + base, t[2] + base]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_right_triangle() -> TriMesh {
        let mut m = TriMesh::new();
        let a = m.push_vertex(Vec3::ZERO);
        let b = m.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = m.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        m.push_triangle([a, b, c]);
        m
    }

    #[test]
    fn area_of_unit_right_triangle() {
        let m = unit_right_triangle();
        assert!((m.surface_area() - 0.5).abs() < 1e-12);
        assert_eq!(m.vertex_count(), 3);
        assert_eq!(m.triangle_count(), 1);
    }

    #[test]
    fn normals_point_along_ccw_winding() {
        let mut m = unit_right_triangle();
        m.recompute_normals();
        for n in &m.normals {
            assert!(n.distance(Vec3::new(0.0, 0.0, 1.0)) < 1e-12);
        }
    }

    #[test]
    fn shared_vertex_normals_average() {
        // Two faces of a "tent" meeting at a ridge: ridge normals bisect.
        let mut m = TriMesh::new();
        let a = m.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        let b = m.push_vertex(Vec3::new(1.0, 0.0, 1.0));
        let c = m.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        let d = m.push_vertex(Vec3::new(1.0, 1.0, 1.0));
        let e = m.push_vertex(Vec3::new(2.0, 0.0, 0.0));
        let f = m.push_vertex(Vec3::new(2.0, 1.0, 0.0));
        m.push_triangle([a, b, c]);
        m.push_triangle([c, b, d]);
        m.push_triangle([b, e, d]);
        m.push_triangle([d, e, f]);
        m.recompute_normals();
        // Ridge vertices b and d get the average of the two slope normals,
        // which points straight up the bisector plane (y = 0 component).
        assert!(m.normals[b as usize].y.abs() < 1e-9);
        assert!(m.normals[b as usize].z > 0.5);
    }

    #[test]
    fn bounds_and_merge() {
        let mut m = unit_right_triangle();
        let mut other = TriMesh::new();
        let a = other.push_vertex(Vec3::new(5.0, 5.0, 5.0));
        let b = other.push_vertex(Vec3::new(6.0, 5.0, 5.0));
        let c = other.push_vertex(Vec3::new(5.0, 6.0, 5.0));
        other.push_triangle([a, b, c]);
        m.merge(&other);
        assert_eq!(m.triangle_count(), 2);
        assert_eq!(m.vertex_count(), 6);
        // Merged triangle indices must be rebased past the original 3.
        assert_eq!(m.triangles[1], [3, 4, 5]);
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::new(6.0, 6.0, 5.0));
        assert!(TriMesh::new().bounds().is_none());
    }

    #[test]
    fn encoded_len_counts_fields() {
        let m = unit_right_triangle();
        assert_eq!(m.encoded_len(), 8 + 3 * 12 + 3 * 12 + 12);
    }

    #[test]
    #[should_panic(expected = "references missing vertices")]
    fn triangle_with_bad_index_panics() {
        let mut m = TriMesh::new();
        m.push_vertex(Vec3::ZERO);
        m.push_triangle([0, 1, 2]);
    }
}
