//! Analytic solids: the membership predicates used to synthesize anatomy.
//!
//! The paper chose a *volumetric* REGION representation precisely because
//! "arbitrary REGIONs of interest do not necessarily have simple analytical
//! descriptions" — but our synthetic atlas structures (the stand-in for the
//! digitized Talairach atlas) are *generated from* analytic solids and then
//! rasterized into volumetric REGIONs, after which the rest of the system
//! treats them as arbitrary.

use crate::{Affine3, Vec3};

/// A solid is a membership predicate over continuous 3-space.
pub trait Solid {
    /// Whether point `p` is inside the solid.
    fn contains(&self, p: Vec3) -> bool;

    /// A signed "inside-ness" field: negative inside, positive outside,
    /// zero on the boundary.  Need not be a true distance; it is used for
    /// smooth intensity synthesis (e.g. activity falling off away from a
    /// structure) and surface extraction.
    fn field(&self, p: Vec3) -> f64;
}

/// A sphere.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Centre.
    pub center: Vec3,
    /// Radius (must be positive).
    pub radius: f64,
}

impl Sphere {
    /// Creates a sphere.
    ///
    /// # Panics
    /// Panics unless `radius > 0`.
    pub fn new(center: Vec3, radius: f64) -> Self {
        assert!(radius > 0.0, "sphere radius must be positive, got {radius}");
        Sphere { center, radius }
    }
}

impl Solid for Sphere {
    fn contains(&self, p: Vec3) -> bool {
        (p - self.center).length_squared() <= self.radius * self.radius
    }

    fn field(&self, p: Vec3) -> f64 {
        (p - self.center).length() - self.radius
    }
}

/// An axis-aligned ellipsoid.
#[derive(Debug, Clone, Copy)]
pub struct Ellipsoid {
    /// Centre.
    pub center: Vec3,
    /// Semi-axes (all positive).
    pub radii: Vec3,
}

impl Ellipsoid {
    /// Creates an ellipsoid.
    ///
    /// # Panics
    /// Panics unless all semi-axes are positive.
    pub fn new(center: Vec3, radii: Vec3) -> Self {
        assert!(
            radii.x > 0.0 && radii.y > 0.0 && radii.z > 0.0,
            "ellipsoid radii must be positive, got {radii:?}"
        );
        Ellipsoid { center, radii }
    }

    fn normalized_radius(&self, p: Vec3) -> f64 {
        let d = p - self.center;
        let q = Vec3::new(d.x / self.radii.x, d.y / self.radii.y, d.z / self.radii.z);
        q.length()
    }
}

impl Solid for Ellipsoid {
    fn contains(&self, p: Vec3) -> bool {
        self.normalized_radius(p) <= 1.0
    }

    fn field(&self, p: Vec3) -> f64 {
        // Approximate signed distance: scaled radial excess.
        (self.normalized_radius(p) - 1.0) * self.radii.x.min(self.radii.y).min(self.radii.z)
    }
}

/// A superquadric `|x/a|^e + |y/b|^e + |z/c|^e <= 1`.
///
/// Exponent 2 is an ellipsoid; larger exponents are "boxier", smaller are
/// "pointier" — useful variety for synthetic anatomic structures.
#[derive(Debug, Clone, Copy)]
pub struct Superquadric {
    /// Centre.
    pub center: Vec3,
    /// Semi-axes (all positive).
    pub radii: Vec3,
    /// Shape exponent (must be positive).
    pub exponent: f64,
}

impl Superquadric {
    /// Creates a superquadric.
    ///
    /// # Panics
    /// Panics unless all semi-axes and the exponent are positive.
    pub fn new(center: Vec3, radii: Vec3, exponent: f64) -> Self {
        assert!(
            radii.x > 0.0 && radii.y > 0.0 && radii.z > 0.0,
            "superquadric radii must be positive"
        );
        assert!(exponent > 0.0, "superquadric exponent must be positive");
        Superquadric { center, radii, exponent }
    }

    fn level(&self, p: Vec3) -> f64 {
        let d = p - self.center;
        (d.x / self.radii.x).abs().powf(self.exponent)
            + (d.y / self.radii.y).abs().powf(self.exponent)
            + (d.z / self.radii.z).abs().powf(self.exponent)
    }
}

impl Solid for Superquadric {
    fn contains(&self, p: Vec3) -> bool {
        self.level(p) <= 1.0
    }

    fn field(&self, p: Vec3) -> f64 {
        self.level(p) - 1.0
    }
}

/// An axis-aligned solid box over continuous coordinates.
#[derive(Debug, Clone, Copy)]
pub struct SolidBox {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl SolidBox {
    /// Creates a box.
    ///
    /// # Panics
    /// Panics if any `min` component exceeds the matching `max`.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(min.x <= max.x && min.y <= max.y && min.z <= max.z, "degenerate solid box");
        SolidBox { min, max }
    }
}

impl Solid for SolidBox {
    fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    fn field(&self, p: Vec3) -> f64 {
        let center = (self.min + self.max) * 0.5;
        let half = (self.max - self.min) * 0.5;
        let d = p - center;
        let q = Vec3::new(d.x.abs() - half.x, d.y.abs() - half.y, d.z.abs() - half.z);
        let outside = Vec3::new(q.x.max(0.0), q.y.max(0.0), q.z.max(0.0)).length();
        let inside = q.x.max(q.y).max(q.z).min(0.0);
        outside + inside
    }
}

/// The half-space `n . p <= d`.
#[derive(Debug, Clone, Copy)]
pub struct HalfSpace {
    /// Outward normal (need not be unit length).
    pub normal: Vec3,
    /// Plane offset: the boundary is `normal . p = offset`.
    pub offset: f64,
}

impl HalfSpace {
    /// Creates a half-space `normal . p <= offset`.
    pub fn new(normal: Vec3, offset: f64) -> Self {
        HalfSpace { normal, offset }
    }
}

impl Solid for HalfSpace {
    fn contains(&self, p: Vec3) -> bool {
        self.normal.dot(p) <= self.offset
    }

    fn field(&self, p: Vec3) -> f64 {
        (self.normal.dot(p) - self.offset) / self.normal.length().max(f64::EPSILON)
    }
}

/// Union of two solids.
#[derive(Debug, Clone, Copy)]
pub struct Union<A, B>(pub A, pub B);

impl<A: Solid, B: Solid> Solid for Union<A, B> {
    fn contains(&self, p: Vec3) -> bool {
        self.0.contains(p) || self.1.contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        self.0.field(p).min(self.1.field(p))
    }
}

/// Intersection of two solids.
#[derive(Debug, Clone, Copy)]
pub struct Intersection<A, B>(pub A, pub B);

impl<A: Solid, B: Solid> Solid for Intersection<A, B> {
    fn contains(&self, p: Vec3) -> bool {
        self.0.contains(p) && self.1.contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        self.0.field(p).max(self.1.field(p))
    }
}

/// Difference `A \ B`.
#[derive(Debug, Clone, Copy)]
pub struct Difference<A, B>(pub A, pub B);

impl<A: Solid, B: Solid> Solid for Difference<A, B> {
    fn contains(&self, p: Vec3) -> bool {
        self.0.contains(p) && !self.1.contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        self.0.field(p).max(-self.1.field(p))
    }
}

/// Complement of a solid.
#[derive(Debug, Clone, Copy)]
pub struct Complement<A>(pub A);

impl<A: Solid> Solid for Complement<A> {
    fn contains(&self, p: Vec3) -> bool {
        !self.0.contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        -self.0.field(p)
    }
}

/// A solid transformed by an affine map: `p` is inside iff
/// `inverse(transform)(p)` is inside the base solid.
#[derive(Debug, Clone)]
pub struct Transformed<A> {
    base: A,
    inverse: Affine3,
}

impl<A: Solid> Transformed<A> {
    /// Wraps `base` so it appears moved by `transform`.
    ///
    /// # Panics
    /// Panics if `transform` is singular.
    pub fn new(base: A, transform: Affine3) -> Self {
        let inverse = match transform.inverse() {
            Some(inv) => inv,
            None => panic!("cannot transform a solid by a singular affine map"),
        };
        Transformed { base, inverse }
    }
}

impl<A: Solid> Solid for Transformed<A> {
    fn contains(&self, p: Vec3) -> bool {
        self.base.contains(self.inverse.apply(p))
    }

    fn field(&self, p: Vec3) -> f64 {
        self.base.field(self.inverse.apply(p))
    }
}

impl<S: Solid + ?Sized> Solid for &S {
    fn contains(&self, p: Vec3) -> bool {
        (**self).contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        (**self).field(p)
    }
}

impl<S: Solid + ?Sized> Solid for Box<S> {
    fn contains(&self, p: Vec3) -> bool {
        (**self).contains(p)
    }

    fn field(&self, p: Vec3) -> f64 {
        (**self).field(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sphere_membership_and_field_sign() {
        let s = Sphere::new(Vec3::new(5.0, 5.0, 5.0), 2.0);
        assert!(s.contains(Vec3::new(5.0, 5.0, 5.0)));
        assert!(s.contains(Vec3::new(6.9, 5.0, 5.0)));
        assert!(!s.contains(Vec3::new(7.1, 5.0, 5.0)));
        assert!(s.field(Vec3::new(5.0, 5.0, 5.0)) < 0.0);
        assert!(s.field(Vec3::new(10.0, 5.0, 5.0)) > 0.0);
        assert!(s.field(Vec3::new(7.0, 5.0, 5.0)).abs() < 1e-12);
    }

    #[test]
    fn ellipsoid_respects_anisotropy() {
        let e = Ellipsoid::new(Vec3::ZERO, Vec3::new(4.0, 1.0, 1.0));
        assert!(e.contains(Vec3::new(3.9, 0.0, 0.0)));
        assert!(!e.contains(Vec3::new(0.0, 1.1, 0.0)));
    }

    #[test]
    fn superquadric_exponent_two_is_ellipsoid() {
        let e = Ellipsoid::new(Vec3::ZERO, Vec3::new(3.0, 2.0, 1.0));
        let q = Superquadric::new(Vec3::ZERO, Vec3::new(3.0, 2.0, 1.0), 2.0);
        for p in [
            Vec3::new(1.0, 1.0, 0.2),
            Vec3::new(2.9, 0.0, 0.0),
            Vec3::new(2.0, 1.5, 0.5),
            Vec3::new(0.0, 0.0, 1.05),
        ] {
            assert_eq!(e.contains(p), q.contains(p), "{p:?}");
        }
    }

    #[test]
    fn high_exponent_superquadric_fills_corners() {
        // e -> infinity approaches the bounding box; the corner region an
        // ellipsoid misses must be inside for a boxy superquadric.
        let corner = Vec3::new(0.85, 0.85, 0.85);
        let ball = Superquadric::new(Vec3::ZERO, Vec3::ONE, 2.0);
        let boxy = Superquadric::new(Vec3::ZERO, Vec3::ONE, 10.0);
        assert!(!ball.contains(corner));
        assert!(boxy.contains(corner));
    }

    #[test]
    fn half_space_splits_hemispheres() {
        // The paper's "right brain hemisphere" selections are half-space
        // intersections with the head structure.
        let right = HalfSpace::new(Vec3::new(1.0, 0.0, 0.0), 64.0);
        assert!(right.contains(Vec3::new(10.0, 100.0, 3.0)));
        assert!(!right.contains(Vec3::new(65.0, 0.0, 0.0)));
    }

    #[test]
    fn csg_laws_pointwise() {
        let a = Sphere::new(Vec3::ZERO, 2.0);
        let b = Sphere::new(Vec3::new(1.5, 0.0, 0.0), 2.0);
        let pts = [
            Vec3::ZERO,
            Vec3::new(1.5, 0.0, 0.0),
            Vec3::new(-1.9, 0.0, 0.0),
            Vec3::new(3.4, 0.0, 0.0),
            Vec3::new(10.0, 10.0, 10.0),
        ];
        for p in pts {
            assert_eq!(Union(a, b).contains(p), a.contains(p) || b.contains(p));
            assert_eq!(Intersection(a, b).contains(p), a.contains(p) && b.contains(p));
            assert_eq!(Difference(a, b).contains(p), a.contains(p) && !b.contains(p));
            assert_eq!(Complement(a).contains(p), !a.contains(p));
        }
    }

    #[test]
    fn transformed_solid_moves() {
        let s = Sphere::new(Vec3::ZERO, 1.0);
        let moved = Transformed::new(s, Affine3::translation(Vec3::new(10.0, 0.0, 0.0)));
        assert!(moved.contains(Vec3::new(10.2, 0.0, 0.0)));
        assert!(!moved.contains(Vec3::ZERO));
    }

    #[test]
    fn box_field_is_signed_distance() {
        let b = SolidBox::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 2.0));
        assert!((b.field(Vec3::new(3.0, 1.0, 1.0)) - 1.0).abs() < 1e-12);
        assert!((b.field(Vec3::new(1.0, 1.0, 1.0)) + 1.0).abs() < 1e-12);
        // corner distance
        let d = b.field(Vec3::new(3.0, 3.0, 3.0));
        assert!((d - (3.0f64).sqrt()).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn field_sign_agrees_with_contains(p in proptest::array::uniform3(-5.0f64..5.0)) {
            let p = Vec3::from(p);
            let solids: Vec<Box<dyn Solid>> = vec![
                Box::new(Sphere::new(Vec3::ZERO, 2.0)),
                Box::new(Ellipsoid::new(Vec3::ZERO, Vec3::new(3.0, 1.0, 2.0))),
                Box::new(Superquadric::new(Vec3::ZERO, Vec3::new(2.0, 2.0, 1.0), 3.0)),
                Box::new(SolidBox::new(Vec3::splat(-1.5), Vec3::splat(1.5))),
                Box::new(HalfSpace::new(Vec3::new(0.0, 1.0, 0.0), 0.5)),
            ];
            for s in &solids {
                // strictly negative field => inside; strictly positive => outside.
                let f = s.field(p);
                if f < -1e-9 {
                    prop_assert!(s.contains(p));
                }
                if f > 1e-9 {
                    prop_assert!(!s.contains(p));
                }
            }
        }

        #[test]
        fn de_morgan_for_solids(p in proptest::array::uniform3(-4.0f64..4.0)) {
            let p = Vec3::from(p);
            let a = Sphere::new(Vec3::ZERO, 2.0);
            let b = SolidBox::new(Vec3::splat(-1.0), Vec3::splat(3.0));
            let lhs = Complement(Union(a, b)).contains(p);
            let rhs = Intersection(Complement(a), Complement(b)).contains(p);
            prop_assert_eq!(lhs, rhs);
        }
    }
}
