//! Geometry primitives for the QBISM reproduction.
//!
//! Everything spatial in QBISM lives on a regular 3-D grid (*atlas space*:
//! 128x128x128 in the paper) or in the continuous space the grid samples
//! (*patient space* before warping).  This crate provides:
//!
//! * [`Vec3`] — double-precision vectors/points for continuous space;
//! * [`IVec3`] / [`IBox3`] — integer voxel coordinates and inclusive boxes;
//! * [`Affine3`] — 4x4 affine transforms (the paper's warping matrices);
//! * [`Solid`] and the analytic solids used to synthesize anatomy
//!   ([`Ellipsoid`], [`Superquadric`], half-spaces, CSG combinators);
//! * [`TriMesh`] — the triangular surface meshes the *Atlas Structure*
//!   entity stores alongside each volumetric REGION for fast rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod box3;
mod mesh;
mod solid;
mod vec3;

pub use affine::Affine3;
pub use box3::{IBox3, IVec3};
pub use mesh::TriMesh;
pub use solid::{
    Complement, Difference, Ellipsoid, HalfSpace, Intersection, Solid, SolidBox, Sphere,
    Superquadric, Transformed, Union,
};
pub use vec3::Vec3;
