//! Integer voxel coordinates and inclusive axis-aligned boxes.
//!
//! The paper's spatial query Q2 is "the data inside a rectangular solid
//! with corners (30,30,30) and (100,100,100)" — an inclusive integer box
//! of side 71.  [`IBox3`] models exactly that.

use crate::Vec3;

/// An integer voxel coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IVec3 {
    /// x coordinate.
    pub x: u32,
    /// y coordinate.
    pub y: u32,
    /// z coordinate.
    pub z: u32,
}

impl IVec3 {
    /// Constructs a voxel coordinate.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        IVec3 { x, y, z }
    }

    /// The voxel centre in continuous space (voxel `(i,j,k)` spans
    /// `[i, i+1) x [j, j+1) x [k, k+1)`, so its centre is at `+0.5`).
    pub fn center(self) -> Vec3 {
        Vec3::new(f64::from(self.x) + 0.5, f64::from(self.y) + 0.5, f64::from(self.z) + 0.5)
    }

    /// As a `[u32; 3]` array in `(x, y, z)` order.
    pub const fn to_array(self) -> [u32; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[u32; 3]> for IVec3 {
    fn from(a: [u32; 3]) -> Self {
        IVec3::new(a[0], a[1], a[2])
    }
}

/// An inclusive axis-aligned box of voxels: both corners are inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IBox3 {
    /// Minimum corner (inclusive).
    pub min: IVec3,
    /// Maximum corner (inclusive).
    pub max: IVec3,
}

impl IBox3 {
    /// Constructs a box from two inclusive corners.
    ///
    /// # Panics
    /// Panics if any `min` component exceeds the matching `max` component.
    pub fn new(min: IVec3, max: IVec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "degenerate box: min {min:?} exceeds max {max:?}"
        );
        IBox3 { min, max }
    }

    /// The paper's Q2 box: corners (30,30,30) and (100,100,100).
    pub fn paper_q2() -> Self {
        IBox3::new(IVec3::new(30, 30, 30), IVec3::new(100, 100, 100))
    }

    /// A cube covering a whole `side x side x side` grid.
    ///
    /// # Panics
    /// Panics if `side == 0`.
    pub fn full_grid(side: u32) -> Self {
        assert!(side > 0, "grid side must be positive");
        IBox3::new(IVec3::new(0, 0, 0), IVec3::new(side - 1, side - 1, side - 1))
    }

    /// Extent along each axis (inclusive count of voxels).
    pub fn extent(&self) -> IVec3 {
        IVec3::new(
            self.max.x - self.min.x + 1,
            self.max.y - self.min.y + 1,
            self.max.z - self.min.z + 1,
        )
    }

    /// Number of voxels inside.
    pub fn volume(&self) -> u64 {
        let e = self.extent();
        u64::from(e.x) * u64::from(e.y) * u64::from(e.z)
    }

    /// Whether `p` lies inside the box.
    pub fn contains(&self, p: IVec3) -> bool {
        (self.min.x..=self.max.x).contains(&p.x)
            && (self.min.y..=self.max.y).contains(&p.y)
            && (self.min.z..=self.max.z).contains(&p.z)
    }

    /// Whether every voxel of `other` lies inside `self`.
    pub fn contains_box(&self, other: &IBox3) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// Intersection with `other`, or `None` if disjoint.
    pub fn intersect(&self, other: &IBox3) -> Option<IBox3> {
        let min = IVec3::new(
            self.min.x.max(other.min.x),
            self.min.y.max(other.min.y),
            self.min.z.max(other.min.z),
        );
        let max = IVec3::new(
            self.max.x.min(other.max.x),
            self.max.y.min(other.max.y),
            self.max.z.min(other.max.z),
        );
        if min.x <= max.x && min.y <= max.y && min.z <= max.z {
            Some(IBox3 { min, max })
        } else {
            None
        }
    }

    /// Iterates every voxel in the box in scanline order (z fastest).
    pub fn iter(&self) -> impl Iterator<Item = IVec3> + '_ {
        let (xs, ys, zs) =
            (self.min.x..=self.max.x, self.min.y..=self.max.y, self.min.z..=self.max.z);
        xs.flat_map(move |x| {
            let zs = zs.clone();
            ys.clone().flat_map(move |y| zs.clone().map(move |z| IVec3::new(x, y, z)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_q2_has_expected_voxel_count() {
        // Table 3 row Q2: a 71x71x71 rectangular solid = 357,911 voxels.
        let b = IBox3::paper_q2();
        assert_eq!(b.extent().to_array(), [71, 71, 71]);
        assert_eq!(b.volume(), 357_911);
    }

    #[test]
    fn containment_is_inclusive_on_both_corners() {
        let b = IBox3::new(IVec3::new(2, 2, 2), IVec3::new(4, 4, 4));
        assert!(b.contains(IVec3::new(2, 2, 2)));
        assert!(b.contains(IVec3::new(4, 4, 4)));
        assert!(!b.contains(IVec3::new(5, 4, 4)));
        assert!(!b.contains(IVec3::new(1, 3, 3)));
        assert_eq!(b.volume(), 27);
    }

    #[test]
    fn intersection_cases() {
        let a = IBox3::new(IVec3::new(0, 0, 0), IVec3::new(5, 5, 5));
        let b = IBox3::new(IVec3::new(3, 3, 3), IVec3::new(8, 8, 8));
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, IBox3::new(IVec3::new(3, 3, 3), IVec3::new(5, 5, 5)));
        // Touching at a single voxel still counts (inclusive boxes).
        let d = IBox3::new(IVec3::new(5, 5, 5), IVec3::new(9, 9, 9));
        assert_eq!(a.intersect(&d).unwrap().volume(), 1);
        // Disjoint.
        let e = IBox3::new(IVec3::new(6, 0, 0), IVec3::new(9, 2, 2));
        assert!(a.intersect(&e).is_none());
    }

    #[test]
    fn iter_visits_each_voxel_once() {
        let b = IBox3::new(IVec3::new(1, 2, 3), IVec3::new(3, 3, 5));
        let voxels: Vec<IVec3> = b.iter().collect();
        assert_eq!(voxels.len() as u64, b.volume());
        let mut dedup = voxels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), voxels.len());
        assert!(voxels.iter().all(|&v| b.contains(v)));
    }

    #[test]
    fn full_grid_and_contains_box() {
        let g = IBox3::full_grid(128);
        assert_eq!(g.volume(), 2_097_152); // the paper's 2M voxels per study
        assert!(g.contains_box(&IBox3::paper_q2()));
        assert!(!IBox3::paper_q2().contains_box(&g));
    }

    #[test]
    fn voxel_center() {
        assert_eq!(IVec3::new(0, 0, 0).center(), Vec3::new(0.5, 0.5, 0.5));
        assert_eq!(IVec3::new(10, 20, 30).center(), Vec3::new(10.5, 20.5, 30.5));
    }

    #[test]
    #[should_panic(expected = "degenerate box")]
    fn inverted_corners_panic() {
        let _ = IBox3::new(IVec3::new(5, 0, 0), IVec3::new(4, 9, 9));
    }

    proptest! {
        #[test]
        fn intersect_commutes_and_shrinks(
            a_min in proptest::array::uniform3(0u32..50),
            a_ext in proptest::array::uniform3(1u32..30),
            b_min in proptest::array::uniform3(0u32..50),
            b_ext in proptest::array::uniform3(1u32..30),
        ) {
            let mk = |min: [u32; 3], ext: [u32; 3]| IBox3::new(
                IVec3::from(min),
                IVec3::new(min[0] + ext[0] - 1, min[1] + ext[1] - 1, min[2] + ext[2] - 1),
            );
            let a = mk(a_min, a_ext);
            let b = mk(b_min, b_ext);
            let ab = a.intersect(&b);
            prop_assert_eq!(ab, b.intersect(&a));
            if let Some(c) = ab {
                prop_assert!(c.volume() <= a.volume().min(b.volume()));
                prop_assert!(a.contains_box(&c) && b.contains_box(&c));
            }
        }
    }
}
