//! Double-precision 3-vectors.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or direction in continuous 3-space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The all-ones vector.
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };

    /// Constructs a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared length (avoids the square root when comparing distances).
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction; returns `ZERO` for the zero
    /// vector rather than dividing by zero.
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len <= f64::EPSILON {
            Vec3::ZERO
        } else {
            self / len
        }
    }

    /// Component-wise product.
    pub fn hadamard(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Component accessor by axis index 0..3.
    ///
    /// # Panics
    /// Panics if `axis > 2`.
    pub fn axis(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis {axis} out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        [v.x, v.y, v.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a + b - b, a);
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
        // cross is perpendicular to both operands
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.0, 5.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn length_and_normalization() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_hadamard_axis() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(3.0, 2.0, 0.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 2.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(3.0, 5.0, 0.0));
        assert_eq!(a.hadamard(b), Vec3::new(3.0, 10.0, 0.0));
        assert_eq!(a.axis(0), 1.0);
        assert_eq!(a.axis(1), 5.0);
        assert_eq!(a.axis(2), -2.0);
    }

    #[test]
    fn array_conversions() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        let a: [f64; 3] = v.into();
        assert_eq!(Vec3::from(a), v);
    }

    #[test]
    #[should_panic(expected = "axis 3 out of range")]
    fn bad_axis_panics() {
        let _ = Vec3::ONE.axis(3);
    }
}
