//! Affine transformations of 3-space.
//!
//! The paper registers each acquired study to a reference atlas with
//! "affine transformations … warping matrices are computed and stored
//! along with the original and warped study."  [`Affine3`] is that stored
//! matrix: a 3x3 linear part plus a translation.

use crate::Vec3;

/// An affine map `p -> M p + t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine3 {
    /// Row-major 3x3 linear part.
    pub m: [[f64; 3]; 3],
    /// Translation.
    pub t: Vec3,
}

impl Affine3 {
    /// The identity transform.
    pub const IDENTITY: Affine3 =
        Affine3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]], t: Vec3::ZERO };

    /// Builds from a row-major 3x3 matrix and a translation.
    pub const fn new(m: [[f64; 3]; 3], t: Vec3) -> Self {
        Affine3 { m, t }
    }

    /// Pure translation.
    pub fn translation(t: Vec3) -> Self {
        Affine3 { t, ..Affine3::IDENTITY }
    }

    /// Anisotropic scaling about the origin.
    pub fn scaling(s: Vec3) -> Self {
        Affine3::new([[s.x, 0.0, 0.0], [0.0, s.y, 0.0], [0.0, 0.0, s.z]], Vec3::ZERO)
    }

    /// Uniform scaling about the origin.
    pub fn uniform_scaling(s: f64) -> Self {
        Affine3::scaling(Vec3::splat(s))
    }

    /// Rotation by `angle` radians about the x axis.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Affine3::new([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]], Vec3::ZERO)
    }

    /// Rotation by `angle` radians about the y axis.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Affine3::new([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]], Vec3::ZERO)
    }

    /// Rotation by `angle` radians about the z axis.
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Affine3::new([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]], Vec3::ZERO)
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * p.x + self.m[0][1] * p.y + self.m[0][2] * p.z + self.t.x,
            self.m[1][0] * p.x + self.m[1][1] * p.y + self.m[1][2] * p.z + self.t.y,
            self.m[2][0] * p.x + self.m[2][1] * p.y + self.m[2][2] * p.z + self.t.z,
        )
    }

    /// Applies only the linear part (for directions/normals of rigid maps).
    pub fn apply_linear(&self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Composition: `(self.then(g))(p) = g(self(p))`.
    pub fn then(&self, g: &Affine3) -> Affine3 {
        let mut m = [[0.0; 3]; 3];
        for (i, row) in m.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| g.m[i][k] * self.m[k][j]).sum();
            }
        }
        Affine3 { m, t: g.apply(self.t) }
    }

    /// Determinant of the linear part.
    pub fn det(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Inverse transform, or `None` if the linear part is singular
    /// (|det| below `1e-12`).
    pub fn inverse(&self) -> Option<Affine3> {
        let d = self.det();
        if d.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv = [
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) / d,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) / d,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) / d,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) / d,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) / d,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) / d,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) / d,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) / d,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) / d,
            ],
        ];
        let inv_a = Affine3 { m: inv, t: Vec3::ZERO };
        let t = -inv_a.apply_linear(self.t);
        Some(Affine3 { m: inv, t })
    }

    /// Maximum absolute difference between two transforms' coefficients.
    pub fn max_abs_diff(&self, other: &Affine3) -> f64 {
        let mut worst: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                worst = worst.max((self.m[i][j] - other.m[i][j]).abs());
            }
        }
        worst
            .max((self.t.x - other.t.x).abs())
            .max((self.t.y - other.t.y).abs())
            .max((self.t.z - other.t.z).abs())
    }
}

impl Default for Affine3 {
    fn default() -> Self {
        Affine3::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn identity_is_identity() {
        let p = Vec3::new(1.5, -2.0, 7.0);
        assert_eq!(Affine3::IDENTITY.apply(p), p);
        assert_eq!(Affine3::IDENTITY.det(), 1.0);
    }

    #[test]
    fn rotations_move_axes_correctly() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert!(Affine3::rotation_z(FRAC_PI_2).apply(x).distance(y) < 1e-12);
        assert!(Affine3::rotation_x(FRAC_PI_2).apply(y).distance(z) < 1e-12);
        assert!(Affine3::rotation_y(FRAC_PI_2).apply(z).distance(x) < 1e-12);
    }

    #[test]
    fn composition_order() {
        // then(): scale by 2 *then* translate by (1,0,0).
        let f = Affine3::uniform_scaling(2.0).then(&Affine3::translation(Vec3::new(1.0, 0.0, 0.0)));
        assert_eq!(f.apply(Vec3::new(1.0, 1.0, 1.0)), Vec3::new(3.0, 2.0, 2.0));
        // the other order: translate first, then scale.
        let g = Affine3::translation(Vec3::new(1.0, 0.0, 0.0)).then(&Affine3::uniform_scaling(2.0));
        assert_eq!(g.apply(Vec3::new(1.0, 1.0, 1.0)), Vec3::new(4.0, 2.0, 2.0));
    }

    #[test]
    fn inverse_of_known_transform() {
        let f = Affine3::translation(Vec3::new(3.0, -1.0, 2.0))
            .then(&Affine3::scaling(Vec3::new(2.0, 4.0, 0.5)));
        let inv = f.inverse().unwrap();
        let p = Vec3::new(0.3, 0.7, -0.2);
        assert!(inv.apply(f.apply(p)).distance(p) < 1e-12);
        assert!(f.apply(inv.apply(p)).distance(p) < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let f = Affine3::scaling(Vec3::new(1.0, 0.0, 1.0));
        assert!(f.inverse().is_none());
    }

    #[test]
    fn determinant_of_products() {
        let a = Affine3::uniform_scaling(3.0);
        let b = Affine3::rotation_y(0.7);
        let ab = a.then(&b);
        assert!((ab.det() - a.det() * b.det()).abs() < 1e-12);
        assert!((b.det() - 1.0).abs() < 1e-12);
    }

    fn arb_affine() -> impl Strategy<Value = Affine3> {
        (
            -1.0f64..1.0,
            -1.0f64..1.0,
            -1.0f64..1.0,
            0.5f64..2.0,
            proptest::array::uniform3(-10.0f64..10.0),
        )
            .prop_map(|(rx, ry, rz, s, t)| {
                Affine3::rotation_x(rx)
                    .then(&Affine3::rotation_y(ry))
                    .then(&Affine3::rotation_z(rz))
                    .then(&Affine3::uniform_scaling(s))
                    .then(&Affine3::translation(Vec3::from(t)))
            })
    }

    proptest! {
        #[test]
        fn inverse_roundtrips(f in arb_affine(), p in proptest::array::uniform3(-50.0f64..50.0)) {
            let p = Vec3::from(p);
            let inv = f.inverse().expect("well-conditioned transform");
            prop_assert!(inv.apply(f.apply(p)).distance(p) < 1e-6);
        }

        #[test]
        fn composition_is_associative(
            a in arb_affine(), b in arb_affine(), c in arb_affine(),
            p in proptest::array::uniform3(-10.0f64..10.0),
        ) {
            let p = Vec3::from(p);
            let left = a.then(&b).then(&c).apply(p);
            let right = a.then(&b.then(&c)).apply(p);
            prop_assert!(left.distance(right) < 1e-6);
        }

        #[test]
        fn apply_matches_composition(a in arb_affine(), b in arb_affine(),
                                     p in proptest::array::uniform3(-10.0f64..10.0)) {
            let p = Vec3::from(p);
            let composed = a.then(&b).apply(p);
            let sequential = b.apply(a.apply(p));
            prop_assert!(composed.distance(sequential) < 1e-8);
        }
    }
}
