//! A tiny owned thread-pool executor for the parallel query engine.
//!
//! QBISM's multi-study queries (population averages, cross-study band
//! intersections) decompose into independent per-study stages followed
//! by an ordered reduce.  This crate provides exactly that shape and
//! nothing more: [`Executor::map`] fans a `Vec` of work items out over
//! scoped worker threads that *claim* indices from a shared atomic
//! counter (work stealing in its simplest form — an idle worker takes
//! the next undone item, so an expensive study never serializes the
//! cheap ones behind it), and hands back results in input order so the
//! caller's reduce is deterministic regardless of thread count.
//!
//! With one thread the executor runs the closure inline on the calling
//! thread.  That is a correctness feature, not an optimization:
//! thread-local machinery (trace spans, fault planes) behaves exactly
//! as in the sequential engine, so `threads = 1` is bit-identical to
//! the pre-parallel code path by construction.
//!
//! The fan-out path carries the caller's *trace context* across the
//! workers (the same shape as the fault plane's `arm_shared` re-arm
//! hook, but owned by the executor so every caller gets it): the
//! caller's `qbism-obs` context is forked before the pool starts, each
//! work item adopts it — its spans are captured on the worker instead
//! of becoming stray root trees — and after the join the captured
//! subtrees are replayed into the caller's open span in input order.
//! The finished span tree is therefore *identical* at any thread
//! count, which is what gives trace/span ids their meaning.

#![forbid(unsafe_code)]

use qbism_check::sync::{AtomicUsize, Mutex, Ordering};
use qbism_check::thread;

/// A fixed-width fan-out executor.
///
/// The pool is *owned* per call — threads are scoped to each
/// [`Executor::map`] invocation and joined before it returns, so the
/// closure may borrow from the caller's stack (the server lends its
/// `&Database` straight to the workers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new(1)
    }
}

impl Executor {
    /// An executor that fans out over `threads` workers (clamped to at
    /// least 1).
    pub fn new(threads: usize) -> Executor {
        Executor { threads: threads.max(1) }
    }

    /// Configured fan-out width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**.  `f` receives `(index, item)` so workers can label
    /// their work without the caller pre-zipping.
    ///
    /// With `threads == 1` (or a single item) this runs inline on the
    /// calling thread.  Otherwise `min(threads, items)` scoped workers
    /// claim indices from an atomic counter until the list is drained.
    ///
    /// Panics in `f` propagate to the caller once all workers have
    /// stopped (via [`std::thread::scope`]'s join-and-rethrow).
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|t| Mutex::named("parallel.slot", Some(t))).collect();
        let results: Vec<Mutex<Option<R>>> =
            (0..n).map(|_| Mutex::named("parallel.result", None)).collect();
        let next = AtomicUsize::named("parallel.next", 0);
        let workers = self.threads.min(n);
        let fork = qbism_obs::context::fork();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Relaxed is enough: the claim only needs atomicity
                    // (each index handed out once); the happens-before
                    // edge for the item itself comes from the slot
                    // mutex.  The model checker verifies exactly this.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = match slots[i].lock_or_recover().take() {
                        Some(item) => item,
                        None => unreachable!("work item {i} claimed twice"),
                    };
                    let adopted = fork.as_ref().map(|fk| fk.adopt(i));
                    let out = f(i, item);
                    drop(adopted);
                    *results[i].lock_or_recover() = Some(out);
                });
            }
        });
        if let Some(fork) = fork {
            fork.join();
        }
        results
            .into_iter()
            .map(|m| match m.into_inner_or_recover() {
                Some(r) => r,
                None => unreachable!("worker exited without producing its result"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn results_come_back_in_input_order() {
        for threads in [1, 2, 3, 8] {
            let exec = Executor::new(threads);
            let out = exec.map((0..37u64).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..37u64).map(|x| x * x).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let caller = std::thread::current().id();
        let exec = Executor::new(1);
        let ids = exec.map(vec![(); 4], |_, ()| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn multi_thread_actually_fans_out() {
        // Workers that block until every worker has claimed an item can
        // only finish if the pool really runs them concurrently.
        let exec = Executor::new(4);
        let arrived = AtomicU64::new(0);
        let out = exec.map(vec![(); 4], |i, ()| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let exec = Executor::new(3);
        let out = exec.map((0..100usize).collect(), |_, x| x);
        let distinct: HashSet<usize> = out.iter().copied().collect();
        assert_eq!(distinct.len(), 100);
    }

    #[test]
    fn empty_input_is_fine() {
        let exec = Executor::new(8);
        let out: Vec<u32> = exec.map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn trace_context_propagates_and_attaches_in_order() {
        // Worker-side spans must land inside the caller's open span, in
        // input order, producing the same tree at any thread count.
        let mut shapes = Vec::new();
        for threads in [1usize, 4] {
            qbism_obs::trace::clear();
            {
                let _root = qbism_obs::trace::root("query.map_test");
                let exec = Executor::new(threads);
                exec.map((0..8u64).collect(), |i, x| {
                    let span = qbism_obs::trace::root("db.execute");
                    span.record_u64("i", x);
                    i
                });
            }
            let root = qbism_obs::trace::last_root().expect("finished root");
            assert_eq!(root.name, "query.map_test", "threads={threads}");
            assert_eq!(root.children.len(), 8, "threads={threads}");
            for (i, child) in root.children.iter().enumerate() {
                assert_eq!(child.name, "db.execute");
                assert_eq!(child.parent_span_id, root.span_id, "threads={threads}");
                assert_eq!(child.trace_id, root.trace_id, "threads={threads}");
                let got = child.fields.iter().find(|(k, _)| *k == "i").map(|(_, v)| v.clone());
                assert_eq!(got, Some(qbism_obs::trace::FieldValue::U64(i as u64)));
            }
            shapes.push(root.shape());
        }
        assert_eq!(shapes[0], shapes[1], "tree shape differs between 1 and 4 threads");
        qbism_obs::trace::clear();
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(2).map((0..8).collect::<Vec<i32>>(), |_, x| {
                assert!(x != 5, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
