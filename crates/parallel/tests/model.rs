//! The real `Executor` under the deterministic scheduler: the claim
//! counter, per-slot mutexes, and result collection are exactly the
//! code that serves multi-study fan-out, so every property here is a
//! property of the production engine.

use qbism_parallel::Executor;

#[test]
fn model_map_returns_every_result_in_order() {
    qbism_check::Checker::random(0x9A11E7, 64).check(|| {
        let pool = Executor::new(2);
        let out = pool.map(vec![1u32, 2, 3], |_, x| x * 10);
        assert_eq!(out, vec![10, 20, 30], "results must land in input order");
    });
}

#[test]
fn model_exhaustive_small_map() {
    let report = qbism_check::Checker::exhaustive(1).max_executions(5_000).run(|| {
        let pool = Executor::new(2);
        let out = pool.map(vec![5u32, 7], |_, x| x + 1);
        assert_eq!(out, vec![6, 8]);
    });
    report.assert_ok();
    assert!(report.executions >= 2, "bounded search explored more than one schedule");
    eprintln!(
        "executor exhaustive p<=1: executions={} schedule_points={} exhausted={}",
        report.executions, report.schedule_points, report.exhausted
    );
}

/// Same seed, same schedule: the FNV digest of every context switch
/// must be identical across two sweeps, which is what makes a model
/// failure replayable.
#[test]
fn model_schedules_are_deterministic() {
    let run = || {
        qbism_check::Checker::random(0xD15EA5E, 16).run(|| {
            let pool = Executor::new(2);
            let out = pool.map(vec![1u64, 2, 3, 4], |_, x| x * x);
            assert_eq!(out, vec![1, 4, 9, 16]);
        })
    };
    let (a, b) = (run(), run());
    assert!(a.failure.is_none() && b.failure.is_none());
    assert_eq!(a.first_digest, b.first_digest, "same seed must replay the same schedule");
    eprintln!(
        "executor sweep: executions={} schedule_points={} lock_edges={}",
        a.executions, a.schedule_points, a.lock_edges
    );
}
