//! Compressed-domain kernel equivalence suite.
//!
//! Pins the tentpole property of compressed-domain execution: every
//! streaming merge over *compressed* operands
//! ([`qbism_region::kernel_compressed`]) produces exactly the run list
//! the uncompressed kernel ([`qbism_region::kernel`]) produces on the
//! decoded operands — for both queryable codecs (run-vskip and
//! k³-tree), in every pairing, at the paper's 64³ and 128³ grid scales.
//! Round-trip identity of the codecs themselves is pinned alongside.

use proptest::prelude::*;
use qbism_region::kernel_compressed::{
    difference_stream, intersect_k_stream, intersect_stream, restrict_box_stream,
    restrict_range_stream, union_stream,
};
use qbism_region::{compressed_cursor, encode_compressed, kernel, CompressedCursor};
use qbism_region::{GridGeometry, Region, RegionCodec, Run};
use qbism_sfc::CurveKind;

fn geom(bits: u32) -> GridGeometry {
    GridGeometry::new(CurveKind::Hilbert, 3, bits)
}

/// Builds a region mixing scattered ids with a solid box, so payloads
/// exercise both the sparse (run-list) and dense (octree) code paths.
/// `bx` is `(has_box, min, size)` — the box is skipped when `has_box`
/// is 0, and clamped into the grid otherwise.
fn make_region(bits: u32, ids: &[u64], bx: (u8, [u32; 3], [u32; 3])) -> Region {
    let g = geom(bits);
    let cells = g.cell_count();
    let mut r = Region::from_ids(g, ids.iter().map(|id| id % cells).collect());
    let (has_box, min, size) = bx;
    if has_box != 0 {
        let side = 1u32 << bits;
        let min = [min[0] % side, min[1] % side, min[2] % side];
        let max = [
            (min[0] + size[0] % (side / 2)).min(side - 1),
            (min[1] + size[1] % (side / 2)).min(side - 1),
            (min[2] + size[2] % (side / 2)).min(side - 1),
        ];
        if let Some(b) = Region::from_box(g, min, max) {
            r = r.union(&b);
        }
    }
    r
}

/// Encodes with the codec picked by `which` (0 = run-vskip, 1 =
/// k³-tree, 2 = the auto policy) and opens a streaming cursor.
fn encode_as(region: &Region, which: u8) -> Vec<u8> {
    match which {
        0 => RegionCodec::RunVskip.encode(region).expect("encode run-vskip"),
        1 => RegionCodec::K3Tree.encode(region).expect("encode k3-tree"),
        _ => encode_compressed(region).expect("encode auto"),
    }
}

fn open(bytes: &[u8]) -> CompressedCursor<'_> {
    compressed_cursor(bytes).expect("open compressed cursor").1
}

proptest! {
    /// Both queryable codecs round-trip every region exactly, at both
    /// paper grid scales.
    #[test]
    fn queryable_codecs_roundtrip(
        bits_pick in 0u32..2,
        ids in proptest::collection::vec(0u64..(1 << 21), 0..250),
        bx in (0u8..2, proptest::array::uniform3(0u32..128), proptest::array::uniform3(0u32..64)),
    ) {
        let region = make_region(6 + bits_pick, &ids, bx);
        for codec in RegionCodec::COMPRESSED {
            let bytes = codec.encode(&region).expect("encode");
            let back = RegionCodec::decode(&bytes).expect("decode");
            prop_assert_eq!(&back, &region, "codec {} round-trip", codec.name());
        }
        let auto = encode_compressed(&region).expect("auto encode");
        prop_assert_eq!(&RegionCodec::decode(&auto).expect("auto decode"), &region);
    }

    /// Pairwise streaming merges equal the uncompressed kernel oracle
    /// for every codec pairing (run-vskip × k³-tree × auto).
    #[test]
    fn pair_merges_match_uncompressed_kernel(
        bits_pick in 0u32..2,
        a_ids in proptest::collection::vec(0u64..(1 << 21), 0..250),
        b_ids in proptest::collection::vec(0u64..(1 << 21), 0..250),
        a_bx in (0u8..2, proptest::array::uniform3(0u32..128), proptest::array::uniform3(0u32..64)),
        b_bx in (0u8..2, proptest::array::uniform3(0u32..128), proptest::array::uniform3(0u32..64)),
        a_codec in 0u8..3,
        b_codec in 0u8..3,
    ) {
        let bits = 6 + bits_pick;
        let a = make_region(bits, &a_ids, a_bx);
        let b = make_region(bits, &b_ids, b_bx);
        let a_bytes = encode_as(&a, a_codec);
        let b_bytes = encode_as(&b, b_codec);

        let got = intersect_stream(&mut open(&a_bytes), &mut open(&b_bytes)).expect("intersect");
        prop_assert_eq!(got, kernel::intersect_runs(a.runs(), b.runs()));

        let got = union_stream(&mut open(&a_bytes), &mut open(&b_bytes)).expect("union");
        prop_assert_eq!(got, kernel::union_runs(a.runs(), b.runs()));

        let got = difference_stream(&mut open(&a_bytes), &mut open(&b_bytes)).expect("difference");
        prop_assert_eq!(got, kernel::difference_runs(a.runs(), b.runs()));
    }

    /// The k-way compressed intersect (the multi-study fold) equals the
    /// uncompressed k-way kernel.
    #[test]
    fn kway_matches_uncompressed_kernel(
        bits_pick in 0u32..2,
        id_sets in proptest::collection::vec(
            proptest::collection::vec(0u64..(1 << 21), 0..200), 1..5),
        codec in 0u8..3,
    ) {
        let bits = 6 + bits_pick;
        let regions: Vec<Region> =
            id_sets.iter().map(|ids| make_region(bits, ids, (0, [0; 3], [0; 3]))).collect();
        let blobs: Vec<Vec<u8>> = regions.iter().map(|r| encode_as(r, codec)).collect();
        let mut cursors: Vec<CompressedCursor<'_>> = blobs.iter().map(|b| open(b)).collect();
        let mut refs: Vec<&mut dyn qbism_coding::RunCursor> =
            cursors.iter_mut().map(|c| c as &mut dyn qbism_coding::RunCursor).collect();
        let got = intersect_k_stream(&mut refs).expect("k-way");
        let lists: Vec<&[Run]> = regions.iter().map(|r| r.runs()).collect();
        prop_assert_eq!(got, kernel::intersect_k(&lists));
    }

    /// Box restriction over a compressed stream equals intersecting the
    /// decoded region with the box mask.
    #[test]
    fn box_restriction_matches_uncompressed_kernel(
        bits_pick in 0u32..2,
        ids in proptest::collection::vec(0u64..(1 << 21), 0..250),
        bx in (0u8..2, proptest::array::uniform3(0u32..128), proptest::array::uniform3(0u32..64)),
        min_raw in proptest::array::uniform3(0u32..128),
        size in proptest::array::uniform3(0u32..32),
        codec in 0u8..3,
    ) {
        let bits = 6 + bits_pick;
        let region = make_region(bits, &ids, bx);
        let side = 1u32 << bits;
        let min = [min_raw[0] % side, min_raw[1] % side, min_raw[2] % side];
        let max = [
            (min[0] + size[0]).min(side - 1),
            (min[1] + size[1]).min(side - 1),
            (min[2] + size[2]).min(side - 1),
        ];
        let bytes = encode_as(&region, codec);
        let curve = geom(bits).curve();
        let got =
            restrict_box_stream(&mut open(&bytes), &curve, min, max).expect("box restrict");
        let mask = kernel::box_runs3(&curve, min, max);
        prop_assert_eq!(got, kernel::intersect_runs(region.runs(), &mask));
    }

    /// Band (contiguous id range) restriction equals clipping the
    /// decoded run list.
    #[test]
    fn range_restriction_matches_decoded_clip(
        bits_pick in 0u32..2,
        ids in proptest::collection::vec(0u64..(1 << 21), 0..250),
        bx in (0u8..2, proptest::array::uniform3(0u32..128), proptest::array::uniform3(0u32..64)),
        bounds in proptest::array::uniform2(0u64..(1 << 21)),
        codec in 0u8..3,
    ) {
        let bits = 6 + bits_pick;
        let region = make_region(bits, &ids, bx);
        let cells = geom(bits).cell_count();
        let (lo, hi) = (bounds[0] % cells, bounds[1] % cells);
        let bytes = encode_as(&region, codec);
        let got = restrict_range_stream(&mut open(&bytes), lo, hi).expect("range restrict");
        let want: Vec<Run> = region
            .runs()
            .iter()
            .filter(|r| lo <= hi && r.end >= lo && r.start <= hi)
            .map(|r| Run::new(r.start.max(lo), r.end.min(hi)))
            .collect();
        prop_assert_eq!(got, want);
    }
}

/// Deterministic spot check: the auto policy picks the octree for a
/// dense solid, and a far seek gallops instead of scanning.
#[test]
fn auto_policy_and_gallop_observable() {
    let g = geom(6);
    let dense = Region::from_box(g, [0, 0, 0], [63, 63, 63]).expect("full box");
    let dense_bytes = encode_compressed(&dense).expect("encode dense");
    let sparse = Region::from_ids(g, (0..(1u64 << 18)).step_by(97).collect());
    let sparse_bytes = encode_compressed(&sparse).expect("encode sparse");
    assert!(
        dense_bytes.len() < RegionCodec::RunVskip.encode(&dense).expect("vskip").len(),
        "octree should win on the full grid"
    );

    use qbism_coding::RunCursor;
    for bytes in [&dense_bytes, &sparse_bytes] {
        let mut cursor = open(bytes);
        cursor.seek(1 << 17).expect("seek");
        assert!(cursor.peek().is_some());
    }
    let mut cursor = open(&sparse_bytes);
    cursor.seek(97 * 2_700).expect("seek far");
    assert_eq!(cursor.peek(), Some((97 * 2_700, 97 * 2_700)));
    assert!(cursor.skip_count() > 0, "far seek should gallop, not scan");
}
