//! Grid geometry: which curve a region's ids live on.

use qbism_sfc::{Curve, CurveKind, SpaceFillingCurve};

/// The discrete space a [`crate::Region`] is defined over: a cubic grid of
/// `2^bits` cells per axis in `dims` dimensions, linearized by `kind`.
///
/// Two regions are only compatible (for intersection etc.) when their
/// geometries are equal — the same set of voxels has *different* ids under
/// different curves, which is the entire subject of the paper's Section 4
/// comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridGeometry {
    kind: CurveKind,
    dims: u32,
    bits: u32,
}

impl GridGeometry {
    /// Creates a geometry; panics on unrepresentable `(dims, bits)`.
    pub fn new(kind: CurveKind, dims: u32, bits: u32) -> Self {
        // Curve construction validates the pair.
        let _ = kind.curve(dims, bits);
        GridGeometry { kind, dims, bits }
    }

    /// The paper's atlas space: 128x128x128 on the Hilbert curve.
    pub fn paper_atlas() -> Self {
        GridGeometry::new(CurveKind::Hilbert, 3, 7)
    }

    /// Curve kind.
    pub fn kind(&self) -> CurveKind {
        self.kind
    }

    /// Dimensions.
    pub fn dims(&self) -> u32 {
        self.dims
    }

    /// Bits per axis.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Cells per axis.
    pub fn side(&self) -> u32 {
        1 << self.bits
    }

    /// Total cells in the grid.
    pub fn cell_count(&self) -> u64 {
        1u64 << (self.dims * self.bits)
    }

    /// Instantiates the curve.
    pub fn curve(&self) -> Curve {
        self.kind.curve(self.dims, self.bits)
    }

    /// Same grid, different linearization.
    pub fn with_kind(&self, kind: CurveKind) -> Self {
        GridGeometry { kind, ..*self }
    }

    /// Maps coordinates to a curve id (convenience; construct the curve
    /// once via [`GridGeometry::curve`] in hot loops).
    pub fn index_of(&self, coords: &[u32]) -> u64 {
        self.curve().index_of(coords)
    }

    /// Maps a curve id to coordinates.
    pub fn coords_of(&self, index: u64, out: &mut [u32]) {
        self.curve().coords_of(index, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_atlas_is_128_cubed_hilbert() {
        let g = GridGeometry::paper_atlas();
        assert_eq!(g.kind(), CurveKind::Hilbert);
        assert_eq!(g.side(), 128);
        assert_eq!(g.cell_count(), 2_097_152);
    }

    #[test]
    fn with_kind_changes_only_the_curve() {
        let g = GridGeometry::paper_atlas();
        let z = g.with_kind(CurveKind::Morton);
        assert_eq!(z.kind(), CurveKind::Morton);
        assert_eq!(z.dims(), g.dims());
        assert_eq!(z.bits(), g.bits());
        assert_ne!(g, z);
    }

    #[test]
    fn index_coord_roundtrip() {
        let g = GridGeometry::new(CurveKind::Morton, 3, 4);
        let id = g.index_of(&[3, 9, 14]);
        let mut c = [0u32; 3];
        g.coords_of(id, &mut c);
        assert_eq!(c, [3, 9, 14]);
    }
}
