//! Representation statistics: the measured quantities of Section 4.
//!
//! For each REGION the paper reports (a) how many pieces each
//! representation needs — h-runs, z-runs, oblong octants, octants —
//! finding the constant ratios `1 : 1.27 : 1.61 : 2.42`, and (b) how many
//! bytes each encoding occupies relative to the EQ 2 entropy bound —
//! `1 : 1.17 : 9.50 : 10.4 : 17.8` for entropy : elias : naive :
//! oblong-octant : octant (Figure 4).  This module computes both per
//! region; `qbism-bench` aggregates them over the phantom population.

use crate::encode::{RegionCodec, RegionEncodeError};
use crate::octant::OctantKind;
use crate::region::Region;
use qbism_coding::Histogram;
use qbism_sfc::CurveKind;

/// Piece counts of one voxel set under every representation compared in
/// Section 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepresentationCounts {
    /// Runs on the Hilbert curve.
    pub h_runs: usize,
    /// Runs on the Z curve.
    pub z_runs: usize,
    /// Oblong octants (Z order, as in the paper).
    pub oblong_octants: usize,
    /// Regular cubic octants (Z order).
    pub octants: usize,
}

impl RepresentationCounts {
    /// Measures all four counts for the voxel set of `region`
    /// (whatever curve it currently lives on).
    pub fn measure(region: &Region) -> Self {
        let h = region.to_curve(CurveKind::Hilbert);
        let z = region.to_curve(CurveKind::Morton);
        RepresentationCounts {
            h_runs: h.run_count(),
            z_runs: z.run_count(),
            oblong_octants: z.octant_count(OctantKind::Oblong),
            octants: z.octant_count(OctantKind::Cubic),
        }
    }

    /// The three ratios relative to h-runs, in the paper's order
    /// `(z-runs, oblong octants, octants)`; `None` for an empty region.
    pub fn ratios(&self) -> Option<(f64, f64, f64)> {
        if self.h_runs == 0 {
            return None;
        }
        let h = self.h_runs as f64;
        Some((self.z_runs as f64 / h, self.oblong_octants as f64 / h, self.octants as f64 / h))
    }
}

/// Delta-length statistics of one region: the EQ 1 / EQ 2 measurements.
#[derive(Debug, Clone)]
pub struct DeltaStats {
    /// Histogram of run and interior-gap lengths.
    pub histogram: Histogram,
    /// Bits per delta no prefix code can beat (EQ 2).
    pub entropy_bits_per_delta: f64,
    /// Number of deltas.
    pub delta_count: usize,
}

impl DeltaStats {
    /// Measures the delta distribution of `region` on its current curve.
    pub fn measure(region: &Region) -> Self {
        let deltas = region.delta_lengths();
        let histogram = Histogram::from_values(deltas.iter().copied());
        DeltaStats {
            entropy_bits_per_delta: histogram.entropy_bits(),
            delta_count: deltas.len(),
            histogram,
        }
    }

    /// Entropy lower bound for the whole region, in bytes — the x axis of
    /// Figure 4.
    pub fn entropy_bound_bytes(&self) -> f64 {
        self.entropy_bits_per_delta * self.delta_count as f64 / 8.0
    }

    /// Fits the EQ 1 power law `count = C * length^-a`, returning
    /// `(a, correlation)`; `None` when the histogram is too small.
    pub fn power_law(&self) -> Option<(f64, f64)> {
        self.histogram.power_law_fit()
    }
}

impl Region {
    /// Payload bytes of this region under each codec, in
    /// [`RegionCodec::ALL`] order — one Figure 4 sample.
    pub fn encoding_sizes(&self) -> Result<[usize; 4], RegionEncodeError> {
        let mut out = [0usize; 4];
        for (slot, codec) in out.iter_mut().zip(RegionCodec::ALL) {
            *slot = codec.payload_len(self)?;
        }
        Ok(out)
    }
}

/// Least-squares slope-through-origin fit `y = k x` plus correlation, for
/// the paper's scatter-plot summaries ("the scatter-plots were well
/// approximated by lines").  Returns `None` for fewer than 2 points or a
/// degenerate x vector.
pub fn linear_fit_through_origin(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    if sxx < 1e-12 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = sxy / sxx;
    // Pearson correlation of the raw points.
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
    let sxx_c: f64 = points.iter().map(|p| p.0 * p.0).sum::<f64>() - sx * sx / n;
    let syy_c: f64 = points.iter().map(|p| p.1 * p.1).sum::<f64>() - sy * sy / n;
    let sxy_c: f64 = points.iter().map(|p| p.0 * p.1).sum::<f64>() - sx * sy / n;
    let r = if sxx_c <= 1e-12 || syy_c <= 1e-12 { 1.0 } else { sxy_c / (sxx_c * syy_c).sqrt() };
    Some((slope, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridGeometry;
    use qbism_geometry::{Ellipsoid, Vec3};

    fn ball_region() -> Region {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 5);
        let e = Ellipsoid::new(Vec3::splat(16.0), Vec3::new(10.0, 7.0, 5.0));
        Region::rasterize_solid(g, &e)
    }

    #[test]
    fn counts_obey_paper_ordering() {
        // h-runs <= z-runs <= oblong octants <= octants, the direction of
        // the 1 : 1.27 : 1.61 : 2.42 ratios.
        let c = RepresentationCounts::measure(&ball_region());
        assert!(c.h_runs > 0);
        assert!(c.h_runs <= c.z_runs, "{c:?}");
        assert!(c.z_runs <= c.oblong_octants, "{c:?}");
        assert!(c.oblong_octants <= c.octants, "{c:?}");
        let (rz, rob, roc) = c.ratios().unwrap();
        assert!(rz >= 1.0 && rob >= rz && roc >= rob);
    }

    #[test]
    fn empty_region_has_no_ratios() {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 3);
        let c = RepresentationCounts::measure(&Region::empty(g));
        assert_eq!(c.h_runs, 0);
        assert!(c.ratios().is_none());
    }

    #[test]
    fn delta_stats_of_smooth_region() {
        let r = ball_region();
        let s = DeltaStats::measure(&r);
        assert_eq!(s.delta_count, 2 * r.run_count() - 1);
        assert!(s.entropy_bits_per_delta > 0.0);
        assert!(s.entropy_bound_bytes() > 0.0);
    }

    #[test]
    fn elias_beats_naive_and_respects_entropy_on_anatomy() {
        // The Figure 4 ordering on a realistic compact structure:
        // entropy <= elias < naive, and octant representations cost more
        // than naive per Section 4.2's ratio list.
        let r = ball_region();
        let [elias, naive, oblong, octant] = r.encoding_sizes().unwrap();
        let bound = DeltaStats::measure(&r).entropy_bound_bytes();
        assert!(elias as f64 >= bound * 0.9, "elias {elias} below entropy bound {bound}");
        assert!(elias < naive, "elias {elias} vs naive {naive}");
        assert!(naive <= oblong * 2, "naive within 2x of oblong (paper: ~equal)");
        assert!(octant >= oblong, "octant {octant} vs oblong {oblong}");
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..20).map(|i| (i as f64, 2.5 * i as f64)).collect();
        let (k, r) = linear_fit_through_origin(&pts).unwrap();
        assert!((k - 2.5).abs() < 1e-12);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit_through_origin(&[]).is_none());
        assert!(linear_fit_through_origin(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit_through_origin(&[(0.0, 0.0), (0.0, 1.0)]).is_none());
    }

    #[test]
    fn noisy_line_correlation_below_one() {
        let pts: Vec<(f64, f64)> = (1..40)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x + if i % 2 == 0 { 5.0 } else { -5.0 })
            })
            .collect();
        let (k, r) = linear_fit_through_origin(&pts).unwrap();
        assert!((k - 3.0).abs() < 0.2);
        assert!(r < 1.0 && r > 0.9);
    }
}
