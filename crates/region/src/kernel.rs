//! Run-native kernels: streaming set algebra, batched curve transcoding
//! and box decomposition directly over sorted run lists.
//!
//! The paper's thesis is that runs on a space-filling curve are the right
//! *algebraic* representation, so the hot operators should never leave it.
//! Every function here consumes and produces canonical run lists (sorted,
//! disjoint, non-adjacent — see [`crate::Region`] invariants) without
//! materializing per-voxel id vectors or intermediate regions:
//!
//! * [`intersect_runs`] / [`union_runs`] / [`difference_runs`] — linear
//!   two-pointer merge scans, the run analogue of Orenstein & Manola's
//!   spatial join;
//! * [`intersect_k`] — a k-way simultaneous merge with gallop
//!   (exponential-probe) skipping over disjoint spans, used by
//!   [`crate::intersect_all`];
//! * [`count_intersect_runs`] — overlap counting without building the
//!   intersection;
//! * [`transcode_runs`] — re-linearization onto another curve that walks
//!   maximal octree-aligned id blocks (one curve conversion per *block*
//!   instead of per voxel) whenever both curves are hierarchical;
//! * [`box_runs3`] — axis-aligned box rasterization by recursive octant
//!   descent (hierarchical curves) or whole scanline rows, visiting only
//!   O(surface) cells instead of every voxel in the box.

use crate::run::{normalize, Run};
use qbism_sfc::{Curve, SpaceFillingCurve};

/// Intersection of two canonical run lists (streaming two-pointer merge).
pub fn intersect_runs(a: &[Run], b: &[Run]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if let Some(r) = a[i].intersect(&b[j]) {
            out.push(r);
        }
        // Advance whichever run ends first.
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Number of ids common to two canonical run lists, counted in place —
/// the same merge scan as [`intersect_runs`] with no output allocation.
pub fn count_intersect_runs(a: &[Run], b: &[Run]) -> u64 {
    let mut count = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].start.max(b[j].start);
        let hi = a[i].end.min(b[j].end);
        if lo <= hi {
            count += hi - lo + 1;
        }
        if a[i].end < b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    count
}

/// Union of two canonical run lists: a single streaming merge that fuses
/// overlap and adjacency on the fly — no concatenate-and-sort pass.
pub fn union_runs(a: &[Run], b: &[Run]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(ra), Some(rb)) => ra.start <= rb.start,
            (Some(_), None) => true,
            _ => false,
        };
        let r = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        match out.last_mut() {
            // Merge overlap and adjacency (end + 1 == start).
            Some(last) if r.start <= last.end.saturating_add(1) => {
                last.end = last.end.max(r.end);
            }
            _ => out.push(r),
        }
    }
    out
}

/// Difference `a \ b` over canonical run lists (streaming cursor scan).
pub fn difference_runs(a: &[Run], b: &[Run]) -> Vec<Run> {
    let mut out: Vec<Run> = Vec::new();
    let mut j = 0usize;
    for &ra in a {
        let mut cursor = ra.start;
        // Skip b-runs entirely before this run.
        while j < b.len() && b[j].end < ra.start {
            j += 1;
        }
        let mut k = j;
        while k < b.len() && b[k].start <= ra.end {
            let rb = b[k];
            if rb.start > cursor {
                out.push(Run::new(cursor, rb.start - 1));
            }
            cursor = cursor.max(rb.end.saturating_add(1));
            if rb.end >= ra.end {
                break;
            }
            k += 1;
        }
        if cursor <= ra.end {
            out.push(Run::new(cursor, ra.end));
        }
    }
    out
}

/// First index at or after `from` whose run ends at or beyond `target`.
///
/// Run ends are strictly increasing in a canonical list, so the answer is
/// found by an exponential probe followed by a binary search — the
/// "gallop" that lets [`intersect_k`] skip long disjoint spans in
/// O(log skip) instead of touching every run.
fn gallop_to(list: &[Run], from: usize, target: u64) -> usize {
    let mut base = from;
    let mut step = 1usize;
    while base + step < list.len() && list[base + step].end < target {
        base += step;
        step <<= 1;
    }
    let mut lo = base;
    let mut hi = (base + step).min(list.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if list[mid].end < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// K-way intersection of canonical run lists in one simultaneous merge.
///
/// Scans each input at most once (galloping over disjoint spans), builds
/// no intermediate list per fold step, and returns a canonical run list.
/// An empty `lists` yields an empty result; callers wanting "empty input
/// = universe" semantics must special-case it (as [`crate::intersect_all`]
/// does by returning `None`).
pub fn intersect_k(lists: &[&[Run]]) -> Vec<Run> {
    let first = match lists.first() {
        Some(f) => f,
        None => return Vec::new(),
    };
    if lists.len() == 1 {
        return first.to_vec();
    }
    if lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let mut cursors = vec![0usize; lists.len()];
    let mut out: Vec<Run> = Vec::new();
    // Candidate start of the next common span; only ever grows.
    let mut start = 0u64;
    'outer: loop {
        // Raise the candidate until every list's current run covers it.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, list) in lists.iter().enumerate() {
                let c = gallop_to(list, cursors[i], start);
                if c == list.len() {
                    break 'outer;
                }
                cursors[i] = c;
                if list[c].start > start {
                    start = list[c].start;
                    changed = true;
                }
            }
        }
        // Every current run covers `start`; emit up to the soonest end.
        let mut end = u64::MAX;
        for (list, &c) in lists.iter().zip(&cursors) {
            end = end.min(list[c].end);
        }
        out.push(Run::new(start, end));
        // At least one list's run finished at `end` and its successor
        // starts at `end + 2` or later (canonical input), so the next
        // emitted run cannot be adjacent — the output stays canonical.
        start = match end.checked_add(1) {
            Some(s) => s,
            None => break 'outer,
        };
        for (i, list) in lists.iter().enumerate() {
            if list[cursors[i]].end == end {
                cursors[i] += 1;
                if cursors[i] == list.len() {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Largest `t` (a multiple of `dims`) such that the id block
/// `[p, p + 2^t)` is aligned at `p` and fits inside `avail` remaining ids.
fn max_block_log(p: u64, avail: u64, dims: u32) -> u32 {
    let align = if p == 0 { 63 } else { p.trailing_zeros().min(63) };
    // floor(log2(avail)); avail >= 1 always.
    let len_log = 63 - avail.leading_zeros();
    let t = align.min(len_log);
    t - t % dims
}

/// Clears the low `m` bits of every coordinate, snapping a point to the
/// minimum corner of its side-`2^m` aligned cube.
fn snap_to_corner(coords: &mut [u32], m: u32) {
    let mask = if m >= 32 { u32::MAX } else { (1u32 << m) - 1 };
    for c in coords.iter_mut() {
        *c &= !mask;
    }
}

/// Re-expresses a canonical run list from curve `src` onto curve `dst`
/// (same dims and bits), returning the canonical run list of the same
/// voxel set in the destination order.
///
/// When both curves are hierarchical
/// ([`qbism_sfc::CurveKind::is_hierarchical`]),
/// each run is decomposed into maximal octree-aligned id blocks and each
/// block transcodes with a *single* curve conversion: an aligned block is
/// one subcube in the source order and one aligned block in the
/// destination order, so only its corner needs converting.  Otherwise
/// (scanline on either side) ids are converted run-by-run through a
/// reused buffer — still never materializing the whole region at once.
///
/// # Panics
/// Panics if the two curves disagree on dims or bits.
pub fn transcode_runs(runs: &[Run], src: &Curve, dst: &Curve) -> Vec<Run> {
    assert_eq!(src.dims(), dst.dims(), "transcode between different dimensionalities");
    assert_eq!(src.bits(), dst.bits(), "transcode between different grid sizes");
    let dims = src.dims();
    let mut coords = vec![0u32; dims as usize];
    let mut out: Vec<Run> = Vec::new();
    if src.kind().is_hierarchical() && dst.kind().is_hierarchical() {
        for r in runs {
            let mut p = r.start;
            while p <= r.end {
                let t = max_block_log(p, r.end - p + 1, dims);
                src.coords_of(p, &mut coords);
                snap_to_corner(&mut coords, t / dims);
                // The corner's destination id lands somewhere inside the
                // destination block; shift down to the block base.
                let base = (dst.index_of(&coords) >> t) << t;
                out.push(Run::new(base, base + ((1u64 << t) - 1)));
                p += 1u64 << t;
            }
        }
    } else {
        let mut buf: Vec<u64> = Vec::new();
        for r in runs {
            buf.clear();
            buf.reserve(r.len() as usize);
            for id in r.start..=r.end {
                src.coords_of(id, &mut coords);
                buf.push(dst.index_of(&coords));
            }
            buf.sort_unstable();
            for &id in &buf {
                match out.last_mut() {
                    Some(last) if id == last.end + 1 => last.end = id,
                    _ => out.push(Run::new(id, id)),
                }
            }
        }
    }
    normalize(out)
}

/// Canonical run list of the inclusive axis-aligned box `[min, max]` on a
/// 3-D curve, computed without visiting individual voxels.
///
/// Hierarchical curves use recursive octant descent: an octant entirely
/// inside the box emits one run covering its whole contiguous id block,
/// an octant disjoint from the box is skipped, and only octants crossing
/// the boundary subdivide — O(surface) work.  Scanline order emits one
/// run per (x, y) row.
///
/// # Panics
/// Panics if the curve is not 3-D or the box is inverted / out of grid.
pub fn box_runs3(curve: &Curve, min: [u32; 3], max: [u32; 3]) -> Vec<Run> {
    assert_eq!(curve.dims(), 3, "box_runs3 requires a 3-D curve");
    let side = curve.side();
    assert!(
        max.iter().all(|&c| c < side) && min.iter().zip(&max).all(|(a, b)| a <= b),
        "box [{min:?}, {max:?}] inverted or outside grid side {side}"
    );
    let mut out: Vec<Run> = Vec::new();
    let push = |out: &mut Vec<Run>, r: Run| match out.last_mut() {
        Some(last) if r.start <= last.end.saturating_add(1) => last.end = last.end.max(r.end),
        _ => out.push(r),
    };
    if curve.kind().is_hierarchical() {
        // Iterative octant descent in id order (explicit stack, children
        // pushed in reverse so they pop in ascending-id order).
        let mut coords = [0u32; 3];
        let mut stack: Vec<(u64, u32)> = vec![(0u64, curve.bits())];
        while let Some((base, level)) = stack.pop() {
            curve.coords_of(base, &mut coords);
            snap_to_corner(&mut coords, level);
            let cube = 1u32 << level;
            let disjoint = (0..3).any(|a| coords[a] > max[a] || coords[a] + cube - 1 < min[a]);
            if disjoint {
                continue;
            }
            let inside = (0..3).all(|a| coords[a] >= min[a] && coords[a] + cube - 1 <= max[a]);
            if inside {
                push(&mut out, Run::new(base, base + ((1u64 << (3 * level)) - 1)));
                continue;
            }
            // level >= 1 here: a level-0 cube is a single voxel and is
            // always either inside or disjoint.
            let child = 1u64 << (3 * (level - 1));
            for k in (0..8u64).rev() {
                stack.push((base + k * child, level - 1));
            }
        }
    } else {
        for x in min[0]..=max[0] {
            for y in min[1]..=max[1] {
                let lo = curve.index_of(&[x, y, min[2]]);
                let hi = curve.index_of(&[x, y, max[2]]);
                push(&mut out, Run::new(lo, hi));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qbism_sfc::CurveKind;
    use std::collections::BTreeSet;

    /// Seed-era reference implementations, kept verbatim-in-spirit as the
    /// debug oracle the kernels are measured and property-tested against.
    mod reference {
        use super::*;

        pub fn to_set(runs: &[Run]) -> BTreeSet<u64> {
            runs.iter().flat_map(|r| r.start..=r.end).collect()
        }

        pub fn from_set(set: &BTreeSet<u64>) -> Vec<Run> {
            let mut out: Vec<Run> = Vec::new();
            for &id in set {
                match out.last_mut() {
                    Some(last) if id == last.end + 1 => last.end = id,
                    _ => out.push(Run::new(id, id)),
                }
            }
            out
        }

        /// The seed `to_curve` path: one curve conversion per voxel into
        /// a materialized id vector.
        pub fn transcode(runs: &[Run], src: &Curve, dst: &Curve) -> Vec<Run> {
            let mut coords = vec![0u32; src.dims() as usize];
            let set: BTreeSet<u64> = to_set(runs)
                .into_iter()
                .map(|id| {
                    src.coords_of(id, &mut coords);
                    dst.index_of(&coords)
                })
                .collect();
            from_set(&set)
        }

        /// The seed `from_box` path: every voxel visited individually.
        pub fn box_runs(curve: &Curve, min: [u32; 3], max: [u32; 3]) -> Vec<Run> {
            let mut set = BTreeSet::new();
            for x in min[0]..=max[0] {
                for y in min[1]..=max[1] {
                    for z in min[2]..=max[2] {
                        set.insert(curve.index_of(&[x, y, z]));
                    }
                }
            }
            from_set(&set)
        }
    }

    fn runs_of(ids: &[u64]) -> Vec<Run> {
        reference::from_set(&ids.iter().copied().collect())
    }

    fn assert_canonical(runs: &[Run]) {
        for w in runs.windows(2) {
            assert!(w[0].end + 1 < w[1].start, "not canonical: {runs:?}");
        }
    }

    #[test]
    fn empty_edge_cases() {
        let some = runs_of(&[1, 2, 3]);
        assert_eq!(intersect_runs(&[], &some), vec![]);
        assert_eq!(intersect_runs(&some, &[]), vec![]);
        assert_eq!(union_runs(&[], &some), some);
        assert_eq!(union_runs(&some, &[]), some);
        assert_eq!(difference_runs(&[], &some), vec![]);
        assert_eq!(difference_runs(&some, &[]), some);
        assert_eq!(count_intersect_runs(&some, &[]), 0);
        assert_eq!(intersect_k(&[]), vec![]);
        assert_eq!(intersect_k(&[&some, &[]]), vec![]);
    }

    #[test]
    fn adjacent_runs_fuse_in_union() {
        // <0,4> U <5,9> must fuse into the maximal run <0,9>.
        let a = vec![Run::new(0, 4)];
        let b = vec![Run::new(5, 9)];
        assert_eq!(union_runs(&a, &b), vec![Run::new(0, 9)]);
        assert_eq!(union_runs(&b, &a), vec![Run::new(0, 9)]);
        // ...while intersection and difference see them as disjoint.
        assert_eq!(intersect_runs(&a, &b), vec![]);
        assert_eq!(difference_runs(&a, &b), a);
    }

    #[test]
    fn containment_edge_cases() {
        // b strictly inside a run of a: difference splits it.
        let a = vec![Run::new(0, 99)];
        let b = runs_of(&[10, 11, 50]);
        assert_eq!(
            difference_runs(&a, &b),
            vec![Run::new(0, 9), Run::new(12, 49), Run::new(51, 99)]
        );
        assert_eq!(intersect_runs(&a, &b), b);
        assert_eq!(count_intersect_runs(&a, &b), 3);
        // a == b: difference empties, intersection is identity.
        assert_eq!(difference_runs(&b, &b), vec![]);
        assert_eq!(intersect_runs(&b, &b), b);
    }

    #[test]
    fn gallop_finds_first_covering_run() {
        let list: Vec<Run> = (0..100).map(|i| Run::new(i * 10, i * 10 + 3)).collect();
        assert_eq!(gallop_to(&list, 0, 0), 0);
        assert_eq!(gallop_to(&list, 0, 4), 1);
        assert_eq!(gallop_to(&list, 0, 503), 50);
        assert_eq!(gallop_to(&list, 0, 504), 51);
        assert_eq!(gallop_to(&list, 40, 503), 50);
        assert_eq!(gallop_to(&list, 0, 10_000), list.len());
        assert_eq!(gallop_to(&list, 99, 993), 99);
    }

    #[test]
    fn kway_skips_disjoint_spans() {
        // One list has a single far-right run; gallop must skip the other
        // list's thousand runs without touching them one by one (the
        // result is what we can assert).
        let sparse = vec![Run::new(100_000, 100_001)];
        let dense: Vec<Run> = (0..=1000).map(|i| Run::new(i * 100, i * 100 + 50)).collect();
        assert_eq!(intersect_k(&[&sparse, &dense]), vec![Run::new(100_000, 100_001)]);
    }

    proptest! {
        #[test]
        fn algebra_matches_btreeset_oracle(
            a_ids in proptest::collection::vec(0u64..2000, 0..300),
            b_ids in proptest::collection::vec(0u64..2000, 0..300),
        ) {
            let a: BTreeSet<u64> = a_ids.into_iter().collect();
            let b: BTreeSet<u64> = b_ids.into_iter().collect();
            let (ra, rb) = (reference::from_set(&a), reference::from_set(&b));
            let and: BTreeSet<u64> = a.intersection(&b).copied().collect();
            let or: BTreeSet<u64> = a.union(&b).copied().collect();
            let sub: BTreeSet<u64> = a.difference(&b).copied().collect();
            prop_assert_eq!(&intersect_runs(&ra, &rb), &reference::from_set(&and));
            prop_assert_eq!(&union_runs(&ra, &rb), &reference::from_set(&or));
            prop_assert_eq!(&difference_runs(&ra, &rb), &reference::from_set(&sub));
            prop_assert_eq!(count_intersect_runs(&ra, &rb), and.len() as u64);
            for r in [intersect_runs(&ra, &rb), union_runs(&ra, &rb), difference_runs(&ra, &rb)] {
                assert_canonical(&r);
            }
        }

        #[test]
        fn kway_matches_btreeset_oracle(
            id_sets in proptest::collection::vec(
                proptest::collection::vec(0u64..1000, 0..200), 1..6),
        ) {
            let sets: Vec<BTreeSet<u64>> =
                id_sets.into_iter().map(|ids| ids.into_iter().collect()).collect();
            let lists: Vec<Vec<Run>> = sets.iter().map(reference::from_set).collect();
            let refs: Vec<&[Run]> = lists.iter().map(Vec::as_slice).collect();
            let mut expect = sets[0].clone();
            for s in &sets[1..] {
                expect = expect.intersection(s).copied().collect();
            }
            let got = intersect_k(&refs);
            assert_canonical(&got);
            prop_assert_eq!(got, reference::from_set(&expect));
        }

        #[test]
        fn transcode_matches_reference_on_every_curve_pair(
            ids in proptest::collection::vec(0u64..4096, 0..250),
            src_pick in 0usize..3,
            dst_pick in 0usize..3,
        ) {
            let src = CurveKind::ALL[src_pick].curve(3, 4);
            let dst = CurveKind::ALL[dst_pick].curve(3, 4);
            let ids: BTreeSet<u64> = ids.into_iter().collect();
            let runs = reference::from_set(&ids);
            let got = transcode_runs(&runs, &src, &dst);
            assert_canonical(&got);
            prop_assert_eq!(got, reference::transcode(&runs, &src, &dst));
        }

        #[test]
        fn box_runs_match_reference_on_every_curve(
            pick in 0usize..3,
            c0 in proptest::array::uniform3(0u32..16),
            c1 in proptest::array::uniform3(0u32..16),
        ) {
            let curve = CurveKind::ALL[pick].curve(3, 4);
            let mut min = [0u32; 3];
            let mut max = [0u32; 3];
            for a in 0..3 {
                min[a] = c0[a].min(c1[a]);
                max[a] = c0[a].max(c1[a]);
            }
            let got = box_runs3(&curve, min, max);
            assert_canonical(&got);
            prop_assert_eq!(got, reference::box_runs(&curve, min, max));
        }
    }
}
