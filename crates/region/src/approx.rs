//! Approximate REGIONs (Section 4.2, "Approximate representation").
//!
//! "For the z- and h-run representations, we eliminate all the gaps that
//! are shorter than some threshold (*mingap*) by merging together the
//! runs on each side.  For the octant representation, we require that
//! octants have a minimum size of GxGxG rather than 1x1x1 … Both
//! techniques effectively increase the volume of a REGION by including
//! outside space while simultaneously reducing the number of octants or
//! runs required to represent it.  Queries involving such
//! over-approximated REGIONs require post-processing with exact REGIONs."

use crate::region::Region;
use crate::run::Run;

/// Configuration for lossy REGION approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxParams {
    /// Gaps strictly shorter than this many voxels are absorbed into the
    /// surrounding runs.  `0` and `1` are no-ops (gaps are at least 1).
    pub mingap: u64,
    /// Octant blocks are at least `min_octant_side^dims` voxels;
    /// must be a power of two.  `1` is a no-op.
    pub min_octant_side: u32,
}

impl Default for ApproxParams {
    fn default() -> Self {
        ApproxParams { mingap: 1, min_octant_side: 1 }
    }
}

impl Region {
    /// Merges runs separated by gaps shorter than `mingap` voxels.
    ///
    /// The result is a superset of `self` with no more (usually far
    /// fewer) runs.
    pub fn approximate_mingap(&self, mingap: u64) -> Region {
        if mingap <= 1 || self.is_empty() {
            return self.clone();
        }
        let mut out: Vec<Run> = Vec::with_capacity(self.run_count());
        for &r in self.runs() {
            match out.last_mut() {
                Some(last) if r.start - last.end - 1 < mingap => last.end = r.end,
                _ => out.push(r),
            }
        }
        Region::from_runs(self.geometry(), out)
    }

    /// Snaps the region outward to aligned blocks of
    /// `min_octant_side^dims` voxels — the paper's GxGxG minimum octant
    /// size.  On either curve an aligned dyadic id range whose rank is a
    /// multiple of `dims` is a cube, so this is a pure id-space dilation.
    ///
    /// # Panics
    /// Panics unless `min_octant_side` is a power of two within the grid.
    pub fn approximate_min_octant(&self, min_octant_side: u32) -> Region {
        let g = min_octant_side;
        assert!(g >= 1 && g.is_power_of_two(), "min octant side {g} must be a power of two");
        assert!(g <= self.geometry().side(), "min octant side {g} exceeds grid side");
        if g == 1 || self.is_empty() {
            return self.clone();
        }
        let block = (u64::from(g)).pow(self.geometry().dims());
        let snapped: Vec<Run> = self
            .runs()
            .iter()
            .map(|r| Run::new((r.start / block) * block, ((r.end / block) + 1) * block - 1))
            .collect();
        Region::from_runs(self.geometry(), snapped)
    }

    /// Applies both approximations from `params` (mingap first, then the
    /// octant snap, matching how coarse representations would be built at
    /// load time).
    pub fn approximate(&self, params: ApproxParams) -> Region {
        self.approximate_mingap(params.mingap).approximate_min_octant(params.min_octant_side)
    }

    /// The post-processing step the paper prescribes for queries over
    /// approximate REGIONs: refine a candidate (approximate) answer with
    /// the exact REGION.
    pub fn refine_with_exact(&self, exact: &Region) -> Region {
        self.intersect(exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridGeometry;
    use proptest::prelude::*;
    use qbism_sfc::CurveKind;

    fn g3() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 4)
    }

    #[test]
    fn mingap_merges_only_short_gaps() {
        let r = Region::from_runs(g3(), vec![Run::new(0, 9), Run::new(12, 19), Run::new(30, 39)]);
        // gaps: 2 (10..11) and 10 (20..29)
        let a = r.approximate_mingap(3);
        assert_eq!(a.runs(), &[Run::new(0, 19), Run::new(30, 39)]);
        let b = r.approximate_mingap(11);
        assert_eq!(b.runs(), &[Run::new(0, 39)]);
        // threshold equal to the gap does NOT merge (strictly shorter)
        let c = r.approximate_mingap(2);
        assert_eq!(c.runs(), r.runs());
    }

    #[test]
    fn mingap_zero_and_one_are_noops() {
        let r = Region::from_ids(g3(), vec![1, 5, 9]);
        assert_eq!(r.approximate_mingap(0), r);
        assert_eq!(r.approximate_mingap(1), r);
    }

    #[test]
    fn min_octant_snaps_to_cubes() {
        // One voxel must inflate to a full GxGxG block containing it.
        let g = g3();
        let r = Region::from_ids(g, vec![37]);
        let a = r.approximate_min_octant(2); // block = 8 ids
        assert_eq!(a.runs(), &[Run::new(32, 39)]);
        assert_eq!(a.voxel_count(), 8);
        // The block is an actual 2x2x2 cube in space.
        let bb = a.bounding_box3().unwrap();
        assert_eq!(bb.extent().to_array(), [2, 2, 2]);
    }

    #[test]
    fn approximations_reduce_run_count() {
        let g = g3();
        // Checkerboard-ish scatter: worst case for runs.
        let r = Region::from_ids(g, (0..4096).filter(|i| i % 3 == 0).collect());
        let before = r.run_count();
        let after = r.approximate_mingap(4).run_count();
        assert!(after < before, "mingap should reduce runs: {before} -> {after}");
        assert!(r.approximate_mingap(4).voxel_count() > r.voxel_count());
    }

    #[test]
    fn refine_recovers_exact_answer() {
        let g = g3();
        let exact = Region::from_ids(g, vec![5, 6, 7, 100, 101, 240]);
        let approx = exact.approximate(ApproxParams { mingap: 8, min_octant_side: 2 });
        // Approximate-then-refine must equal the exact region.
        assert_eq!(approx.refine_with_exact(&exact), exact);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_side_panics() {
        let r = Region::empty(g3());
        let _ = r.approximate_min_octant(3);
    }

    proptest! {
        #[test]
        fn approximation_is_superset(
            ids in proptest::collection::vec(0u64..4096, 1..200),
            mingap in 0u64..20,
            g_exp in 0u32..3,
        ) {
            let r = Region::from_ids(g3(), ids);
            let a = r.approximate(ApproxParams { mingap, min_octant_side: 1 << g_exp });
            prop_assert!(a.contains_region(&r));
            prop_assert!(a.run_count() <= r.run_count());
        }

        #[test]
        fn mingap_is_monotone(
            ids in proptest::collection::vec(0u64..4096, 1..200),
            small in 1u64..10,
            extra in 1u64..10,
        ) {
            let r = Region::from_ids(g3(), ids);
            let a = r.approximate_mingap(small);
            let b = r.approximate_mingap(small + extra);
            prop_assert!(b.contains_region(&a));
        }

        #[test]
        fn min_octant_aligns_all_runs(
            ids in proptest::collection::vec(0u64..4096, 1..100),
        ) {
            let r = Region::from_ids(g3(), ids);
            let a = r.approximate_min_octant(4); // block = 64 ids
            for run in a.runs() {
                prop_assert_eq!(run.start % 64, 0);
                prop_assert_eq!((run.end + 1) % 64, 0);
            }
        }
    }
}
