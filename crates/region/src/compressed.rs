//! Queryable compressed REGION byte strings.
//!
//! The Figure-4 codecs ([`RegionCodec::Naive`], `Elias`, the octant
//! packings) are storage studies: compact, but a kernel must fully
//! decode them before operating.  The two *queryable* codecs added for
//! compressed-domain execution — [`RegionCodec::RunVskip`] (delta+varint
//! run list with skip blocks) and [`RegionCodec::K3Tree`] (octree
//! bitmap) — open as a [`CompressedCursor`] instead: a streaming,
//! seekable run source the kernels in [`crate::kernel_compressed`]
//! merge without ever materializing the run vector.
//!
//! [`encode_compressed`] is the storage policy: it encodes both ways
//! and keeps the smaller byte string, so sparse boundary-dominated
//! structures land in the skip-block run list and dense blobs in the
//! k³-tree.

use crate::encode::{split_header, RegionCodec, RegionEncodeError};
use crate::geometry::GridGeometry;
use crate::region::Region;
use crate::run::Run;
use qbism_coding::{K3Cursor, RunCursor, RunListCursor};

/// A streaming cursor over either queryable compressed payload.
#[derive(Debug, Clone)]
pub enum CompressedCursor<'a> {
    /// Delta+varint run list with a skip-block directory.
    RunList(RunListCursor<'a>),
    /// k³-tree octree bitmap.
    K3(K3Cursor<'a>),
}

impl RunCursor for CompressedCursor<'_> {
    fn peek(&self) -> Option<(u64, u64)> {
        match self {
            CompressedCursor::RunList(c) => c.peek(),
            CompressedCursor::K3(c) => c.peek(),
        }
    }

    fn advance(&mut self) -> qbism_coding::Result<()> {
        match self {
            CompressedCursor::RunList(c) => c.advance(),
            CompressedCursor::K3(c) => c.advance(),
        }
    }

    fn seek(&mut self, target: u64) -> qbism_coding::Result<()> {
        match self {
            CompressedCursor::RunList(c) => c.seek(target),
            CompressedCursor::K3(c) => c.seek(target),
        }
    }

    fn skips(&self) -> u64 {
        match self {
            CompressedCursor::RunList(c) => c.skips(),
            CompressedCursor::K3(c) => c.skips(),
        }
    }
}

impl CompressedCursor<'_> {
    /// Skip-jumps taken so far, callable without importing
    /// [`RunCursor`] (downstream crates may not depend on
    /// `qbism_coding` directly).
    pub fn skip_count(&self) -> u64 {
        self.skips()
    }

    /// Drains the stream into a run vector.  Decode-everything
    /// convenience for tests and the [`RegionCodec::decode`] fallback —
    /// kernel modules must stream instead (lint
    /// `no-full-decode-in-kernel` bans this call there).
    pub fn to_runs_vec(mut self) -> Result<Vec<Run>, RegionEncodeError> {
        let mut out = Vec::new();
        while let Some((start, end)) = self.peek() {
            out.push(Run::new(start, end));
            self.advance()?;
        }
        Ok(out)
    }
}

/// Opens a compressed REGION byte string as a geometry plus streaming
/// cursor, without decoding the payload.
///
/// Errors with [`RegionEncodeError::BadTag`] if the byte string holds
/// one of the non-queryable Figure-4 codecs.
pub fn compressed_cursor(
    bytes: &[u8],
) -> Result<(GridGeometry, CompressedCursor<'_>), RegionEncodeError> {
    let (codec, geom, _count, body) = split_header(bytes)?;
    let cursor = match codec {
        RegionCodec::RunVskip => CompressedCursor::RunList(RunListCursor::new(body)?),
        RegionCodec::K3Tree => CompressedCursor::K3(K3Cursor::new(body)?),
        other => {
            return Err(RegionEncodeError::BadTag(match other {
                RegionCodec::Naive => 0,
                RegionCodec::Elias => 1,
                _ => 2,
            }))
        }
    };
    Ok((geom, cursor))
}

/// True if `bytes` is an encoded REGION in one of the queryable
/// compressed formats (cheap header sniff, no payload access).
pub fn is_compressed(bytes: &[u8]) -> bool {
    matches!(split_header(bytes), Ok((RegionCodec::RunVskip | RegionCodec::K3Tree, _, _, _)))
}

/// Encodes a region in the smaller of the two queryable compressed
/// formats — run lists win on sparse boundary-heavy structures,
/// k³-trees on dense blobs.
pub fn encode_compressed(region: &Region) -> Result<Vec<u8>, RegionEncodeError> {
    let vskip = RegionCodec::RunVskip.encode(region)?;
    let k3 = RegionCodec::K3Tree.encode(region)?;
    Ok(if vskip.len() <= k3.len() { vskip } else { k3 })
}
