//! On-disk encodings of REGIONs — the subject of Figure 4.
//!
//! Section 4.2 compares, per REGION, the stored size under:
//!
//! * **naive** — each run as two long integers (4 + 4 bytes per run);
//! * **elias** — the delta view (run and gap lengths along the curve),
//!   each length Elias-γ coded;
//! * **oblong octant** / **octant** — one packed 4-byte `<id, rank>`
//!   z-value per block ("the two components can be packed into 4 bytes
//!   for grids as large as 512x512x512").
//!
//! All four are implemented behind [`RegionCodec`], producing
//! self-describing byte strings that round-trip through
//! [`RegionCodec::decode`].  These byte strings are exactly what the LFM
//! stores in a REGION long field.

use crate::geometry::GridGeometry;
use crate::octant::{Octant, OctantKind};
use crate::region::Region;
use crate::run::Run;
use qbism_coding::{BitReader, BitWriter, CodingError, EliasGamma, IntCodec};
use qbism_sfc::CurveKind;

/// Magic number prefix of every encoded REGION ("QR").
const MAGIC: u16 = 0x5152;
/// Rank field width in packed octant words.
const RANK_BITS: u32 = 5;

/// The four REGION storage formats compared in the paper, plus the two
/// *queryable* compressed formats added for compressed-domain execution
/// (open those via [`crate::compressed::compressed_cursor`] to merge
/// without decoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionCodec {
    /// 8 bytes per run: `<start, end>` as two little-endian `u32`s.
    Naive,
    /// Elias-γ coded delta lengths.
    Elias,
    /// Packed 4-byte `<id, rank>` per block.
    Octant(OctantKind),
    /// Delta+varint run list with fixed-interval skip blocks — seekable
    /// without decode ([`qbism_coding::runcode`]).
    RunVskip,
    /// k³-tree octree bitmap for dense structures
    /// ([`qbism_coding::k3tree`]).
    K3Tree,
}

impl RegionCodec {
    /// The paper's codecs, in the order of the Figure 4 ratio list.
    /// Deliberately excludes the queryable compressed formats so the
    /// deterministic tablegen/fig4 output is unchanged.
    pub const ALL: [RegionCodec; 4] = [
        RegionCodec::Elias,
        RegionCodec::Naive,
        RegionCodec::Octant(OctantKind::Oblong),
        RegionCodec::Octant(OctantKind::Cubic),
    ];

    /// The queryable compressed codecs of the compressed tablespace.
    pub const COMPRESSED: [RegionCodec; 2] = [RegionCodec::RunVskip, RegionCodec::K3Tree];

    /// True for codecs whose byte strings open as a streaming
    /// [`crate::compressed::CompressedCursor`].
    pub fn is_compressed(&self) -> bool {
        matches!(self, RegionCodec::RunVskip | RegionCodec::K3Tree)
    }

    /// Name used in benchmark tables (`h-run-elias`, `h-run-naive`,
    /// `oblong-octant`, `octant` in the paper's vocabulary, minus the
    /// curve prefix which [`GridGeometry`] carries).
    pub fn name(&self) -> &'static str {
        match self {
            RegionCodec::Naive => "run-naive",
            RegionCodec::Elias => "run-elias",
            RegionCodec::Octant(OctantKind::Oblong) => "oblong-octant",
            RegionCodec::Octant(OctantKind::Cubic) => "octant",
            RegionCodec::RunVskip => "run-vskip",
            RegionCodec::K3Tree => "k3-tree",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            RegionCodec::Naive => 0,
            RegionCodec::Elias => 1,
            RegionCodec::Octant(OctantKind::Oblong) => 2,
            RegionCodec::Octant(OctantKind::Cubic) => 3,
            RegionCodec::RunVskip => 4,
            RegionCodec::K3Tree => 5,
        }
    }

    fn from_tag(tag: u8) -> Option<RegionCodec> {
        Some(match tag {
            0 => RegionCodec::Naive,
            1 => RegionCodec::Elias,
            2 => RegionCodec::Octant(OctantKind::Oblong),
            3 => RegionCodec::Octant(OctantKind::Cubic),
            4 => RegionCodec::RunVskip,
            5 => RegionCodec::K3Tree,
            _ => return None,
        })
    }

    /// Encodes a region into a self-describing byte string.
    pub fn encode(&self, region: &Region) -> Result<Vec<u8>, RegionEncodeError> {
        let geom = region.geometry();
        check_width(*self, geom)?;
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.tag());
        out.push(kind_tag(geom.kind()));
        out.push(geom.dims() as u8);
        out.push(geom.bits() as u8);
        match self {
            RegionCodec::Naive => {
                let runs = region.runs();
                out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                for r in runs {
                    out.extend_from_slice(&(r.start as u32).to_le_bytes());
                    out.extend_from_slice(&(r.end as u32).to_le_bytes());
                }
            }
            RegionCodec::Elias => {
                let runs = region.runs();
                out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                let mut w = BitWriter::new();
                if let Some(first) = runs.first() {
                    // first start may be 0; shift into the positive domain.
                    EliasGamma.encode(&mut w, first.start + 1)?;
                    for (i, r) in runs.iter().enumerate() {
                        if i > 0 {
                            EliasGamma.encode(&mut w, r.start - runs[i - 1].end - 1)?;
                        }
                        EliasGamma.encode(&mut w, r.len())?;
                    }
                }
                out.extend_from_slice(&w.finish());
            }
            RegionCodec::Octant(kind) => {
                let octs = region.octants(*kind);
                out.extend_from_slice(&(octs.len() as u32).to_le_bytes());
                for o in &octs {
                    let packed = ((o.id as u32) << RANK_BITS) | o.rank;
                    out.extend_from_slice(&packed.to_le_bytes());
                }
            }
            RegionCodec::RunVskip => {
                let runs = region.runs();
                out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                let pairs: Vec<(u64, u64)> = runs.iter().map(|r| (r.start, r.end)).collect();
                out.extend_from_slice(&qbism_coding::runcode::encode_runs(&pairs)?);
            }
            RegionCodec::K3Tree => {
                let runs = region.runs();
                out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                let pairs: Vec<(u64, u64)> = runs.iter().map(|r| (r.start, r.end)).collect();
                let id_bits = geom.dims() * geom.bits();
                out.extend_from_slice(&qbism_coding::k3tree::encode_runs(&pairs, id_bits)?);
            }
        }
        Ok(out)
    }

    /// Size in bytes the encoding would occupy, without materializing it.
    ///
    /// Figure 4 measures thousands of `(REGION, codec)` pairs; this path
    /// avoids building the byte strings.
    pub fn encoded_len(&self, region: &Region) -> Result<usize, RegionEncodeError> {
        check_width(*self, region.geometry())?;
        let header = 10; // magic 2 + tag 1 + kind 1 + dims 1 + bits 1 + count 4
        Ok(match self {
            RegionCodec::Naive => header + region.run_count() * 8,
            RegionCodec::Elias => {
                let mut bits = 0u64;
                if let Some(first) = region.runs().first() {
                    bits += EliasGamma.code_len(first.start + 1)?;
                    for d in region.delta_lengths() {
                        bits += EliasGamma.code_len(d)?;
                    }
                }
                header + (bits as usize).div_ceil(8)
            }
            RegionCodec::Octant(kind) => header + region.octant_count(*kind) * 4,
            RegionCodec::RunVskip => {
                let pairs: Vec<(u64, u64)> =
                    region.runs().iter().map(|r| (r.start, r.end)).collect();
                header + qbism_coding::runcode::encoded_len(&pairs)
            }
            // The k³-tree's size depends on subtree shape; measure by
            // encoding (compressed payloads are small by construction).
            RegionCodec::K3Tree => self.encode(region)?.len(),
        })
    }

    /// Payload size (bytes past the fixed header) — the quantity the
    /// paper's Figure 4 compares, uncontaminated by our header choice.
    pub fn payload_len(&self, region: &Region) -> Result<usize, RegionEncodeError> {
        Ok(self.encoded_len(region)? - 10)
    }

    /// Decodes a byte string produced by any [`RegionCodec`].
    ///
    /// The codec is read from the byte string itself; `self` is not
    /// consulted (call via [`RegionCodec::decode`] as an associated-style
    /// helper or any variant).
    pub fn decode(bytes: &[u8]) -> Result<Region, RegionEncodeError> {
        let header = bytes.get(..10).ok_or(RegionEncodeError::Truncated)?;
        let magic = u16::from_le_bytes([header[0], header[1]]);
        if magic != MAGIC {
            return Err(RegionEncodeError::BadMagic(magic));
        }
        let codec = RegionCodec::from_tag(header[2]).ok_or(RegionEncodeError::BadTag(header[2]))?;
        let kind = kind_from_tag(header[3]).ok_or(RegionEncodeError::BadTag(header[3]))?;
        let (dims, bits) = (u32::from(header[4]), u32::from(header[5]));
        if dims == 0 || bits == 0 || dims * bits > qbism_sfc::MAX_INDEX_BITS {
            return Err(RegionEncodeError::BadGeometry { dims, bits });
        }
        let geom = GridGeometry::new(kind, dims, bits);
        let count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
        let body = &bytes[10..];
        match codec {
            RegionCodec::Naive => {
                let need = count * 8;
                if body.len() < need {
                    return Err(RegionEncodeError::Truncated);
                }
                let mut runs = Vec::with_capacity(count);
                for i in 0..count {
                    let s = le_u32(&body[i * 8..]);
                    let e = le_u32(&body[i * 8 + 4..]);
                    if e < s {
                        return Err(RegionEncodeError::Corrupt("inverted run"));
                    }
                    runs.push(Run::new(u64::from(s), u64::from(e)));
                }
                build_checked(geom, runs)
            }
            RegionCodec::Elias => {
                // An untrusted count must not drive allocation: every run
                // costs at least 2 payload bits (one γ codeword per run
                // length plus the start/gap codeword), so any count beyond
                // the body's bit budget is corrupt.
                if count as u64 > (body.len() as u64) * 8 {
                    return Err(RegionEncodeError::Truncated);
                }
                let mut r = BitReader::new(body);
                let mut runs = Vec::with_capacity(count);
                if count > 0 {
                    let mut start = EliasGamma.decode(&mut r)? - 1;
                    for i in 0..count {
                        if i > 0 {
                            let gap = EliasGamma.decode(&mut r)?;
                            start += gap;
                        }
                        let len = EliasGamma.decode(&mut r)?;
                        runs.push(Run::new(start, start + len - 1));
                        start += len;
                    }
                }
                build_checked(geom, runs)
            }
            RegionCodec::Octant(_) => {
                let need = count * 4;
                if body.len() < need {
                    return Err(RegionEncodeError::Truncated);
                }
                let mut octs = Vec::with_capacity(count);
                for i in 0..count {
                    let packed = le_u32(&body[i * 4..]);
                    let rank = packed & ((1 << RANK_BITS) - 1);
                    let id = u64::from(packed >> RANK_BITS);
                    if rank as u64 > 63 || id % (1u64 << rank) != 0 {
                        return Err(RegionEncodeError::Corrupt("misaligned octant"));
                    }
                    octs.push(Octant::new(id, rank));
                }
                let runs: Vec<Run> = octs.iter().map(Octant::as_run).collect();
                build_checked(geom, runs)
            }
            RegionCodec::RunVskip | RegionCodec::K3Tree => {
                // Queryable payloads: open the streaming cursor and
                // drain it (decode() is the decode-everything path;
                // kernels use the cursor directly).
                let (_, cursor) = crate::compressed::compressed_cursor(bytes)?;
                let runs = cursor.to_runs_vec()?;
                if runs.len() != count {
                    return Err(RegionEncodeError::Corrupt("run count mismatch"));
                }
                build_checked(geom, runs)
            }
        }
    }
}

/// Splits an encoded REGION into `(codec, geometry, run count, body)`
/// without touching the payload — the shared header parse behind
/// [`RegionCodec::decode`] and [`crate::compressed::compressed_cursor`].
pub(crate) fn split_header(
    bytes: &[u8],
) -> Result<(RegionCodec, GridGeometry, usize, &[u8]), RegionEncodeError> {
    let header = bytes.get(..10).ok_or(RegionEncodeError::Truncated)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(RegionEncodeError::BadMagic(magic));
    }
    let codec = RegionCodec::from_tag(header[2]).ok_or(RegionEncodeError::BadTag(header[2]))?;
    let kind = kind_from_tag(header[3]).ok_or(RegionEncodeError::BadTag(header[3]))?;
    let (dims, bits) = (u32::from(header[4]), u32::from(header[5]));
    if dims == 0 || bits == 0 || dims * bits > qbism_sfc::MAX_INDEX_BITS {
        return Err(RegionEncodeError::BadGeometry { dims, bits });
    }
    let geom = GridGeometry::new(kind, dims, bits);
    let count = u32::from_le_bytes([header[6], header[7], header[8], header[9]]) as usize;
    Ok((codec, geom, count, &bytes[10..]))
}

fn build_checked(geom: GridGeometry, runs: Vec<Run>) -> Result<Region, RegionEncodeError> {
    let cells = geom.cell_count();
    if runs.iter().any(|r| r.end >= cells) {
        return Err(RegionEncodeError::Corrupt("run exceeds grid"));
    }
    Ok(Region::from_runs(geom, runs))
}

fn check_width(codec: RegionCodec, geom: GridGeometry) -> Result<(), RegionEncodeError> {
    let id_bits = geom.dims() * geom.bits();
    let limit = match codec {
        RegionCodec::Naive | RegionCodec::Elias => 32,
        RegionCodec::Octant(_) => 32 - RANK_BITS,
        RegionCodec::RunVskip | RegionCodec::K3Tree => 32,
    };
    if id_bits > limit {
        Err(RegionEncodeError::IdTooWide { id_bits, limit })
    } else {
        Ok(())
    }
}

fn kind_tag(kind: CurveKind) -> u8 {
    match kind {
        CurveKind::Hilbert => 0,
        CurveKind::Morton => 1,
        CurveKind::Scanline => 2,
    }
}

fn kind_from_tag(tag: u8) -> Option<CurveKind> {
    Some(match tag {
        0 => CurveKind::Hilbert,
        1 => CurveKind::Morton,
        2 => CurveKind::Scanline,
        _ => return None,
    })
}

/// Errors from REGION encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionEncodeError {
    /// The grid's ids do not fit the codec's fixed-width words.
    IdTooWide {
        /// Bits required by the grid's ids.
        id_bits: u32,
        /// Bits the codec can store.
        limit: u32,
    },
    /// The byte string ended early.
    Truncated,
    /// Unrecognized magic number.
    BadMagic(u16),
    /// Unrecognized codec or curve tag.
    BadTag(u8),
    /// Geometry fields are invalid.
    BadGeometry {
        /// Stored dims.
        dims: u32,
        /// Stored bits.
        bits: u32,
    },
    /// Structurally invalid payload.
    Corrupt(&'static str),
    /// Underlying bit-level failure.
    Coding(CodingError),
}

impl From<CodingError> for RegionEncodeError {
    fn from(e: CodingError) -> Self {
        RegionEncodeError::Coding(e)
    }
}

impl std::fmt::Display for RegionEncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionEncodeError::IdTooWide { id_bits, limit } => {
                write!(f, "grid ids need {id_bits} bits but the codec stores at most {limit}")
            }
            RegionEncodeError::Truncated => write!(f, "encoded region is truncated"),
            RegionEncodeError::BadMagic(m) => write!(f, "bad region magic {m:#06x}"),
            RegionEncodeError::BadTag(t) => write!(f, "unknown codec/curve tag {t}"),
            RegionEncodeError::BadGeometry { dims, bits } => {
                write!(f, "invalid stored geometry: dims={dims} bits={bits}")
            }
            RegionEncodeError::Corrupt(what) => write!(f, "corrupt region payload: {what}"),
            RegionEncodeError::Coding(e) => write!(f, "bit-level failure: {e}"),
        }
    }
}

impl std::error::Error for RegionEncodeError {}

/// Little-endian u32 at the head of `bytes`; callers bounds-check the
/// enclosing body first (slicing still panics loudly if they did not).
fn le_u32(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn paper_region_z() -> Region {
        let g = GridGeometry::new(CurveKind::Morton, 2, 2);
        Region::from_ids(g, vec![1, 4, 5, 6, 7, 12, 13])
    }

    #[test]
    fn naive_costs_eight_bytes_per_run() {
        // "store the starting and ending h-ids each as long integers
        //  (4+4 bytes per run) … this method would store 1 run in 8 bytes"
        let h = paper_region_z().to_curve(CurveKind::Hilbert);
        assert_eq!(h.run_count(), 1);
        assert_eq!(RegionCodec::Naive.payload_len(&h).unwrap(), 8);
        let z = paper_region_z();
        assert_eq!(RegionCodec::Naive.payload_len(&z).unwrap(), 24);
    }

    #[test]
    fn octant_costs_four_bytes_per_block() {
        let z = paper_region_z();
        assert_eq!(RegionCodec::Octant(OctantKind::Cubic).payload_len(&z).unwrap(), 16);
        assert_eq!(RegionCodec::Octant(OctantKind::Oblong).payload_len(&z).unwrap(), 12);
    }

    #[test]
    fn elias_payload_matches_gamma_lengths() {
        // Hilbert form: 1 run <3,9> -> gamma(3+1) + gamma(7) = 5 + 5 bits
        let h = paper_region_z().to_curve(CurveKind::Hilbert);
        assert_eq!(RegionCodec::Elias.payload_len(&h).unwrap(), (5usize + 5).div_ceil(8));
    }

    #[test]
    fn all_codecs_roundtrip_paper_region() {
        for codec in RegionCodec::ALL {
            for kind in [CurveKind::Morton, CurveKind::Hilbert] {
                let r = paper_region_z().to_curve(kind);
                let bytes = codec.encode(&r).unwrap();
                assert_eq!(bytes.len(), codec.encoded_len(&r).unwrap(), "{}", codec.name());
                let back = RegionCodec::decode(&bytes).unwrap();
                assert_eq!(back, r, "{}", codec.name());
            }
        }
    }

    #[test]
    fn empty_region_roundtrips() {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 4);
        let e = Region::empty(g);
        for codec in RegionCodec::ALL {
            let bytes = codec.encode(&e).unwrap();
            assert_eq!(RegionCodec::decode(&bytes).unwrap(), e);
        }
    }

    #[test]
    fn full_grid_roundtrips() {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 4);
        let f = Region::full(g);
        for codec in RegionCodec::ALL {
            let bytes = codec.encode(&f).unwrap();
            assert_eq!(RegionCodec::decode(&bytes).unwrap(), f);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(RegionCodec::decode(&[]), Err(RegionEncodeError::Truncated));
        assert!(matches!(RegionCodec::decode(&[0u8; 10]), Err(RegionEncodeError::BadMagic(_))));
        let g = GridGeometry::new(CurveKind::Hilbert, 2, 2);
        let mut bytes = RegionCodec::Naive.encode(&Region::full(g)).unwrap();
        bytes[2] = 99; // codec tag
        assert_eq!(RegionCodec::decode(&bytes), Err(RegionEncodeError::BadTag(99)));
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let g = GridGeometry::new(CurveKind::Hilbert, 2, 3);
        let r = Region::from_ids(g, vec![1, 2, 3, 10, 11, 40]);
        for codec in [RegionCodec::Naive, RegionCodec::Octant(OctantKind::Cubic)] {
            let bytes = codec.encode(&r).unwrap();
            let cut = &bytes[..bytes.len() - 3];
            assert!(RegionCodec::decode(cut).is_err(), "{}", codec.name());
        }
    }

    #[test]
    fn decode_rejects_out_of_grid_runs() {
        let g = GridGeometry::new(CurveKind::Hilbert, 2, 2);
        let mut bytes = RegionCodec::Naive.encode(&Region::full(g)).unwrap();
        // run end beyond 15
        bytes[14..18].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(RegionCodec::decode(&bytes), Err(RegionEncodeError::Corrupt(_))));
    }

    #[test]
    fn width_limits_enforced() {
        // 3 dims x 11 bits = 33 id bits: too wide for u32 codecs.
        let g = GridGeometry::new(CurveKind::Morton, 3, 11);
        let r = Region::empty(g);
        assert!(matches!(RegionCodec::Naive.encode(&r), Err(RegionEncodeError::IdTooWide { .. })));
        // 512^3 = 27 id bits: exactly the paper's packing claim; octants
        // still fit (27 + 5 = 32).
        let g512 = GridGeometry::new(CurveKind::Morton, 3, 9);
        assert!(RegionCodec::Octant(OctantKind::Cubic).encode(&Region::empty(g512)).is_ok());
        // 1024^3 would not.
        let g1024 = GridGeometry::new(CurveKind::Morton, 3, 10);
        assert!(matches!(
            RegionCodec::Octant(OctantKind::Cubic).encode(&Region::empty(g1024)),
            Err(RegionEncodeError::IdTooWide { .. })
        ));
    }

    proptest! {
        #[test]
        fn random_regions_roundtrip_every_codec(
            ids in proptest::collection::vec(0u64..32768, 0..400),
        ) {
            let g = GridGeometry::new(CurveKind::Hilbert, 3, 5);
            let r = Region::from_ids(g, ids);
            for codec in RegionCodec::ALL {
                let bytes = codec.encode(&r).unwrap();
                prop_assert_eq!(bytes.len(), codec.encoded_len(&r).unwrap());
                prop_assert_eq!(RegionCodec::decode(&bytes).unwrap(), r.clone());
            }
        }

        #[test]
        fn elias_never_beats_entropy_but_beats_naive_on_smooth_regions(
            center in 8u64..24,
        ) {
            // A contiguous blob has few, long runs; elias exploits that.
            let g = GridGeometry::new(CurveKind::Hilbert, 3, 5);
            let r = Region::from_runs(g, vec![Run::new(center * 100, center * 100 + 4999)]);
            let elias = RegionCodec::Elias.payload_len(&r).unwrap();
            let naive = RegionCodec::Naive.payload_len(&r).unwrap();
            prop_assert!(elias <= naive);
        }
    }
}
