//! The QBISM `REGION` data type.
//!
//! A REGION "encodes the spatial extent of an arbitrarily shaped entity,
//! such as an anatomical structure" (Section 3.1).  The paper's key
//! physical-design decisions, all implemented here:
//!
//! * **volumetric representation** — a REGION is a set of voxels, not a
//!   surface or CSG model, so intersections and extractions are merge
//!   scans (Section 4.2);
//! * **runs, not octants** — the operational encoding is a sorted list of
//!   maximal runs of consecutive curve ids ("the number of runs never
//!   exceeds the number of octants");
//! * **Hilbert order, not Z order** — h-runs are ~1.27x fewer than z-runs
//!   on brain data;
//! * **Elias-γ-compressed deltas on disk** — ~8x smaller than the naive
//!   8-bytes-per-run encoding and within ~1.17x of the entropy bound.
//!
//! The octant and oblong-octant encodings, the Z-order variants, the
//! "naive" byte format, and the approximation schemes are all implemented
//! too, because the paper's evaluation (Tables 1, 2, 4 and Figure 4) is a
//! comparison among them.
//!
//! # Example
//!
//! ```
//! use qbism_region::{GridGeometry, Region};
//! use qbism_sfc::CurveKind;
//!
//! // An 8x8x8 grid on the Hilbert curve.
//! let geom = GridGeometry::new(CurveKind::Hilbert, 3, 3);
//! let ball = Region::rasterize(geom, |p| {
//!     let d = |a: u32, b: f64| (a as f64 + 0.5 - b).powi(2);
//!     d(p[0], 4.0) + d(p[1], 4.0) + d(p[2], 4.0) <= 9.0
//! });
//! let octant = Region::from_box(geom, [0, 0, 0], [3, 3, 3]).unwrap();
//! let corner = ball.intersect(&octant);
//! assert!(ball.contains_region(&corner));
//! assert_eq!(corner.voxel_count(), ball.voxel_count_in_box([0,0,0], [3,3,3]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
pub mod compressed;
mod encode;
mod geometry;
pub mod kernel;
pub mod kernel_compressed;
mod nway;
mod octant;
mod region;
mod run;
mod stats;

pub use approx::ApproxParams;
pub use compressed::{compressed_cursor, encode_compressed, CompressedCursor};
pub use encode::{RegionCodec, RegionEncodeError};
pub use geometry::GridGeometry;
pub use nway::intersect_all;
pub use octant::{octants_to_runs, Octant, OctantKind};
pub use region::Region;
pub use run::Run;
pub use stats::{linear_fit_through_origin, DeltaStats, RepresentationCounts};
