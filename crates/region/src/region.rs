//! The [`Region`] type and its set algebra.

use crate::geometry::GridGeometry;
use crate::kernel;
use crate::run::{normalize, runs_from_ids, Run};
use qbism_geometry::{IBox3, IVec3, Solid};
use qbism_sfc::SpaceFillingCurve;

/// An arbitrary set of grid voxels, stored as canonical runs of
/// consecutive curve ids.
///
/// This is the paper's REGION: "a list of runs in Hilbert order".  All
/// set operations are linear merge scans over the run lists — the
/// "spatial join" of Orenstein & Manola that the paper adapts from
/// octants to runs.
///
/// # Invariants
///
/// * runs are sorted by `start`;
/// * runs are pairwise disjoint and non-adjacent (each run is maximal);
/// * every id is below `geometry().cell_count()`.
///
/// Operations between regions require equal [`GridGeometry`]; mixing
/// curves or grid sizes is a programming error and panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    geom: GridGeometry,
    runs: Vec<Run>,
}

impl Region {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The empty region.
    pub fn empty(geom: GridGeometry) -> Self {
        Region { geom, runs: Vec::new() }
    }

    /// The region covering the whole grid (a single run).
    pub fn full(geom: GridGeometry) -> Self {
        Region { geom, runs: vec![Run::new(0, geom.cell_count() - 1)] }
    }

    /// Builds a region from arbitrary runs (normalized internally).
    ///
    /// # Panics
    /// Panics if any id is outside the grid.
    pub fn from_runs(geom: GridGeometry, runs: Vec<Run>) -> Self {
        let cells = geom.cell_count();
        for r in &runs {
            assert!(r.end < cells, "run {r:?} exceeds grid cell count {cells}");
        }
        Region { geom, runs: normalize(runs) }
    }

    /// Builds a region from arbitrary (unsorted, possibly duplicate) ids.
    ///
    /// # Panics
    /// Panics if any id is outside the grid.
    pub fn from_ids(geom: GridGeometry, ids: Vec<u64>) -> Self {
        let cells = geom.cell_count();
        for &id in &ids {
            assert!(id < cells, "id {id} exceeds grid cell count {cells}");
        }
        Region { geom, runs: runs_from_ids(ids) }
    }

    /// Rasterizes a coordinate predicate over the whole grid.
    ///
    /// The predicate sees coordinates as a `dims`-length slice.  Use the
    /// 3-D helpers ([`Region::rasterize_solid`], [`Region::from_box`]) for
    /// the common case.
    pub fn rasterize<F: FnMut(&[u32]) -> bool>(geom: GridGeometry, mut pred: F) -> Self {
        let curve = geom.curve();
        let dims = geom.dims() as usize;
        let side = geom.side();
        let mut coords = vec![0u32; dims];
        let mut ids: Vec<u64> = Vec::new();
        loop {
            if pred(&coords) {
                ids.push(curve.index_of(&coords));
            }
            // Mixed-radix increment, last axis fastest.
            let mut axis = dims;
            loop {
                if axis == 0 {
                    return Region { geom, runs: runs_from_ids(ids) };
                }
                axis -= 1;
                coords[axis] += 1;
                if coords[axis] < side {
                    break;
                }
                coords[axis] = 0;
            }
        }
    }

    /// Rasterizes an analytic solid by voxel-centre membership (3-D only).
    ///
    /// This is how the synthetic atlas structures become volumetric
    /// REGIONs.
    ///
    /// # Panics
    /// Panics if the geometry is not 3-dimensional.
    pub fn rasterize_solid<S: Solid>(geom: GridGeometry, solid: &S) -> Self {
        assert_eq!(geom.dims(), 3, "rasterize_solid requires a 3-D grid");
        Region::rasterize(geom, |c| solid.contains(IVec3::new(c[0], c[1], c[2]).center()))
    }

    /// The axis-aligned box region with inclusive corners (3-D only).
    ///
    /// Returns `None` if the box pokes outside the grid.
    pub fn from_box(geom: GridGeometry, min: [u32; 3], max: [u32; 3]) -> Option<Self> {
        if geom.dims() != 3 {
            return None;
        }
        let side = geom.side();
        if max.iter().any(|&c| c >= side) || min.iter().zip(&max).any(|(a, b)| a > b) {
            return None;
        }
        // Octant descent (or whole scanline rows) — the kernel emits the
        // canonical run list without visiting individual voxels.
        Some(Region { geom, runs: kernel::box_runs3(&geom.curve(), min, max) })
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The grid geometry the ids are defined over.
    pub fn geometry(&self) -> GridGeometry {
        self.geom
    }

    /// The canonical run list.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Number of runs — the quantity Section 4.2 compares across curves.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of voxels in the region.
    pub fn voxel_count(&self) -> u64 {
        self.runs.iter().map(Run::len).sum()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Whether curve id `id` is in the region (binary search).
    pub fn contains_id(&self, id: u64) -> bool {
        self.runs
            .binary_search_by(|r| {
                if id < r.start {
                    std::cmp::Ordering::Greater
                } else if id > r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the voxel at `coords` is in the region.
    pub fn contains_voxel(&self, coords: &[u32]) -> bool {
        self.contains_id(self.geom.curve().index_of(coords))
    }

    /// Iterates all curve ids in increasing order.
    pub fn iter_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|r| r.start..=r.end)
    }

    /// Iterates all voxels as `(x, y, z)` in curve order (3-D only).
    ///
    /// # Panics
    /// Panics if the geometry is not 3-dimensional.
    pub fn iter_voxels3(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        assert_eq!(self.geom.dims(), 3, "iter_voxels3 requires a 3-D grid");
        let curve = self.geom.curve();
        self.iter_ids().map(move |id| {
            let mut c = [0u32; 3];
            curve.coords_of(id, &mut c);
            (c[0], c[1], c[2])
        })
    }

    /// Tight bounding box of the region (3-D only); `None` when empty.
    ///
    /// # Panics
    /// Panics if the geometry is not 3-dimensional.
    pub fn bounding_box3(&self) -> Option<IBox3> {
        assert_eq!(self.geom.dims(), 3, "bounding_box3 requires a 3-D grid");
        let mut lo = [u32::MAX; 3];
        let mut hi = [0u32; 3];
        if self.is_empty() {
            return None;
        }
        for (x, y, z) in self.iter_voxels3() {
            let c = [x, y, z];
            for a in 0..3 {
                lo[a] = lo[a].min(c[a]);
                hi[a] = hi[a].max(c[a]);
            }
        }
        Some(IBox3::new(IVec3::from(lo), IVec3::from(hi)))
    }

    /// Number of region voxels inside an inclusive box (3-D only).
    ///
    /// Counts overlap in place over the box's run decomposition — no
    /// intersected `Region` (nor any id vector) is ever allocated.
    pub fn voxel_count_in_box(&self, min: [u32; 3], max: [u32; 3]) -> u64 {
        let side = self.geom.side();
        if self.geom.dims() != 3
            || max.iter().any(|&c| c >= side)
            || min.iter().zip(&max).any(|(a, b)| a > b)
        {
            return 0;
        }
        let box_runs = kernel::box_runs3(&self.geom.curve(), min, max);
        kernel::count_intersect_runs(&self.runs, &box_runs)
    }

    // ------------------------------------------------------------------
    // Set algebra (merge scans — the run-based "spatial join")
    // ------------------------------------------------------------------

    fn assert_compatible(&self, other: &Region, op: &str) {
        assert_eq!(
            self.geom, other.geom,
            "{op} between incompatible grids: {:?} vs {:?}",
            self.geom, other.geom
        );
    }

    /// Spatial intersection — the paper's `INTERSECTION(r1, r2)` operator.
    pub fn intersect(&self, other: &Region) -> Region {
        self.assert_compatible(other, "intersection");
        // Merge-scan output of canonical inputs is already canonical.
        Region { geom: self.geom, runs: kernel::intersect_runs(&self.runs, &other.runs) }
    }

    /// Spatial union — the paper's future-work `UNION(r1, r2)` operator.
    pub fn union(&self, other: &Region) -> Region {
        self.assert_compatible(other, "union");
        Region { geom: self.geom, runs: kernel::union_runs(&self.runs, &other.runs) }
    }

    /// Spatial difference `self \ other` — the paper's future-work
    /// `DIFFERENCE(r1, r2)` operator.
    pub fn difference(&self, other: &Region) -> Region {
        self.assert_compatible(other, "difference");
        Region { geom: self.geom, runs: kernel::difference_runs(&self.runs, &other.runs) }
    }

    /// Complement within the grid.
    pub fn complement(&self) -> Region {
        Region::full(self.geom).difference(self)
    }

    /// Spatial containment — the paper's `CONTAINS(r1, r2)` operator:
    /// whether `self` is a spatial superset of `other`.
    pub fn contains_region(&self, other: &Region) -> bool {
        self.assert_compatible(other, "containment");
        let mut i = 0usize;
        for &b in &other.runs {
            // Find the run of self that could cover b.start.
            while i < self.runs.len() && self.runs[i].end < b.start {
                i += 1;
            }
            match self.runs.get(i) {
                Some(a) if a.start <= b.start && b.end <= a.end => {}
                _ => return false,
            }
        }
        true
    }

    // ------------------------------------------------------------------
    // Re-linearization and deltas
    // ------------------------------------------------------------------

    /// Re-expresses the same voxel set on a different curve.
    ///
    /// This is how the Section 4.2 run-count comparison is produced: one
    /// voxel set, ids recomputed per curve.
    pub fn to_curve(&self, kind: qbism_sfc::CurveKind) -> Region {
        if kind == self.geom.kind() {
            return self.clone();
        }
        let src = self.geom.curve();
        let dst_geom = self.geom.with_kind(kind);
        let dst = dst_geom.curve();
        // Batched transcoding: whole octree-aligned blocks convert with a
        // single curve conversion each when both orders are hierarchical.
        Region { geom: dst_geom, runs: kernel::transcode_runs(&self.runs, &src, &dst) }
    }

    /// The delta sequence: lengths of alternating runs and interior gaps,
    /// in curve order, starting and ending with a run.  This is the
    /// sequence whose length distribution EQ 1 models and whose entropy
    /// EQ 2 bounds.
    pub fn delta_lengths(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.runs.len() * 2);
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(r.start - self.runs[i - 1].end - 1); // gap
            }
            out.push(r.len()); // run
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use qbism_geometry::{Sphere, Vec3};
    use qbism_sfc::CurveKind;

    fn geom_2d() -> GridGeometry {
        GridGeometry::new(CurveKind::Morton, 2, 2)
    }

    fn small3(kind: CurveKind) -> GridGeometry {
        GridGeometry::new(kind, 3, 3)
    }

    /// The paper's Figure 3 region as z-ids.
    fn paper_region() -> Region {
        Region::from_ids(geom_2d(), vec![1, 4, 5, 6, 7, 12, 13])
    }

    #[test]
    fn paper_region_runs_match_table1() {
        let r = paper_region();
        assert_eq!(r.runs(), &[Run::new(1, 1), Run::new(4, 7), Run::new(12, 13)]);
        assert_eq!(r.voxel_count(), 7);
        assert_eq!(r.run_count(), 3);
    }

    #[test]
    fn paper_region_on_hilbert_matches_table2() {
        let r = paper_region().to_curve(CurveKind::Hilbert);
        assert_eq!(r.runs(), &[Run::new(3, 9)], "Table 2: h-runs = <3,9>");
    }

    #[test]
    fn delta_lengths_of_paper_region() {
        // runs 1;4-7;12-13 -> run 1, gap 2, run 4, gap 4, run 2
        assert_eq!(paper_region().delta_lengths(), vec![1, 2, 4, 4, 2]);
        // On the Hilbert curve there is a single delta.
        assert_eq!(paper_region().to_curve(CurveKind::Hilbert).delta_lengths(), vec![7]);
    }

    #[test]
    fn empty_and_full() {
        let g = small3(CurveKind::Hilbert);
        let e = Region::empty(g);
        let f = Region::full(g);
        assert!(e.is_empty());
        assert_eq!(e.voxel_count(), 0);
        assert_eq!(f.voxel_count(), 512);
        assert_eq!(f.run_count(), 1);
        assert!(f.contains_region(&e));
        assert!(f.contains_region(&f));
        assert!(!e.contains_region(&f));
        assert_eq!(e.complement(), f);
        assert_eq!(f.complement(), e);
        assert!(e.delta_lengths().is_empty());
    }

    #[test]
    fn from_box_and_counts() {
        let g = small3(CurveKind::Hilbert);
        let b = Region::from_box(g, [1, 1, 1], [3, 4, 2]).unwrap();
        assert_eq!(b.voxel_count(), 3 * 4 * 2);
        assert!(b.contains_voxel(&[1, 1, 1]));
        assert!(b.contains_voxel(&[3, 4, 2]));
        assert!(!b.contains_voxel(&[0, 1, 1]));
        assert!(!b.contains_voxel(&[3, 5, 2]));
        assert_eq!(
            b.bounding_box3().unwrap(),
            IBox3::new(IVec3::new(1, 1, 1), IVec3::new(3, 4, 2))
        );
        // Out-of-grid box
        assert!(Region::from_box(g, [0, 0, 0], [8, 1, 1]).is_none());
        // Inverted box
        assert!(Region::from_box(g, [3, 0, 0], [1, 1, 1]).is_none());
    }

    #[test]
    fn rasterize_solid_sphere() {
        let g = small3(CurveKind::Hilbert);
        let ball = Sphere::new(Vec3::splat(4.0), 2.5);
        let r = Region::rasterize_solid(g, &ball);
        assert!(r.voxel_count() > 0);
        // centre voxel inside, corner voxel outside
        assert!(r.contains_voxel(&[4, 4, 4]));
        assert!(!r.contains_voxel(&[0, 0, 0]));
        // every voxel's centre is actually inside the ball
        for (x, y, z) in r.iter_voxels3() {
            assert!(ball.contains(IVec3::new(x, y, z).center()));
        }
    }

    #[test]
    fn intersection_merge_scan() {
        let g = geom_2d();
        let a = Region::from_ids(g, vec![1, 2, 3, 8, 9, 14]);
        let b = Region::from_ids(g, vec![2, 3, 4, 9, 15]);
        let i = a.intersect(&b);
        let expect = Region::from_ids(g, vec![2, 3, 9]);
        assert_eq!(i, expect);
        assert_eq!(a.intersect(&Region::empty(g)), Region::empty(g));
    }

    #[test]
    fn union_and_difference() {
        let g = geom_2d();
        let a = Region::from_ids(g, vec![1, 2, 3, 10]);
        let b = Region::from_ids(g, vec![3, 4, 11]);
        assert_eq!(a.union(&b), Region::from_ids(g, vec![1, 2, 3, 4, 10, 11]));
        assert_eq!(a.difference(&b), Region::from_ids(g, vec![1, 2, 10]));
        assert_eq!(b.difference(&a), Region::from_ids(g, vec![4, 11]));
    }

    #[test]
    fn difference_splits_runs() {
        let g = small3(CurveKind::Morton);
        let a = Region::from_runs(g, vec![Run::new(0, 99)]);
        let b = Region::from_ids(g, vec![10, 11, 50]);
        let d = a.difference(&b);
        assert_eq!(d.runs(), &[Run::new(0, 9), Run::new(12, 49), Run::new(51, 99)]);
    }

    #[test]
    fn containment_operator() {
        let g = geom_2d();
        let big = Region::from_ids(g, vec![0, 1, 2, 3, 8, 9, 10]);
        let small = Region::from_ids(g, vec![1, 2, 9]);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
        let not_inside = Region::from_ids(g, vec![1, 4]);
        assert!(!big.contains_region(&not_inside));
    }

    #[test]
    fn contains_id_binary_search() {
        let g = small3(CurveKind::Hilbert);
        let r = Region::from_runs(g, vec![Run::new(5, 10), Run::new(20, 30)]);
        for id in 5..=10 {
            assert!(r.contains_id(id));
        }
        assert!(!r.contains_id(4));
        assert!(!r.contains_id(11));
        assert!(!r.contains_id(19));
        assert!(r.contains_id(20) && r.contains_id(30));
        assert!(!r.contains_id(31));
    }

    #[test]
    #[should_panic(expected = "incompatible grids")]
    fn mixing_geometries_panics() {
        let a = Region::empty(small3(CurveKind::Hilbert));
        let b = Region::empty(small3(CurveKind::Morton));
        let _ = a.intersect(&b);
    }

    #[test]
    #[should_panic(expected = "exceeds grid cell count")]
    fn out_of_grid_id_panics() {
        let _ = Region::from_ids(geom_2d(), vec![16]);
    }

    #[test]
    fn to_curve_preserves_voxels() {
        let g = small3(CurveKind::Hilbert);
        let ball = Sphere::new(Vec3::splat(3.5), 2.0);
        let r = Region::rasterize_solid(g, &ball);
        let z = r.to_curve(CurveKind::Morton);
        assert_eq!(z.geometry().kind(), CurveKind::Morton);
        assert_eq!(z.voxel_count(), r.voxel_count());
        let mut a: Vec<(u32, u32, u32)> = r.iter_voxels3().collect();
        let mut b: Vec<(u32, u32, u32)> = z.iter_voxels3().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // converting back is the identity
        assert_eq!(z.to_curve(CurveKind::Hilbert), r);
    }

    /// Oracle-checked algebra: compare against a bitset model on an 8x8x8
    /// grid with arbitrary voxel sets.
    fn arb_region(g: GridGeometry) -> impl Strategy<Value = Region> {
        proptest::collection::vec(0u64..512, 0..200).prop_map(move |ids| Region::from_ids(g, ids))
    }

    fn to_bits(r: &Region) -> Vec<bool> {
        let mut bits = vec![false; 512];
        for id in r.iter_ids() {
            bits[id as usize] = true;
        }
        bits
    }

    proptest! {
        #[test]
        fn algebra_matches_bitset_oracle(
            a in arb_region(small3(CurveKind::Hilbert)),
            b in arb_region(small3(CurveKind::Hilbert)),
        ) {
            let (ba, bb) = (to_bits(&a), to_bits(&b));
            let and: Vec<bool> = ba.iter().zip(&bb).map(|(x, y)| *x && *y).collect();
            let or: Vec<bool> = ba.iter().zip(&bb).map(|(x, y)| *x || *y).collect();
            let sub: Vec<bool> = ba.iter().zip(&bb).map(|(x, y)| *x && !*y).collect();
            prop_assert_eq!(to_bits(&a.intersect(&b)), and);
            prop_assert_eq!(to_bits(&a.union(&b)), or);
            prop_assert_eq!(to_bits(&a.difference(&b)), sub);
            let not_a: Vec<bool> = ba.iter().map(|x| !*x).collect();
            prop_assert_eq!(to_bits(&a.complement()), not_a);
            // containment oracle
            let a_contains_b = bb.iter().zip(&ba).all(|(y, x)| !*y || *x);
            prop_assert_eq!(a.contains_region(&b), a_contains_b);
        }

        #[test]
        fn algebra_laws(
            a in arb_region(small3(CurveKind::Hilbert)),
            b in arb_region(small3(CurveKind::Hilbert)),
            c in arb_region(small3(CurveKind::Hilbert)),
        ) {
            // commutativity
            prop_assert_eq!(a.intersect(&b), b.intersect(&a));
            prop_assert_eq!(a.union(&b), b.union(&a));
            // associativity
            prop_assert_eq!(a.intersect(&b).intersect(&c), a.intersect(&b.intersect(&c)));
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
            // De Morgan
            prop_assert_eq!(
                a.union(&b).complement(),
                a.complement().intersect(&b.complement())
            );
            // idempotence and absorption
            prop_assert_eq!(a.intersect(&a), a.clone());
            prop_assert_eq!(a.union(&a), a.clone());
            prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
            // difference via complement
            prop_assert_eq!(a.difference(&b), a.intersect(&b.complement()));
            // intersect result is contained in both
            let i = a.intersect(&b);
            prop_assert!(a.contains_region(&i) && b.contains_region(&i));
        }

        #[test]
        fn run_invariants_hold_after_ops(
            a in arb_region(small3(CurveKind::Hilbert)),
            b in arb_region(small3(CurveKind::Hilbert)),
        ) {
            for r in [a.intersect(&b), a.union(&b), a.difference(&b), a.complement()] {
                for w in r.runs().windows(2) {
                    prop_assert!(w[0].end + 1 < w[1].start, "runs not canonical: {:?}", r.runs());
                }
            }
        }
    }
}
