//! Compressed-domain REGION kernels: stream-merge *compressed*
//! operands without full decompression.
//!
//! The run-native kernels in [`crate::kernel`] merge decoded `&[Run]`
//! slices.  These variants merge [`RunCursor`] streams instead — the
//! cursors decode one run at a time straight off the compact payloads
//! ([`qbism_coding::runcode`], [`qbism_coding::k3tree`]) and gallop via
//! skip blocks or subtree pruning, so an intersect touches only the
//! codewords near overlaps.  This is the Brisaboa et al. move (compact
//! *queryable* representations) applied to QBISM's h-run REGIONs.
//!
//! Every function emits a canonical run list identical to what the
//! uncompressed kernel would produce on the decoded operands; the
//! `compressed` integration suite pins that equivalence property-wise.
//!
//! Seek-clipping note: after `seek(t)` a cursor may report its current
//! run with the start clipped upward (never past `t`).  Every merge
//! below only consumes ids `>= t` after seeking `t`, so clipped and
//! true runs are indistinguishable here.

use crate::encode::RegionEncodeError;
use crate::run::Run;
use qbism_coding::RunCursor;
use qbism_sfc::Curve;

type Result<T> = std::result::Result<T, RegionEncodeError>;

/// Streaming cursor over an in-memory sorted run slice — the adapter
/// that lets one compressed and one already-decoded operand merge
/// through the same kernels (box masks, cached REGIONs).
#[derive(Debug, Clone)]
pub struct RunsCursor<'a> {
    runs: &'a [Run],
    pos: usize,
    skips: u64,
}

impl<'a> RunsCursor<'a> {
    /// Wraps a canonical (sorted, disjoint, non-adjacent) run slice.
    pub fn new(runs: &'a [Run]) -> Self {
        RunsCursor { runs, pos: 0, skips: 0 }
    }
}

impl RunCursor for RunsCursor<'_> {
    fn peek(&self) -> Option<(u64, u64)> {
        self.runs.get(self.pos).map(|r| (r.start, r.end))
    }

    fn advance(&mut self) -> qbism_coding::Result<()> {
        if self.pos < self.runs.len() {
            self.pos += 1;
        }
        Ok(())
    }

    fn seek(&mut self, target: u64) -> qbism_coding::Result<()> {
        let ahead = self.runs[self.pos..].partition_point(|r| r.end < target);
        if ahead > 1 {
            self.skips += (ahead - 1) as u64;
        }
        self.pos += ahead;
        Ok(())
    }

    fn skips(&self) -> u64 {
        self.skips
    }
}

/// Appends `(start, end)`, coalescing with the previous run when they
/// touch or overlap, so outputs stay canonical.
fn push(out: &mut Vec<Run>, start: u64, end: u64) {
    if let Some(last) = out.last_mut() {
        if start <= last.end.saturating_add(1) {
            if end > last.end {
                last.end = end;
            }
            return;
        }
    }
    out.push(Run::new(start, end));
}

/// Intersection of two compressed streams.  Disjoint stretches are
/// galloped over with `seek`, so neither payload is fully decoded.
pub fn intersect_stream(a: &mut impl RunCursor, b: &mut impl RunCursor) -> Result<Vec<Run>> {
    let mut out = Vec::new();
    while let (Some((a_start, a_end)), Some((b_start, b_end))) = (a.peek(), b.peek()) {
        let lo = a_start.max(b_start);
        let hi = a_end.min(b_end);
        if lo <= hi {
            push(&mut out, lo, hi);
        }
        if a_end <= b_end {
            if a_end < b_start {
                a.seek(b_start)?;
            } else {
                a.advance()?;
            }
        } else if b_end < a_start {
            b.seek(a_start)?;
        } else {
            b.advance()?;
        }
    }
    Ok(out)
}

/// Union of two compressed streams (no seeks — every run of both
/// operands contributes to the output).
pub fn union_stream(a: &mut impl RunCursor, b: &mut impl RunCursor) -> Result<Vec<Run>> {
    let mut out = Vec::new();
    loop {
        match (a.peek(), b.peek()) {
            (None, None) => break,
            (Some((s, e)), None) => {
                push(&mut out, s, e);
                a.advance()?;
            }
            (None, Some((s, e))) => {
                push(&mut out, s, e);
                b.advance()?;
            }
            (Some((a_start, a_end)), Some((b_start, b_end))) => {
                if a_start <= b_start {
                    push(&mut out, a_start, a_end);
                    a.advance()?;
                } else {
                    push(&mut out, b_start, b_end);
                    b.advance()?;
                }
            }
        }
    }
    Ok(out)
}

/// `a \ b` over compressed streams; the subtrahend gallops to each
/// minuend run, so a sparse `a` touches only matching parts of `b`.
pub fn difference_stream(a: &mut impl RunCursor, b: &mut impl RunCursor) -> Result<Vec<Run>> {
    let mut out = Vec::new();
    'minuend: while let Some((a_start, a_end)) = a.peek() {
        let mut cur = a_start;
        b.seek(cur)?;
        loop {
            match b.peek() {
                Some((b_start, b_end)) if b_start <= a_end => {
                    if b_start > cur {
                        push(&mut out, cur, b_start - 1);
                    }
                    if b_end >= a_end {
                        // This b-run may also cover the next a-run:
                        // leave it current.
                        a.advance()?;
                        continue 'minuend;
                    }
                    cur = cur.max(b_end + 1);
                    b.advance()?;
                }
                _ => {
                    push(&mut out, cur, a_end);
                    a.advance()?;
                    continue 'minuend;
                }
            }
        }
    }
    Ok(out)
}

/// k-way intersection over compressed streams — the multi-study fold of
/// `multiStudyBandRegion`, galloping every operand to the running
/// maximum start.
pub fn intersect_k_stream(cursors: &mut [&mut dyn RunCursor]) -> Result<Vec<Run>> {
    if cursors.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    'merge: loop {
        let mut lo = 0u64;
        let mut hi = u64::MAX;
        for c in cursors.iter() {
            let Some((start, end)) = c.peek() else { break 'merge };
            lo = lo.max(start);
            hi = hi.min(end);
        }
        if lo <= hi {
            push(&mut out, lo, hi);
            for c in cursors.iter_mut() {
                if let Some((_, end)) = c.peek() {
                    if end == hi {
                        c.advance()?;
                    }
                }
            }
        } else {
            for c in cursors.iter_mut() {
                if let Some((_, end)) = c.peek() {
                    if end < lo {
                        c.seek(lo)?;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Restricts a compressed stream to an axis-aligned box on a 3-D grid —
/// the `boxRegion`-style window — by intersecting with the box's run
/// mask.
pub fn restrict_box_stream(
    cursor: &mut impl RunCursor,
    curve: &Curve,
    min: [u32; 3],
    max: [u32; 3],
) -> Result<Vec<Run>> {
    let mask = crate::kernel::box_runs3(curve, min, max);
    intersect_stream(cursor, &mut RunsCursor::new(&mask))
}

/// Restricts a compressed stream to one contiguous id band
/// `[lo, hi]` — a single `seek` then a clipped scan; everything before
/// the band is galloped over.
pub fn restrict_range_stream(cursor: &mut impl RunCursor, lo: u64, hi: u64) -> Result<Vec<Run>> {
    let mut out = Vec::new();
    if lo > hi {
        return Ok(out);
    }
    cursor.seek(lo)?;
    while let Some((start, end)) = cursor.peek() {
        if start > hi {
            break;
        }
        push(&mut out, start.max(lo), end.min(hi));
        if end > hi {
            break;
        }
        cursor.advance()?;
    }
    Ok(out)
}
