//! Octant and oblong-octant decompositions.
//!
//! "An **octant** is a cube of maximal size that is the result of the
//! recursive decomposition of space, and entirely inside some REGION …
//! an **oblong octant** (or z-element) of rank r is the complete set of
//! 2^r voxels that have the same prefix in their z-ids … For a regular
//! (cubic) octant in n-d, r must be a multiple of n." (Section 4)
//!
//! A REGION is classically encoded as the list of z-values of its
//! octants; the paper's improvement is to use runs instead.  Both octant
//! flavours are implemented here so the Section 4.2 count comparison and
//! the Table 4 octant row can be reproduced.

use crate::region::Region;
use crate::run::Run;

/// Which decomposition to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OctantKind {
    /// Regular octants: rank is a multiple of the grid dimension, so each
    /// block is a cube (`2^(r/n)` voxels per side).
    Cubic,
    /// Oblong octants (z-elements): any rank, each block is an aligned
    /// dyadic interval of curve ids.
    Oblong,
}

/// One octant: the aligned dyadic block `[id, id + 2^rank - 1]`.
///
/// `id` is the smallest curve id in the block and is always a multiple of
/// `2^rank` — the pair is the paper's `<z-id, rank>` z-value (or
/// `<h-id, rank>` under the Hilbert curve).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant {
    /// Smallest curve id of the block.
    pub id: u64,
    /// log2 of the block's voxel count.
    pub rank: u32,
}

impl Octant {
    /// Creates an octant.
    ///
    /// # Panics
    /// Panics if `id` is not aligned to `2^rank`.
    pub fn new(id: u64, rank: u32) -> Self {
        assert!(rank < 64, "octant rank {rank} out of range");
        assert!(id.is_multiple_of(1u64 << rank), "octant id {id} not aligned to rank {rank}");
        Octant { id, rank }
    }

    /// Number of voxels in the block.
    pub fn len(&self) -> u64 {
        1u64 << self.rank
    }

    /// Octants are never empty; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Last id in the block (inclusive).
    pub fn end(&self) -> u64 {
        self.id + self.len() - 1
    }

    /// The block as a [`Run`].
    pub fn as_run(&self) -> Run {
        Run::new(self.id, self.end())
    }
}

impl Region {
    /// Decomposes the region into octants of the requested kind, in curve
    /// order.  The result is the canonical minimal dyadic cover of each
    /// run: greedy largest-aligned-block, which coincides with recursive
    /// space subdivision.
    pub fn octants(&self, kind: OctantKind) -> Vec<Octant> {
        let dims = self.geometry().dims();
        let mut out = Vec::new();
        for r in self.runs() {
            decompose_run(*r, dims, kind, &mut out);
        }
        out
    }

    /// Number of octants of the given kind (Section 4.2's counted
    /// quantity, without materializing when you only need the count).
    pub fn octant_count(&self, kind: OctantKind) -> usize {
        let dims = self.geometry().dims();
        let mut count = 0usize;
        for r in self.runs() {
            count += count_run_octants(*r, dims, kind);
        }
        count
    }
}

/// Greedy canonical decomposition of one run into aligned blocks.
fn decompose_run(run: Run, dims: u32, kind: OctantKind, out: &mut Vec<Octant>) {
    let mut s = run.start;
    let end = run.end;
    while s <= end {
        let oct = Octant::new(s, next_rank(s, end, dims, kind));
        let step = 1u64 << oct.rank;
        out.push(oct);
        s += step;
    }
}

fn count_run_octants(run: Run, dims: u32, kind: OctantKind) -> usize {
    let mut s = run.start;
    let end = run.end;
    let mut count = 0usize;
    while s <= end {
        let rank = next_rank(s, end, dims, kind);
        count += 1;
        s += 1u64 << rank;
    }
    count
}

/// Largest admissible rank for a block starting at `s` within `[s, end]`.
fn next_rank(s: u64, end: u64, dims: u32, kind: OctantKind) -> u32 {
    let align = if s == 0 { 63 } else { s.trailing_zeros() };
    let remaining = end - s + 1;
    let fit = 63 - remaining.leading_zeros(); // floor(log2(remaining))
    let mut rank = align.min(fit);
    if kind == OctantKind::Cubic {
        rank -= rank % dims;
    }
    rank
}

/// Reassembles a region from octants (any order, may overlap).
///
/// # Panics
/// Panics if any block exceeds the grid.
pub fn octants_to_runs(geom: crate::GridGeometry, octants: &[Octant]) -> Region {
    let runs: Vec<Run> = octants.iter().map(Octant::as_run).collect();
    Region::from_runs(geom, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridGeometry;
    use proptest::prelude::*;
    use qbism_sfc::CurveKind;

    fn geom_2d(kind: CurveKind) -> GridGeometry {
        GridGeometry::new(kind, 2, 2)
    }

    /// Figure 3's shaded region on the Z curve.
    fn paper_region_z() -> Region {
        Region::from_ids(geom_2d(CurveKind::Morton), vec![1, 4, 5, 6, 7, 12, 13])
    }

    #[test]
    fn table1_z_octants() {
        // TABLE 1 row "octants": <0001,0> <0100,2> <1100,0> <1101,0>
        let octs = paper_region_z().octants(OctantKind::Cubic);
        assert_eq!(
            octs,
            vec![
                Octant::new(0b0001, 0),
                Octant::new(0b0100, 2),
                Octant::new(0b1100, 0),
                Octant::new(0b1101, 0),
            ]
        );
    }

    #[test]
    fn table1_z_oblong_octants() {
        // TABLE 1 row "oblong octants": <0001,0> <0100,2> <1100,1>
        let octs = paper_region_z().octants(OctantKind::Oblong);
        assert_eq!(
            octs,
            vec![Octant::new(0b0001, 0), Octant::new(0b0100, 2), Octant::new(0b1100, 1),]
        );
    }

    #[test]
    fn table2_hilbert_octants() {
        // TABLE 2: octants <0011,0> <0100,2> <1000,0> <1001,0>;
        //          oblong  <0011,0> <0100,2> <1000,1>;
        //          runs    <3,9>.
        let h = paper_region_z().to_curve(CurveKind::Hilbert);
        assert_eq!(h.runs(), &[Run::new(3, 9)]);
        assert_eq!(
            h.octants(OctantKind::Cubic),
            vec![
                Octant::new(0b0011, 0),
                Octant::new(0b0100, 2),
                Octant::new(0b1000, 0),
                Octant::new(0b1001, 0),
            ]
        );
        assert_eq!(
            h.octants(OctantKind::Oblong),
            vec![Octant::new(0b0011, 0), Octant::new(0b0100, 2), Octant::new(0b1000, 1),]
        );
    }

    #[test]
    fn octant_accessors() {
        let o = Octant::new(8, 3);
        assert_eq!(o.len(), 8);
        assert_eq!(o.end(), 15);
        assert_eq!(o.as_run(), Run::new(8, 15));
        assert!(!o.is_empty());
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_octant_panics() {
        let _ = Octant::new(9, 3);
    }

    #[test]
    fn count_never_less_than_runs() {
        // "the number of runs never exceeds the number of octants"
        let r = paper_region_z();
        assert!(r.octant_count(OctantKind::Oblong) >= r.run_count());
        assert!(r.octant_count(OctantKind::Cubic) >= r.octant_count(OctantKind::Oblong));
    }

    #[test]
    fn full_grid_is_one_octant() {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 3);
        let full = Region::full(g);
        assert_eq!(full.octants(OctantKind::Cubic), vec![Octant::new(0, 9)]);
        assert_eq!(full.octants(OctantKind::Oblong), vec![Octant::new(0, 9)]);
    }

    #[test]
    fn octants_to_runs_roundtrip_paper_region() {
        let r = paper_region_z();
        for kind in [OctantKind::Cubic, OctantKind::Oblong] {
            let octs = r.octants(kind);
            let back = octants_to_runs(r.geometry(), &octs);
            assert_eq!(back, r);
        }
    }

    #[test]
    fn octant_count_matches_materialized_len() {
        let g = GridGeometry::new(CurveKind::Hilbert, 3, 4);
        let r = Region::from_ids(g, (0..4096).filter(|i| i % 7 != 0).collect());
        for kind in [OctantKind::Cubic, OctantKind::Oblong] {
            assert_eq!(r.octant_count(kind), r.octants(kind).len());
        }
    }

    proptest! {
        #[test]
        fn decomposition_partitions_region(ids in proptest::collection::vec(0u64..4096, 1..300)) {
            let g = GridGeometry::new(CurveKind::Morton, 3, 4);
            let r = Region::from_ids(g, ids);
            for kind in [OctantKind::Cubic, OctantKind::Oblong] {
                let octs = r.octants(kind);
                // aligned, ordered, disjoint
                for o in &octs {
                    prop_assert_eq!(o.id % o.len(), 0);
                    if kind == OctantKind::Cubic {
                        prop_assert_eq!(o.rank % 3, 0);
                    }
                }
                for w in octs.windows(2) {
                    prop_assert!(w[0].end() < w[1].id);
                }
                // exact cover
                let back = octants_to_runs(g, &octs);
                prop_assert_eq!(&back, &r);
                // count relations from the paper
                prop_assert!(octs.len() >= r.run_count());
            }
            prop_assert!(r.octant_count(OctantKind::Cubic) >= r.octant_count(OctantKind::Oblong));
        }

        #[test]
        fn blocks_are_maximal(ids in proptest::collection::vec(0u64..1024, 1..100)) {
            // No two consecutive oblong octants of equal rank may be
            // mergeable into a single aligned block (that would contradict
            // canonical minimality).
            let g = GridGeometry::new(CurveKind::Morton, 2, 5);
            let r = Region::from_ids(g, ids);
            let octs = r.octants(OctantKind::Oblong);
            for w in octs.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a.rank == b.rank && b.id == a.id + a.len() {
                    // merging is only legal when the union is aligned
                    prop_assert!(a.id % (a.len() * 2) != 0,
                        "octants {a:?} {b:?} should have been merged");
                }
            }
        }
    }
}
