//! N-way spatial intersection.
//!
//! Table 4's multi-study queries "require the database to compute an
//! n-way spatial intersection" — e.g. the REGION where all 5 PET studies
//! have intensities in a band.  A fold of pairwise intersections is
//! correct but scans intermediate results repeatedly; the k-way
//! simultaneous merge below scans each input exactly once, the run
//! analogue of the multi-way spatial join.

use crate::kernel;
use crate::region::Region;
use crate::run::Run;

/// Intersects any number of regions in a single simultaneous merge scan.
///
/// Returns `None` for an empty input (there is no universe to default
/// to).  All regions must share a [`crate::GridGeometry`].
///
/// The heavy lifting is [`kernel::intersect_k`]: a k-way merge that
/// gallops over disjoint spans and emits the canonical result directly —
/// no intermediate region per fold step, no id vectors.
///
/// # Panics
/// Panics if the regions' geometries differ.
pub fn intersect_all(regions: &[&Region]) -> Option<Region> {
    let first = regions.first()?;
    for r in &regions[1..] {
        assert_eq!(first.geometry(), r.geometry(), "n-way intersection across incompatible grids");
    }
    if regions.len() == 1 {
        return Some((*first).clone());
    }
    let lists: Vec<&[Run]> = regions.iter().map(|r| r.runs()).collect();
    Some(Region::from_runs(first.geometry(), kernel::intersect_k(&lists)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GridGeometry;
    use proptest::prelude::*;
    use qbism_sfc::CurveKind;

    fn g() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 3)
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(intersect_all(&[]).is_none());
    }

    #[test]
    fn single_region_is_identity() {
        let r = Region::from_ids(g(), vec![1, 2, 3, 99]);
        assert_eq!(intersect_all(&[&r]).unwrap(), r);
    }

    #[test]
    fn any_empty_region_empties_result() {
        let a = Region::full(g());
        let e = Region::empty(g());
        assert!(intersect_all(&[&a, &e, &a]).unwrap().is_empty());
    }

    #[test]
    fn three_way_example() {
        let a = Region::from_ids(g(), vec![1, 2, 3, 4, 5, 10, 11, 12]);
        let b = Region::from_ids(g(), vec![2, 3, 4, 11, 12, 13]);
        let c = Region::from_ids(g(), vec![0, 3, 4, 5, 12, 30]);
        let i = intersect_all(&[&a, &b, &c]).unwrap();
        assert_eq!(i, Region::from_ids(g(), vec![3, 4, 12]));
    }

    #[test]
    fn disjoint_regions_intersect_empty() {
        let a = Region::from_ids(g(), vec![1, 2, 3]);
        let b = Region::from_ids(g(), vec![4, 5, 6]);
        assert!(intersect_all(&[&a, &b]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "incompatible grids")]
    fn mixed_geometry_panics() {
        let a = Region::empty(g());
        let b = Region::empty(GridGeometry::new(CurveKind::Morton, 3, 3));
        let _ = intersect_all(&[&a, &b]);
    }

    proptest! {
        #[test]
        fn kway_matches_pairwise_fold(
            sets in proptest::collection::vec(
                proptest::collection::vec(0u64..512, 0..150), 2..6),
        ) {
            let regions: Vec<Region> =
                sets.into_iter().map(|ids| Region::from_ids(g(), ids)).collect();
            let refs: Vec<&Region> = regions.iter().collect();
            let kway = intersect_all(&refs).unwrap();
            let fold = regions[1..]
                .iter()
                .fold(regions[0].clone(), |acc, r| acc.intersect(r));
            prop_assert_eq!(kway, fold);
        }
    }
}
