//! Runs: maximal intervals of consecutive curve ids.
//!
//! "A z-delta is a maximal set of voxels with consecutive z-ids all either
//! entirely inside or outside a REGION.  When these voxels are inside, we
//! call it a z-run; when outside, a z-gap." (Section 4)

/// An inclusive interval `[start, end]` of curve ids, all inside a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Run {
    /// First id in the run.
    pub start: u64,
    /// Last id in the run (inclusive; `end >= start`).
    pub end: u64,
}

impl Run {
    /// Creates a run.
    ///
    /// # Panics
    /// Panics if `end < start`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "run end {end} precedes start {start}");
        Run { start, end }
    }

    /// Number of voxels in the run.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Runs are never empty; provided for API symmetry with collections.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `id` falls inside the run.
    pub fn contains(&self, id: u64) -> bool {
        (self.start..=self.end).contains(&id)
    }

    /// Intersection of two runs, if any.
    pub fn intersect(&self, other: &Run) -> Option<Run> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start <= end).then_some(Run { start, end })
    }
}

/// Normalizes an arbitrary list of runs into the canonical form: sorted,
/// disjoint, maximal (adjacent or overlapping runs merged).
pub(crate) fn normalize(mut runs: Vec<Run>) -> Vec<Run> {
    if runs.is_empty() {
        return runs;
    }
    runs.sort_unstable_by_key(|r| r.start);
    let mut out: Vec<Run> = Vec::with_capacity(runs.len());
    for r in runs {
        match out.last_mut() {
            // Merge overlap and adjacency (end + 1 == start).
            Some(last) if r.start <= last.end.saturating_add(1) => {
                last.end = last.end.max(r.end);
            }
            _ => out.push(r),
        }
    }
    out
}

/// Builds canonical runs from an arbitrary (unsorted, possibly duplicated)
/// list of ids.
pub(crate) fn runs_from_ids(mut ids: Vec<u64>) -> Vec<Run> {
    ids.sort_unstable();
    ids.dedup();
    let mut out: Vec<Run> = Vec::new();
    for id in ids {
        match out.last_mut() {
            Some(last) if id == last.end + 1 => last.end = id,
            Some(last) if id <= last.end => unreachable!("dedup removed duplicates"),
            _ => out.push(Run::new(id, id)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn run_basics() {
        let r = Run::new(4, 7);
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.contains(4) && r.contains(7));
        assert!(!r.contains(3) && !r.contains(8));
        assert_eq!(Run::new(5, 5).len(), 1);
    }

    #[test]
    #[should_panic(expected = "precedes start")]
    fn inverted_run_panics() {
        let _ = Run::new(7, 4);
    }

    #[test]
    fn run_intersection() {
        let a = Run::new(2, 9);
        assert_eq!(a.intersect(&Run::new(5, 12)), Some(Run::new(5, 9)));
        assert_eq!(a.intersect(&Run::new(9, 9)), Some(Run::new(9, 9)));
        assert_eq!(a.intersect(&Run::new(10, 12)), None);
    }

    #[test]
    fn normalize_merges_overlap_and_adjacency() {
        let runs = vec![Run::new(10, 12), Run::new(1, 3), Run::new(4, 6), Run::new(11, 15)];
        assert_eq!(normalize(runs), vec![Run::new(1, 6), Run::new(10, 15)]);
    }

    #[test]
    fn normalize_handles_empty_and_singleton() {
        assert_eq!(normalize(vec![]), vec![]);
        assert_eq!(normalize(vec![Run::new(5, 5)]), vec![Run::new(5, 5)]);
    }

    #[test]
    fn runs_from_ids_matches_paper_table1() {
        // z-ids {1, 4..7, 12, 13} -> runs <1,1> <4,7> <12,13>
        let runs = runs_from_ids(vec![13, 1, 5, 4, 7, 6, 12]);
        assert_eq!(runs, vec![Run::new(1, 1), Run::new(4, 7), Run::new(12, 13)]);
    }

    #[test]
    fn runs_from_ids_dedups() {
        let runs = runs_from_ids(vec![3, 3, 3, 4, 4]);
        assert_eq!(runs, vec![Run::new(3, 4)]);
    }

    proptest! {
        #[test]
        fn normalized_runs_are_canonical(ids in proptest::collection::vec(0u64..500, 0..300)) {
            let runs = runs_from_ids(ids.clone());
            // sorted, disjoint, non-adjacent
            for w in runs.windows(2) {
                prop_assert!(w[0].end + 1 < w[1].start);
            }
            // cover exactly the id set
            let mut expect: Vec<u64> = ids;
            expect.sort_unstable();
            expect.dedup();
            let got: Vec<u64> = runs.iter().flat_map(|r| r.start..=r.end).collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn normalize_is_idempotent(spans in proptest::collection::vec((0u64..1000, 0u64..20), 0..100)) {
            let runs: Vec<Run> = spans.into_iter().map(|(s, l)| Run::new(s, s + l)).collect();
            let once = normalize(runs);
            let twice = normalize(once.clone());
            prop_assert_eq!(once, twice);
        }
    }
}
