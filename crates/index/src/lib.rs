//! Indexes for QBISM's stated future directions.
//!
//! Section 7 lists two index-shaped future directions:
//!
//! 1. *"Spatial indexing and query optimization techniques for
//!    efficiently locating spatial objects in large populations of
//!    studies"* — [`RTree`], a bulk-loaded (Sort-Tile-Recursive) R-tree
//!    over 3-D bounding boxes, in the spirit of the R*-tree the paper
//!    cites \[3\];
//! 2. *"the study of multi-dimensional indexing methods … to enable
//!    similarity searching"* over image feature vectors — [`KdTree`], a
//!    k-d tree with exact k-nearest-neighbour search.
//!
//! Both are plain in-memory data structures; `qbism::server` builds them
//! from catalog contents (structure bounds, per-study feature vectors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kdtree;
mod rtree;

pub use kdtree::KdTree;
pub use rtree::{Aabb, RTree};
