//! A bulk-loaded R-tree over 3-D axis-aligned boxes.
//!
//! Built once from a known population (the catalog's structure REGIONs,
//! or activation regions across many studies) with the classic
//! Sort-Tile-Recursive packing, then queried for box overlap and point
//! containment.  Static bulk loading matches QBISM's workload: the atlas
//! changes rarely, queries are constant.

use qbism_geometry::Vec3;

/// A closed axis-aligned box in continuous grid coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box.
    ///
    /// # Panics
    /// Panics if any min component exceeds the matching max.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "degenerate Aabb: {min:?}..{max:?}"
        );
        Aabb { min, max }
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// Whether two boxes overlap (closed intervals).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
            && self.min.z <= other.max.z
            && other.min.z <= self.max.z
    }

    /// Whether the box contains a point.
    pub fn contains(&self, p: Vec3) -> bool {
        (self.min.x..=self.max.x).contains(&p.x)
            && (self.min.y..=self.max.y).contains(&p.y)
            && (self.min.z..=self.max.z).contains(&p.z)
    }

    /// Box centre.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }
}

enum Node<T> {
    Leaf(Vec<(Aabb, T)>),
    Inner(Vec<(Aabb, Node<T>)>),
}

/// An immutable R-tree mapping boxes to payloads.
pub struct RTree<T> {
    root: Option<(Aabb, Node<T>)>,
    len: usize,
    fanout: usize,
}

impl<T> std::fmt::Debug for RTree<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree").field("len", &self.len).field("fanout", &self.fanout).finish()
    }
}

const DEFAULT_FANOUT: usize = 8;

impl<T> RTree<T> {
    /// Bulk-loads a tree with Sort-Tile-Recursive packing.
    pub fn bulk_load(items: Vec<(Aabb, T)>) -> Self {
        Self::bulk_load_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Bulk-loads with an explicit node fanout (≥ 2).
    pub fn bulk_load_with_fanout(items: Vec<(Aabb, T)>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let len = items.len();
        if items.is_empty() {
            return RTree { root: None, len: 0, fanout };
        }
        // STR: sort by x-centre, slice, sort slices by y, tile, sort by z.
        let mut items = items;
        items.sort_by(|a, b| cmp_f(a.0.center().x, b.0.center().x));
        let leaf_count = len.div_ceil(fanout);
        let slabs = (leaf_count as f64).cbrt().ceil() as usize; // slabs along x
        let per_slab = len.div_ceil(slabs.max(1));
        let mut leaves: Vec<(Aabb, Node<T>)> = Vec::with_capacity(leaf_count);
        for slab in chunked(items, per_slab) {
            let mut slab = slab;
            slab.sort_by(|a, b| cmp_f(a.0.center().y, b.0.center().y));
            let rows = ((slab.len().div_ceil(fanout)) as f64).sqrt().ceil() as usize;
            let per_row = slab.len().div_ceil(rows.max(1));
            for row in chunked(slab, per_row) {
                let mut row = row;
                row.sort_by(|a, b| cmp_f(a.0.center().z, b.0.center().z));
                for leaf_items in chunked(row, fanout) {
                    let bbox = bbox_of(leaf_items.iter().map(|(b, _)| *b));
                    leaves.push((bbox, Node::Leaf(leaf_items)));
                }
            }
        }
        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<(Aabb, Node<T>)> = Vec::with_capacity(level.len().div_ceil(fanout));
            for group in chunked(level, fanout) {
                let bbox = bbox_of(group.iter().map(|(b, _)| *b));
                next.push((bbox, Node::Inner(group)));
            }
            level = next;
        }
        let root = level.into_iter().next();
        RTree { root, len, fanout }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// All payloads whose boxes overlap `query`, in arbitrary order.
    pub fn search_box<'a>(&'a self, query: &Aabb) -> Vec<&'a T> {
        let mut out = Vec::new();
        if let Some((bbox, node)) = &self.root {
            if bbox.intersects(query) {
                search_node(node, query, &mut out);
            }
        }
        out
    }

    /// All payloads whose boxes contain `point`.
    pub fn search_point(&self, point: Vec3) -> Vec<&T> {
        self.search_box(&Aabb::new(point, point))
    }
}

fn search_node<'a, T>(node: &'a Node<T>, query: &Aabb, out: &mut Vec<&'a T>) {
    match node {
        Node::Leaf(items) => {
            for (bbox, item) in items {
                if bbox.intersects(query) {
                    out.push(item);
                }
            }
        }
        Node::Inner(children) => {
            for (bbox, child) in children {
                if bbox.intersects(query) {
                    search_node(child, query, out);
                }
            }
        }
    }
}

fn bbox_of<I: IntoIterator<Item = Aabb>>(boxes: I) -> Aabb {
    let mut it = boxes.into_iter();
    let first = match it.next() {
        Some(b) => b,
        None => unreachable!("bbox_of is only called on non-empty groups"),
    };
    it.fold(first, |acc, b| acc.union(&b))
}

fn cmp_f(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

fn chunked<T>(items: Vec<T>, size: usize) -> Vec<Vec<T>> {
    let size = size.max(1);
    let mut out = Vec::with_capacity(items.len().div_ceil(size));
    let mut cur = Vec::with_capacity(size);
    for item in items {
        cur.push(item);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn boxes(n: usize, seed: u64) -> Vec<(Aabb, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let min = Vec3::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                );
                let ext = Vec3::new(
                    rng.gen_range(0.5..10.0),
                    rng.gen_range(0.5..10.0),
                    rng.gen_range(0.5..10.0),
                );
                (Aabb::new(min, min + ext), i)
            })
            .collect()
    }

    #[test]
    fn aabb_operations() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let b = Aabb::new(Vec3::splat(1.0), Vec3::splat(3.0));
        let c = Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.union(&c), Aabb::new(Vec3::ZERO, Vec3::splat(6.0)));
        assert!(a.contains(Vec3::splat(1.5)));
        assert!(!a.contains(Vec3::splat(2.5)));
        assert_eq!(b.center(), Vec3::splat(2.0));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn inverted_aabb_panics() {
        let _ = Aabb::new(Vec3::splat(2.0), Vec3::ZERO);
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        assert!(t.search_point(Vec3::ZERO).is_empty());
    }

    #[test]
    fn search_matches_linear_scan() {
        let items = boxes(300, 7);
        let tree = RTree::bulk_load(items.clone());
        assert_eq!(tree.len(), 300);
        let query = Aabb::new(Vec3::splat(20.0), Vec3::splat(45.0));
        let mut got: Vec<usize> = tree.search_box(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> =
            items.iter().filter(|(b, _)| b.intersects(&query)).map(|(_, i)| *i).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "query should hit something in this seed");
    }

    #[test]
    fn point_queries() {
        let items = vec![
            (Aabb::new(Vec3::ZERO, Vec3::splat(10.0)), "big"),
            (Aabb::new(Vec3::splat(2.0), Vec3::splat(4.0)), "inner"),
            (Aabb::new(Vec3::splat(20.0), Vec3::splat(30.0)), "far"),
        ];
        let tree = RTree::bulk_load(items);
        let mut hits: Vec<&str> =
            tree.search_point(Vec3::splat(3.0)).into_iter().copied().collect();
        hits.sort_unstable();
        assert_eq!(hits, vec!["big", "inner"]);
        assert!(tree.search_point(Vec3::splat(15.0)).is_empty());
    }

    proptest! {
        #[test]
        fn tree_equals_linear_scan(seed in 0u64..500, n in 1usize..200,
                                   q in proptest::array::uniform3(0.0f64..90.0)) {
            let items = boxes(n, seed);
            let tree = RTree::bulk_load(items.clone());
            let query = Aabb::new(Vec3::from(q), Vec3::from(q) + Vec3::splat(12.0));
            let mut got: Vec<usize> = tree.search_box(&query).into_iter().copied().collect();
            got.sort_unstable();
            let mut want: Vec<usize> = items
                .iter()
                .filter(|(b, _)| b.intersects(&query))
                .map(|(_, i)| *i)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn all_fanouts_agree(n in 1usize..120, fanout in 2usize..12) {
            let items = boxes(n, 3);
            let tree = RTree::bulk_load_with_fanout(items.clone(), fanout);
            let query = Aabb::new(Vec3::splat(10.0), Vec3::splat(60.0));
            let mut got: Vec<usize> = tree.search_box(&query).into_iter().copied().collect();
            got.sort_unstable();
            let reference = RTree::bulk_load(items);
            let mut want: Vec<usize> = reference.search_box(&query).into_iter().copied().collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
