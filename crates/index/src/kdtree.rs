//! A k-d tree for exact nearest-neighbour search over feature vectors.
//!
//! The paper's third future direction: "the determination of image
//! feature vectors and the study of multi-dimensional indexing methods
//! for them to enable similarity searching in queries like 'find all the
//! PET studies of 40-year old females with intensities inside the
//! cerebellum similar to Ms. Smith's latest PET study'."

/// An immutable k-d tree over fixed-dimension `f64` vectors with
/// payloads, supporting exact k-nearest-neighbour queries (Euclidean).
pub struct KdTree<T> {
    dims: usize,
    nodes: Vec<KdNode<T>>,
    root: Option<usize>,
}

struct KdNode<T> {
    point: Vec<f64>,
    payload: T,
    axis: usize,
    left: Option<usize>,
    right: Option<usize>,
}

impl<T> std::fmt::Debug for KdTree<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KdTree").field("dims", &self.dims).field("len", &self.nodes.len()).finish()
    }
}

impl<T> KdTree<T> {
    /// Builds a balanced tree by recursive median split.
    ///
    /// # Panics
    /// Panics if `dims == 0`, any point has the wrong arity, or any
    /// coordinate is non-finite.
    pub fn build(dims: usize, items: Vec<(Vec<f64>, T)>) -> Self {
        assert!(dims > 0, "kd-tree dimension must be positive");
        for (p, _) in &items {
            assert_eq!(p.len(), dims, "point arity {} != dims {dims}", p.len());
            assert!(p.iter().all(|c| c.is_finite()), "non-finite coordinate in {p:?}");
        }
        let mut tree = KdTree { dims, nodes: Vec::with_capacity(items.len()), root: None };
        let mut items = items;
        tree.root = tree.build_rec(&mut items, 0);
        tree
    }

    fn build_rec(&mut self, items: &mut Vec<(Vec<f64>, T)>, depth: usize) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let axis = depth % self.dims;
        items.sort_by(|a, b| a.0[axis].total_cmp(&b.0[axis]));
        let mid = items.len() / 2;
        let mut right_items: Vec<(Vec<f64>, T)> = items.split_off(mid + 1);
        let (point, payload) = match items.pop() {
            Some(found) => found,
            None => unreachable!("mid < len, so the left half is non-empty"),
        };
        let left = self.build_rec(items, depth + 1);
        let right = self.build_rec(&mut right_items, depth + 1);
        let idx = self.nodes.len();
        self.nodes.push(KdNode { point, payload, axis, left, right });
        Some(idx)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The `k` nearest neighbours of `query`, closest first, as
    /// `(distance, payload)`.
    ///
    /// # Panics
    /// Panics on wrong query arity.
    pub fn nearest<'a>(&'a self, query: &[f64], k: usize) -> Vec<(f64, &'a T)> {
        assert_eq!(query.len(), self.dims, "query arity {} != dims {}", query.len(), self.dims);
        if k == 0 {
            return Vec::new();
        }
        // Max-heap of current best (distance, node index).
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        if let Some(root) = self.root {
            self.nearest_rec(root, query, k, &mut best);
        }
        best.sort_by(|a, b| a.0.total_cmp(&b.0));
        best.into_iter().map(|(d, i)| (d, &self.nodes[i].payload)).collect()
    }

    fn nearest_rec(&self, idx: usize, query: &[f64], k: usize, best: &mut Vec<(f64, usize)>) {
        let node = &self.nodes[idx];
        let dist = euclid(&node.point, query);
        if best.len() < k {
            best.push((dist, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0));
        } else if best.last().is_some_and(|worst| dist < worst.0) {
            best.pop();
            best.push((dist, idx));
            best.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        let diff = query[node.axis] - node.point[node.axis];
        let (near, far) =
            if diff <= 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if let Some(n) = near {
            self.nearest_rec(n, query, k, best);
        }
        // Prune the far side unless the splitting plane is closer than
        // the worst current candidate (or we still lack k candidates).
        let worst = best.last().map_or(f64::INFINITY, |w| w.0);
        if best.len() < k || diff.abs() < worst {
            if let Some(f) = far {
                self.nearest_rec(f, query, k, best);
            }
        }
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn points(n: usize, dims: usize, seed: u64) -> Vec<(Vec<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|i| ((0..dims).map(|_| rng.gen_range(-10.0..10.0)).collect(), i)).collect()
    }

    fn brute_force(items: &[(Vec<f64>, usize)], q: &[f64], k: usize) -> Vec<usize> {
        let mut d: Vec<(f64, usize)> = items.iter().map(|(p, i)| (euclid(p, q), *i)).collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        d.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn exact_match_is_nearest() {
        let items = points(100, 3, 1);
        let probe = items[42].0.clone();
        let tree = KdTree::build(3, items);
        let got = tree.nearest(&probe, 1);
        assert_eq!(*got[0].1, 42);
        assert!(got[0].0 < 1e-12);
    }

    #[test]
    fn empty_and_k_zero() {
        let tree: KdTree<u32> = KdTree::build(2, vec![]);
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0, 0.0], 3).is_empty());
        let tree = KdTree::build(2, vec![(vec![1.0, 1.0], 7u32)]);
        assert!(tree.nearest(&[0.0, 0.0], 0).is_empty());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn k_larger_than_population() {
        let items = points(5, 2, 3);
        let tree = KdTree::build(2, items);
        let got = tree.nearest(&[0.0, 0.0], 10);
        assert_eq!(got.len(), 5, "returns everything");
        // sorted ascending
        for w in got.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let tree = KdTree::build(3, vec![(vec![1.0, 2.0, 3.0], 0u8)]);
        let _ = tree.nearest(&[1.0, 2.0], 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_coordinates_rejected() {
        let _ = KdTree::build(2, vec![(vec![f64::NAN, 0.0], 0u8)]);
    }

    proptest! {
        #[test]
        fn knn_matches_brute_force(seed in 0u64..200, n in 1usize..150, k in 1usize..8,
                                   q in proptest::collection::vec(-10.0f64..10.0, 4)) {
            let items = points(n, 4, seed);
            let tree = KdTree::build(4, items.clone());
            let got: Vec<usize> = tree.nearest(&q, k).into_iter().map(|(_, i)| *i).collect();
            let want = brute_force(&items, &q, k.min(n));
            // Distances can tie; compare by distance sequence.
            let got_d: Vec<f64> = got.iter().map(|&i| euclid(&items[i].0, &q)).collect();
            let want_d: Vec<f64> = want.iter().map(|&i| euclid(&items[i].0, &q)).collect();
            prop_assert_eq!(got_d.len(), want_d.len());
            for (g, w) in got_d.iter().zip(&want_d) {
                prop_assert!((g - w).abs() < 1e-9, "distance mismatch {g} vs {w}");
            }
        }
    }
}
