//! The Z curve (Morton order, bit shuffling).
//!
//! The z-id of a cell interleaves the bits of its coordinates, most
//! significant axis first: in 2-D, `z-id = x_{b-1} y_{b-1} ... x_0 y_0`.
//! This matches Figure 2 of the paper, where the cell at `x=01, y=00` has
//! z-id `0010` = 2.

use crate::curve::{check_coords, check_index};
use crate::SpaceFillingCurve;

/// Morton (Z) curve over a `dims`-dimensional grid of `2^bits` per axis.
#[derive(Debug, Clone)]
pub struct MortonCurve {
    dims: u32,
    bits: u32,
}

impl MortonCurve {
    /// Creates a Morton curve.  See [`crate::validate_geometry`] for limits.
    pub fn new(dims: u32, bits: u32) -> Self {
        crate::validate_geometry(dims, bits);
        MortonCurve { dims, bits }
    }
}

/// Spreads the low 21 bits of `v` so each lands 3 positions apart
/// (`abc` -> `a00b00c`), using the classic parallel-prefix magic masks.
#[inline]
fn spread3(v: u32) -> u64 {
    let mut x = u64::from(v) & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread3`]: gathers every third bit into the low 21 bits.
#[inline]
fn gather3(v: u64) -> u32 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Spreads the low 31 bits of `v` so each lands 2 positions apart.
#[inline]
fn spread2(v: u32) -> u64 {
    let mut x = u64::from(v) & 0x7fff_ffff;
    x = (x | (x << 16)) & 0x0000ffff0000ffff;
    x = (x | (x << 8)) & 0x00ff00ff00ff00ff;
    x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0f;
    x = (x | (x << 2)) & 0x3333333333333333;
    x = (x | (x << 1)) & 0x5555555555555555;
    x
}

/// Inverse of [`spread2`].
#[inline]
fn gather2(v: u64) -> u32 {
    let mut x = v & 0x5555555555555555;
    x = (x | (x >> 1)) & 0x3333333333333333;
    x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0f;
    x = (x | (x >> 4)) & 0x00ff00ff00ff00ff;
    x = (x | (x >> 8)) & 0x0000ffff0000ffff;
    x = (x | (x >> 16)) & 0x7fff_ffff;
    x as u32
}

impl SpaceFillingCurve for MortonCurve {
    fn dims(&self) -> u32 {
        self.dims
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u64 {
        check_coords(self.dims, self.bits, coords);
        match self.dims {
            // Axis 0 most significant within each bit group.
            2 => (spread2(coords[0]) << 1) | spread2(coords[1]),
            3 => (spread3(coords[0]) << 2) | (spread3(coords[1]) << 1) | spread3(coords[2]),
            _ => {
                let n = self.dims;
                let mut out = 0u64;
                for level in (0..self.bits).rev() {
                    for (axis, &c) in coords.iter().enumerate() {
                        let bit = u64::from((c >> level) & 1);
                        let pos = level * n + (n - 1 - axis as u32);
                        out |= bit << pos;
                    }
                }
                out
            }
        }
    }

    fn coords_of(&self, index: u64, coords: &mut [u32]) {
        check_index(self.dims, self.bits, index);
        assert_eq!(
            coords.len(),
            self.dims as usize,
            "coordinate arity {} does not match curve dimension {}",
            coords.len(),
            self.dims
        );
        match self.dims {
            2 => {
                coords[0] = gather2(index >> 1);
                coords[1] = gather2(index);
            }
            3 => {
                coords[0] = gather3(index >> 2);
                coords[1] = gather3(index >> 1);
                coords[2] = gather3(index);
            }
            _ => {
                let n = self.dims;
                coords.fill(0);
                for level in 0..self.bits {
                    for axis in 0..n {
                        let pos = level * n + (n - 1 - axis);
                        let bit = ((index >> pos) & 1) as u32;
                        coords[axis as usize] |= bit << level;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure2_example() {
        // Figure 2: the shaded 1x1 square at x=01, y=00 has z-id 0010 = 2,
        // and the upper-left quadrant (x in {0,1}, y in {2,3}) has z-value
        // prefix 01**, i.e. z-ids 4..=7.
        let z = MortonCurve::new(2, 2);
        assert_eq!(z.index_of(&[1, 0]), 2);
        let mut quad: Vec<u64> = Vec::new();
        for x in 0..2 {
            for y in 2..4 {
                quad.push(z.index_of(&[x, y]));
            }
        }
        quad.sort_unstable();
        assert_eq!(quad, vec![4, 5, 6, 7]);
    }

    #[test]
    fn bit_interleave_convention_3d() {
        let z = MortonCurve::new(3, 2);
        // index bits are x1 y1 z1 x0 y0 z0
        assert_eq!(z.index_of(&[1, 0, 0]), 0b000_100);
        assert_eq!(z.index_of(&[0, 1, 0]), 0b000_010);
        assert_eq!(z.index_of(&[0, 0, 1]), 0b000_001);
        assert_eq!(z.index_of(&[2, 0, 0]), 0b100_000);
        assert_eq!(z.index_of(&[3, 3, 3]), 0b111_111);
    }

    #[test]
    fn fast_paths_match_generic_path() {
        // The generic n-D path must agree with the magic-mask 2-D/3-D paths.
        let fast2 = MortonCurve::new(2, 5);
        let fast3 = MortonCurve::new(3, 4);
        let generic = |dims: u32, bits: u32, coords: &[u32]| -> u64 {
            let mut out = 0u64;
            for level in (0..bits).rev() {
                for (axis, &c) in coords.iter().enumerate() {
                    let bit = u64::from((c >> level) & 1);
                    out |= bit << (level * dims + (dims - 1 - axis as u32));
                }
            }
            out
        };
        for x in 0..32 {
            for y in (0..32).step_by(3) {
                assert_eq!(fast2.index_of(&[x, y]), generic(2, 5, &[x, y]));
            }
        }
        for x in (0..16).step_by(5) {
            for y in 0..16 {
                for zc in (0..16).step_by(3) {
                    assert_eq!(fast3.index_of(&[x, y, zc]), generic(3, 4, &[x, y, zc]));
                }
            }
        }
    }

    #[test]
    fn exhaustive_bijection_small_grids() {
        for (dims, bits) in [(1u32, 6u32), (2, 3), (3, 2), (4, 2)] {
            let z = MortonCurve::new(dims, bits);
            let mut seen = vec![false; z.cell_count() as usize];
            let mut coords = vec![0u32; dims as usize];
            for idx in 0..z.cell_count() {
                z.coords_of(idx, &mut coords);
                assert!(!seen[idx as usize]);
                seen[idx as usize] = true;
                assert_eq!(z.index_of(&coords), idx, "roundtrip failed at {idx}");
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    /// The generic n-D bit-loop — the oracle the magic-mask paths are
    /// property-tested against (identical to the `_ =>` arms above).
    fn generic_index_of(dims: u32, bits: u32, coords: &[u32]) -> u64 {
        let mut out = 0u64;
        for level in (0..bits).rev() {
            for (axis, &c) in coords.iter().enumerate() {
                let bit = u64::from((c >> level) & 1);
                out |= bit << (level * dims + (dims - 1 - axis as u32));
            }
        }
        out
    }

    fn generic_coords_of(dims: u32, bits: u32, index: u64, coords: &mut [u32]) {
        coords.fill(0);
        for level in 0..bits {
            for axis in 0..dims {
                let pos = level * dims + (dims - 1 - axis);
                let bit = ((index >> pos) & 1) as u32;
                coords[axis as usize] |= bit << level;
            }
        }
    }

    proptest! {
        #[test]
        fn magic_masks_match_bitwise_oracle_64_cubed(
            x in 0u32..64, y in 0u32..64, zc in 0u32..64,
        ) {
            // The 64³ PET grid: encode and decode must both agree with
            // the bit-loop oracle.
            let z = MortonCurve::new(3, 6);
            let idx = z.index_of(&[x, y, zc]);
            prop_assert_eq!(idx, generic_index_of(3, 6, &[x, y, zc]));
            let mut fast = [0u32; 3];
            let mut oracle = [0u32; 3];
            z.coords_of(idx, &mut fast);
            generic_coords_of(3, 6, idx, &mut oracle);
            prop_assert_eq!(fast, oracle);
        }

        #[test]
        fn magic_masks_match_bitwise_oracle_128_cubed(
            x in 0u32..128, y in 0u32..128, zc in 0u32..128,
        ) {
            // The 128³ MRI/atlas grid.
            let z = MortonCurve::new(3, 7);
            let idx = z.index_of(&[x, y, zc]);
            prop_assert_eq!(idx, generic_index_of(3, 7, &[x, y, zc]));
            let mut fast = [0u32; 3];
            let mut oracle = [0u32; 3];
            z.coords_of(idx, &mut fast);
            generic_coords_of(3, 7, idx, &mut oracle);
            prop_assert_eq!(fast, oracle);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_3d_21bits(x in 0u32..(1 << 21), y in 0u32..(1 << 21), zc in 0u32..(1 << 21)) {
            let z = MortonCurve::new(3, 21);
            let idx = z.index_of(&[x, y, zc]);
            let mut back = [0u32; 3];
            z.coords_of(idx, &mut back);
            prop_assert_eq!(back, [x, y, zc]);
        }

        #[test]
        fn roundtrip_2d_31bits(x in 0u32..(1 << 31), y in 0u32..(1 << 31)) {
            let z = MortonCurve::new(2, 31);
            let idx = z.index_of(&[x, y]);
            let mut back = [0u32; 2];
            z.coords_of(idx, &mut back);
            prop_assert_eq!(back, [x, y]);
        }

        #[test]
        fn monotone_in_each_octant(x in 0u32..64, y in 0u32..64, zc in 0u32..64) {
            // Any cell in the first half along axis 0 precedes any cell in
            // the second half only when their leading interleaved bits say
            // so; the cheap sanity check: increasing the most significant
            // coordinate bit increases the index.
            let z = MortonCurve::new(3, 7);
            let lo = z.index_of(&[x, y, zc]);
            let hi = z.index_of(&[x + 64, y, zc]);
            prop_assert!(hi > lo);
        }
    }
}
