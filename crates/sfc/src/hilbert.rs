//! The Hilbert curve.
//!
//! QBISM stores VOLUMEs in Hilbert order and encodes REGIONs as runs of
//! consecutive Hilbert ids, because among the known space-filling curves
//! the Hilbert curve has the best spatial clustering (Faloutsos & Roseman,
//! PODS 1989): neighbouring voxels tend to be near each other on the curve,
//! so compact regions decompose into few runs and few disk pages.
//!
//! The implementation uses the in-place "transpose" formulation of the
//! Butz algorithm (public-domain formulation by J. Skilling, *Programming
//! the Hilbert curve*, AIP Conf. Proc. 707, 2004), which converts between
//! grid coordinates and the bit-transposed Hilbert integer in
//! `O(dims * bits)` bit operations — the `O(n)` complexity the paper cites
//! for both curves.

use crate::curve::{check_coords, check_index};
use crate::SpaceFillingCurve;
use std::sync::OnceLock;

/// Hilbert curve over a `dims`-dimensional grid of `2^bits` per axis.
#[derive(Debug, Clone)]
pub struct HilbertCurve {
    dims: u32,
    bits: u32,
}

/// The 3D `index_of` fast path: a finite-state transducer over octants.
///
/// The Hilbert curve is self-similar, so the curve digit emitted for the
/// octant at each refinement level depends only on the suborientation
/// (state) reached through the coarser octants — a classic state-machine
/// formulation.  Rather than hardcoding the table (and risking a skew
/// against the Skilling bit-twiddling above), the table is *derived from
/// the bitwise implementation itself* at first use: states are
/// discovered by breadth-first search over octant prefixes, identified
/// by their one-level octant→digit map (orientations are cube
/// symmetries composed with Gray decode, and that composite is distinct
/// per orientation, so the one-level map is a complete fingerprint).
///
/// The payoff: `index_of` becomes `bits` table lookups instead of the
/// `O(dims · bits)` dependent bit-exchange chain — the hot path of
/// region construction and voxel extraction over 64³/128³ grids.
struct HilbertLut3 {
    start: u8,
    /// `digit[state][octant]` — curve digit emitted.
    digit: Vec<[u8; 8]>,
    /// `next[state][octant]` — successor state.
    next: Vec<[u8; 8]>,
    /// `octant[state][digit]` — inverse of `digit`'s permutation rows;
    /// drives the table-driven `coords_of` decode.
    octant: Vec<[u8; 8]>,
}

static LUT3: OnceLock<HilbertLut3> = OnceLock::new();

/// Resolution the transducer is learned at.  State discovery needs
/// prefixes one level short of the floor; 3D Hilbert closes at a
/// handful of states within a few levels, so 8 levels is generous.
const LUT3_LEARN_BITS: u32 = 8;

impl HilbertLut3 {
    fn get() -> &'static HilbertLut3 {
        LUT3.get_or_init(HilbertLut3::derive)
    }

    /// Learns the transducer from the bitwise implementation.
    fn derive() -> HilbertLut3 {
        let oracle = HilbertCurve { dims: 3, bits: LUT3_LEARN_BITS };
        // One-level octant→digit map of the subcube reached by `prefix`
        // (top-down octant path).  By self-similarity the digit at a
        // level is independent of the finer octants, so probing with
        // zero-filled suffixes is exact.
        let probe = |prefix: &[u8]| -> [u8; 8] {
            let mut map = [0u8; 8];
            for o in 0..8u8 {
                let mut coords = [0u32; 3];
                let mut level = LUT3_LEARN_BITS;
                for &oct in prefix.iter().chain(std::iter::once(&o)) {
                    level -= 1;
                    coords[0] |= u32::from((oct >> 2) & 1) << level;
                    coords[1] |= u32::from((oct >> 1) & 1) << level;
                    coords[2] |= u32::from(oct & 1) << level;
                }
                let mut buf = coords;
                oracle.axes_to_transpose(&mut buf);
                let index = oracle.pack(&buf);
                map[o as usize] = ((index >> (3 * level)) & 7) as u8;
            }
            map
        };
        let mut ids: std::collections::HashMap<[u8; 8], u8> = std::collections::HashMap::new();
        let mut digit: Vec<[u8; 8]> = Vec::new();
        let mut next: Vec<[u8; 8]> = Vec::new();
        let mut queue: std::collections::VecDeque<(u8, Vec<u8>)> =
            std::collections::VecDeque::new();
        let mut intern = |map: [u8; 8],
                          prefix: &[u8],
                          digit: &mut Vec<[u8; 8]>,
                          next: &mut Vec<[u8; 8]>,
                          queue: &mut std::collections::VecDeque<(u8, Vec<u8>)>|
         -> u8 {
            *ids.entry(map).or_insert_with(|| {
                let id = digit.len() as u8;
                digit.push(map);
                next.push([0u8; 8]);
                queue.push_back((id, prefix.to_vec()));
                id
            })
        };
        let start = intern(probe(&[]), &[], &mut digit, &mut next, &mut queue);
        while let Some((state, prefix)) = queue.pop_front() {
            assert!(
                prefix.len() + 2 <= LUT3_LEARN_BITS as usize,
                "Hilbert transducer did not close within {LUT3_LEARN_BITS} levels"
            );
            for o in 0..8u8 {
                let mut child_prefix = prefix.clone();
                child_prefix.push(o);
                let child =
                    intern(probe(&child_prefix), &child_prefix, &mut digit, &mut next, &mut queue);
                next[state as usize][o as usize] = child;
            }
        }
        // Each state's octant→digit map is a permutation of 0..8 (pinned
        // by tests), so inverting it gives the decode table for free.
        let octant = digit
            .iter()
            .map(|row| {
                let mut inv = [0u8; 8];
                for (oct, &d) in row.iter().enumerate() {
                    inv[d as usize] = oct as u8;
                }
                inv
            })
            .collect();
        HilbertLut3 { start, digit, next, octant }
    }

    /// Table-driven `index_of` for any `bits`: the transducer starts in
    /// the same orientation at every resolution (the curve refines from
    /// the top), so one table serves all grids.
    fn index_of(&self, bits: u32, coords: &[u32]) -> u64 {
        let mut state = self.start as usize;
        let mut index = 0u64;
        for level in (0..bits).rev() {
            let octant = (((coords[0] >> level) & 1) << 2
                | ((coords[1] >> level) & 1) << 1
                | (coords[2] >> level) & 1) as usize;
            index = (index << 3) | u64::from(self.digit[state][octant]);
            state = self.next[state][octant] as usize;
        }
        index
    }

    /// Table-driven `coords_of`: the exact inverse walk of
    /// [`HilbertLut3::index_of`] — extract the curve digit per level,
    /// invert it to the octant through `octant[state]`, set one
    /// coordinate bit per axis, and follow the same successor states.
    fn coords_of(&self, bits: u32, index: u64, coords: &mut [u32]) {
        let mut state = self.start as usize;
        coords.fill(0);
        for level in (0..bits).rev() {
            let digit = ((index >> (3 * level)) & 7) as usize;
            let oct = self.octant[state][digit];
            coords[0] |= u32::from((oct >> 2) & 1) << level;
            coords[1] |= u32::from((oct >> 1) & 1) << level;
            coords[2] |= u32::from(oct & 1) << level;
            state = self.next[state][oct as usize] as usize;
        }
    }
}

impl HilbertCurve {
    /// Creates a Hilbert curve.  See [`crate::validate_geometry`] for limits.
    pub fn new(dims: u32, bits: u32) -> Self {
        crate::validate_geometry(dims, bits);
        HilbertCurve { dims, bits }
    }

    /// Converts grid axes (in place) to the transposed Hilbert integer.
    fn axes_to_transpose(&self, x: &mut [u32]) {
        let n = x.len();
        let m = 1u32 << (self.bits - 1);
        // Inverse undo
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p; // invert
                } else {
                    let t = (x[0] ^ x[i]) & p; // exchange
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Converts a transposed Hilbert integer (in place) back to grid axes.
    fn transpose_to_axes(&self, x: &mut [u32]) {
        let n = x.len();
        let cap = 2u32 << (self.bits - 1);
        // Gray decode by H ^ (H/2)
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work
        let mut q = 2u32;
        while q != cap {
            let p = q - 1;
            for i in (0..n).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Packs a transposed Hilbert integer into a single `u64`.
    ///
    /// Bit `j` of transpose word `i` (axis `i`) contributes index bit
    /// `j * dims + (dims - 1 - i)`: within each group of `dims` index bits,
    /// axis 0 is most significant — the same convention as the Morton code.
    fn pack(&self, x: &[u32]) -> u64 {
        let n = self.dims;
        let mut out = 0u64;
        for level in (0..self.bits).rev() {
            for (axis, &word) in x.iter().enumerate() {
                let bit = u64::from((word >> level) & 1);
                out |= bit << (level * n + (n - 1 - axis as u32));
            }
        }
        out
    }

    /// The Skilling bit-exchange `index_of` (ground truth for the LUT
    /// fast path, and the general-dimension fallback).
    fn index_of_bitwise(&self, coords: &[u32]) -> u64 {
        let mut x: [u32; 8];
        let buf: &mut [u32] = if coords.len() <= 8 {
            x = [0u32; 8];
            x[..coords.len()].copy_from_slice(coords);
            &mut x[..coords.len()]
        } else {
            unreachable!("validate_geometry caps dims at 63")
        };
        self.axes_to_transpose(buf);
        self.pack(buf)
    }

    /// Inverse of [`HilbertCurve::pack`].
    fn unpack(&self, index: u64, x: &mut [u32]) {
        let n = self.dims;
        x.fill(0);
        for level in 0..self.bits {
            for axis in 0..n {
                let pos = level * n + (n - 1 - axis);
                let bit = ((index >> pos) & 1) as u32;
                x[axis as usize] |= bit << level;
            }
        }
    }
}

impl SpaceFillingCurve for HilbertCurve {
    fn dims(&self) -> u32 {
        self.dims
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u64 {
        check_coords(self.dims, self.bits, coords);
        if self.dims == 1 {
            return u64::from(coords[0]);
        }
        if self.dims == 3 {
            // Table-driven fast path for the 3D grids QBISM lives on.
            return HilbertLut3::get().index_of(self.bits, coords);
        }
        self.index_of_bitwise(coords)
    }

    fn coords_of(&self, index: u64, coords: &mut [u32]) {
        check_index(self.dims, self.bits, index);
        assert_eq!(
            coords.len(),
            self.dims as usize,
            "coordinate arity {} does not match curve dimension {}",
            coords.len(),
            self.dims
        );
        if self.dims == 1 {
            coords[0] = index as u32;
            return;
        }
        if self.dims == 3 {
            // Table-driven fast path, mirroring `index_of`: one digit
            // lookup per level instead of the unpack + bit-exchange chain.
            return HilbertLut3::get().coords_of(self.bits, index, coords);
        }
        self.unpack(index, coords);
        self.transpose_to_axes(coords);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The 4x4 Hilbert ordering used by the paper's Figure 3 (solid line):
    /// h-id 0 at the origin corner, the curve visiting the `y` half-plane
    /// boundary so the shaded region collapses to the single run <3,9>.
    ///
    /// With our axis convention (axis 0 = x most significant), the Skilling
    /// orientation visits (0,0),(0,1),(1,1),(1,0),(2,0),(3,0),... We verify
    /// the full first-quadrant order here and the paper's region in the
    /// region crate, where axis roles are documented.
    #[test]
    fn order2_2d_is_a_hamiltonian_unit_step_path() {
        let h = HilbertCurve::new(2, 2);
        let mut prev = h.coords_of_pair(0);
        for idx in 1..16 {
            let cur = h.coords_of_pair(idx);
            let dist = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
            assert_eq!(dist, 1, "steps {:?} -> {:?} not unit", prev, cur);
            prev = cur;
        }
    }

    impl HilbertCurve {
        fn coords_of_pair(&self, idx: u64) -> (u32, u32) {
            let mut c = [0u32; 2];
            self.coords_of(idx, &mut c);
            (c[0], c[1])
        }

        /// The Skilling unpack + bit-exchange decode — ground truth for
        /// the LUT `coords_of` fast path.
        fn coords_of_bitwise(&self, index: u64, coords: &mut [u32]) {
            self.unpack(index, coords);
            self.transpose_to_axes(coords);
        }
    }

    #[test]
    fn paper_table2_region_is_one_run() {
        // Figure 3's shaded region, expressed with the axis roles that
        // reproduce the paper's Table 2: the region occupies h-ids 3..=9.
        // Region cells (derived from the z-run encoding in Table 1 under
        // the Figure 2 bit-interleave convention z-id = a1 b1 a0 b0):
        //   z-ids {1, 4,5,6,7, 12, 13}
        //   = cells (a,b) in {(0,1)} u {0,1}x{2,3} u {(2,2),(2,3)}.
        let z = crate::MortonCurve::new(2, 2);
        let mut cells: Vec<(u32, u32)> = Vec::new();
        for zid in [1u64, 4, 5, 6, 7, 12, 13] {
            let mut c = [0u32; 2];
            z.coords_of(zid, &mut c);
            cells.push((c[0], c[1]));
        }
        // Map the same cells through the Hilbert curve.  The Skilling
        // orientation reproduces the paper's Figure 3 solid line directly
        // under our shared axis convention.
        let h = HilbertCurve::new(2, 2);
        let mut hids: Vec<u64> = cells.iter().map(|&(a, b)| h.index_of(&[a, b])).collect();
        hids.sort_unstable();
        assert_eq!(hids, vec![3, 4, 5, 6, 7, 8, 9], "region must be the single h-run <3,9>");
    }

    #[test]
    fn exhaustive_bijection_small_grids() {
        for (dims, bits) in [(1u32, 5u32), (2, 4), (3, 3), (4, 2), (5, 2)] {
            let h = HilbertCurve::new(dims, bits);
            let mut seen = vec![false; h.cell_count() as usize];
            let mut coords = vec![0u32; dims as usize];
            for idx in 0..h.cell_count() {
                h.coords_of(idx, &mut coords);
                assert!(!seen[idx as usize], "index {idx} maps to duplicate cell");
                seen[idx as usize] = true;
                assert_eq!(h.index_of(&coords), idx, "roundtrip failed at {idx}");
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn consecutive_indices_are_grid_neighbours_3d() {
        // The defining continuity property: cells with consecutive Hilbert
        // ids are face neighbours in the grid.
        let h = HilbertCurve::new(3, 3);
        let mut prev = [0u32; 3];
        let mut cur = [0u32; 3];
        h.coords_of(0, &mut prev);
        for idx in 1..h.cell_count() {
            h.coords_of(idx, &mut cur);
            let dist: u32 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            assert_eq!(dist, 1, "indices {} and {idx} not adjacent", idx - 1);
            prev = cur;
        }
    }

    #[test]
    fn clustering_beats_morton_on_boxes() {
        // The reason QBISM picks Hilbert: a compact box decomposes into
        // fewer runs of consecutive ids than under Morton order.  Count
        // runs for a 20x20x20 box in a 64^3 grid under both curves.
        let count_runs = |curve: &dyn SpaceFillingCurve| -> usize {
            let mut ids: Vec<u64> = Vec::new();
            for x in 10..30 {
                for y in 10..30 {
                    for z in 10..30 {
                        ids.push(curve.index_of(&[x, y, z]));
                    }
                }
            }
            ids.sort_unstable();
            1 + ids.windows(2).filter(|w| w[1] != w[0] + 1).count()
        };
        let h = HilbertCurve::new(3, 6);
        let z = crate::MortonCurve::new(3, 6);
        let hr = count_runs(&h);
        let zr = count_runs(&z);
        assert!(hr < zr, "expected fewer Hilbert runs than Z runs, got h={hr} z={zr}");
    }

    #[test]
    fn lut_learns_a_small_closed_state_machine() {
        let lut = HilbertLut3::get();
        assert!(lut.digit.len() >= 2, "3D Hilbert needs more than one orientation");
        assert!(lut.digit.len() <= 48, "states are cube symmetries, at most 48");
        for (row, digits) in lut.digit.iter().enumerate() {
            let mut seen = [false; 8];
            for &d in digits {
                seen[d as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "state {row} digit map is not a permutation");
        }
    }

    /// Not a correctness test: prints LUT vs bitwise timings over a full
    /// 128³ sweep.  Run with
    /// `cargo test -p qbism-sfc --release -- --ignored --nocapture lut_speed`.
    #[test]
    #[ignore = "timing report, run explicitly in release mode"]
    fn lut_speedup_report() {
        let h = HilbertCurve::new(3, 7);
        let mut acc = 0u64;
        acc ^= h.index_of(&[1, 2, 3]); // force LUT derivation outside timing
        let lut = std::time::Instant::now();
        for x in 0..128u32 {
            for y in 0..128 {
                for z in 0..128 {
                    acc ^= h.index_of(&[x, y, z]);
                }
            }
        }
        let lut = lut.elapsed();
        let bitwise = std::time::Instant::now();
        for x in 0..128u32 {
            for y in 0..128 {
                for z in 0..128 {
                    acc ^= h.index_of_bitwise(&[x, y, z]);
                }
            }
        }
        let bitwise = bitwise.elapsed();
        println!("128^3 index_of sweep: lut {lut:?}  bitwise {bitwise:?}  (acc {acc})");
    }

    #[test]
    fn lut_matches_bitwise_exhaustively_at_low_bits() {
        // Every cell of every grid up to 16³: the LUT path and the
        // Skilling bit-exchange path must agree index for index.
        for bits in 1..=4u32 {
            let h = HilbertCurve::new(3, bits);
            let side = 1u32 << bits;
            for x in 0..side {
                for y in 0..side {
                    for z in 0..side {
                        let c = [x, y, z];
                        assert_eq!(
                            HilbertLut3::get().index_of(bits, &c),
                            h.index_of_bitwise(&c),
                            "bits={bits} coords={c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lut_decode_matches_bitwise_exhaustively_at_low_bits() {
        // Every index of every grid up to 16³: the inverse-table decode
        // and the Skilling unpack + bit-exchange must agree.
        for bits in 1..=4u32 {
            let h = HilbertCurve::new(3, bits);
            let mut lut = [0u32; 3];
            let mut oracle = [0u32; 3];
            for idx in 0..h.cell_count() {
                HilbertLut3::get().coords_of(bits, idx, &mut lut);
                h.coords_of_bitwise(idx, &mut oracle);
                assert_eq!(lut, oracle, "bits={bits} index={idx}");
            }
        }
    }

    proptest! {
        #[test]
        fn lut_matches_bitwise_64_cubed(x in 0u32..64, y in 0u32..64, z in 0u32..64) {
            // The 64³ PET grid of the paper's experiments.
            let h = HilbertCurve::new(3, 6);
            prop_assert_eq!(h.index_of(&[x, y, z]), h.index_of_bitwise(&[x, y, z]));
        }

        #[test]
        fn lut_matches_bitwise_128_cubed(x in 0u32..128, y in 0u32..128, z in 0u32..128) {
            // The 128³ MRI/atlas grid.
            let h = HilbertCurve::new(3, 7);
            prop_assert_eq!(h.index_of(&[x, y, z]), h.index_of_bitwise(&[x, y, z]));
        }

        #[test]
        fn lut_decode_matches_bitwise_64_cubed(idx in 0u64..(1u64 << 18)) {
            let h = HilbertCurve::new(3, 6);
            let mut lut = [0u32; 3];
            let mut oracle = [0u32; 3];
            h.coords_of(idx, &mut lut);
            h.coords_of_bitwise(idx, &mut oracle);
            prop_assert_eq!(lut, oracle);
        }

        #[test]
        fn lut_decode_matches_bitwise_128_cubed(idx in 0u64..(1u64 << 21)) {
            let h = HilbertCurve::new(3, 7);
            let mut lut = [0u32; 3];
            let mut oracle = [0u32; 3];
            h.coords_of(idx, &mut lut);
            h.coords_of_bitwise(idx, &mut oracle);
            prop_assert_eq!(lut, oracle);
        }
    }

    proptest! {
        #[test]
        fn roundtrip_3d_7bits(x in 0u32..128, y in 0u32..128, z in 0u32..128) {
            // 128^3 is the atlas-space grid used throughout the paper.
            let h = HilbertCurve::new(3, 7);
            let idx = h.index_of(&[x, y, z]);
            let mut back = [0u32; 3];
            h.coords_of(idx, &mut back);
            prop_assert_eq!(back, [x, y, z]);
        }

        #[test]
        fn roundtrip_3d_9bits(x in 0u32..512, y in 0u32..512, z in 0u32..512) {
            // 512^3: the paper notes <z-id, rank> packs into 4 bytes at
            // this resolution; our indices must stay exact there too.
            let h = HilbertCurve::new(3, 9);
            let idx = h.index_of(&[x, y, z]);
            let mut back = [0u32; 3];
            h.coords_of(idx, &mut back);
            prop_assert_eq!(back, [x, y, z]);
        }

        #[test]
        fn roundtrip_4d(c in proptest::array::uniform4(0u32..32)) {
            // The paper claims the techniques extend to other
            // dimensionalities "in a straightforward manner".
            let h = HilbertCurve::new(4, 5);
            let idx = h.index_of(&c);
            let mut back = [0u32; 4];
            h.coords_of(idx, &mut back);
            prop_assert_eq!(back, c);
        }

        #[test]
        fn unit_step_property_random_pairs(idx in 0u64..((1u64 << 21) - 1)) {
            let h = HilbertCurve::new(3, 7);
            let mut a = [0u32; 3];
            let mut b = [0u32; 3];
            h.coords_of(idx, &mut a);
            h.coords_of(idx + 1, &mut b);
            let dist: u32 = a.iter().zip(&b).map(|(p, q)| p.abs_diff(*q)).sum();
            prop_assert_eq!(dist, 1);
        }
    }
}
