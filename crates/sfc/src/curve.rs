//! The [`SpaceFillingCurve`] trait and the [`CurveKind`] selector.

use crate::{HilbertCurve, MortonCurve, ScanlineCurve};

/// A bijection between the cells of a `2^bits`-per-axis grid and the
/// integers `0 .. 2^(dims*bits)`.
///
/// Implementations must be total bijections on the grid; this is checked by
/// property tests in each implementation module.
pub trait SpaceFillingCurve {
    /// Number of spatial dimensions of the grid.
    fn dims(&self) -> u32;

    /// Number of bits per axis; the grid is `2^bits` cells along each axis.
    fn bits(&self) -> u32;

    /// Maps grid coordinates to the curve index.
    ///
    /// # Panics
    /// Panics if `coords.len() != dims()` or any coordinate is out of range.
    fn index_of(&self, coords: &[u32]) -> u64;

    /// Maps a curve index back to grid coordinates, writing into `coords`.
    ///
    /// # Panics
    /// Panics if `coords.len() != dims()` or the index is out of range.
    fn coords_of(&self, index: u64, coords: &mut [u32]);

    /// Total number of cells in the grid (`2^(dims*bits)`).
    fn cell_count(&self) -> u64 {
        1u64 << (self.dims() * self.bits())
    }

    /// Side length of the grid (`2^bits`).
    fn side(&self) -> u32 {
        1u32 << self.bits()
    }

    /// Convenience wrapper for 3-D curves.
    ///
    /// # Panics
    /// Panics if the curve is not 3-dimensional.
    fn index_of3(&self, x: u32, y: u32, z: u32) -> u64 {
        assert_eq!(self.dims(), 3, "index_of3 requires a 3-D curve");
        self.index_of(&[x, y, z])
    }

    /// Convenience wrapper for 3-D curves.
    ///
    /// # Panics
    /// Panics if the curve is not 3-dimensional.
    fn coords_of3(&self, index: u64) -> (u32, u32, u32) {
        assert_eq!(self.dims(), 3, "coords_of3 requires a 3-D curve");
        let mut c = [0u32; 3];
        self.coords_of(index, &mut c);
        (c[0], c[1], c[2])
    }

    /// Convenience wrapper for 2-D curves.
    ///
    /// # Panics
    /// Panics if the curve is not 2-dimensional.
    fn index_of2(&self, x: u32, y: u32) -> u64 {
        assert_eq!(self.dims(), 2, "index_of2 requires a 2-D curve");
        self.index_of(&[x, y])
    }
}

/// Selector for the linear orders QBISM compares.
///
/// The paper evaluates Hilbert order against Z (Morton) order for both
/// REGION run counts (Section 4.2) and multi-study query time (Table 4);
/// scanline order is the layout a "flat file" system would use and serves
/// as the storage-layout baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CurveKind {
    /// The Hilbert curve: best spatial clustering, QBISM's choice.
    Hilbert,
    /// The Z curve (Morton key / bit shuffling / Peano as the paper calls
    /// its dotted-line example).
    Morton,
    /// Row-major scanline order (x fastest, axis 0 slowest).
    Scanline,
}

impl CurveKind {
    /// Instantiates the curve for a `dims`-dimensional grid with
    /// `2^bits` cells per axis.
    pub fn curve(self, dims: u32, bits: u32) -> Curve {
        crate::validate_geometry(dims, bits);
        match self {
            CurveKind::Hilbert => Curve::Hilbert(HilbertCurve::new(dims, bits)),
            CurveKind::Morton => Curve::Morton(MortonCurve::new(dims, bits)),
            CurveKind::Scanline => Curve::Scanline(ScanlineCurve::new(dims, bits)),
        }
    }

    /// All curve kinds, in the order the paper's tables list them.
    pub const ALL: [CurveKind; 3] = [CurveKind::Hilbert, CurveKind::Morton, CurveKind::Scanline];

    /// Whether the curve is a *hierarchical* (recursive, octree-aligned)
    /// order: every aligned id block `[q*2^(d*m), (q+1)*2^(d*m))` covers
    /// exactly one axis-aligned subcube of side `2^m`.
    ///
    /// Hilbert and Morton curves are built by recursive subdivision and
    /// have this property; scanline order does not (a row-major block is
    /// a slab, not a cube).  Run-native kernels use this to transcode and
    /// decompose whole blocks at a time instead of individual voxels.
    pub fn is_hierarchical(self) -> bool {
        match self {
            CurveKind::Hilbert | CurveKind::Morton => true,
            CurveKind::Scanline => false,
        }
    }

    /// Short lowercase name used in benchmark tables (`hilbert`, `z`,
    /// `scanline`), matching the paper's "h-" / "z-" prefixes.
    pub fn short_name(self) -> &'static str {
        match self {
            CurveKind::Hilbert => "hilbert",
            CurveKind::Morton => "z",
            CurveKind::Scanline => "scanline",
        }
    }
}

impl std::fmt::Display for CurveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A concrete curve instance (enum dispatch over the three implementations).
///
/// Enum dispatch keeps the hot `index_of` / `coords_of` paths free of
/// virtual calls while still letting callers pick the order at run time,
/// which the benchmark harness does constantly.
#[derive(Debug, Clone)]
pub enum Curve {
    /// Hilbert order.
    Hilbert(HilbertCurve),
    /// Z / Morton order.
    Morton(MortonCurve),
    /// Scanline order.
    Scanline(ScanlineCurve),
}

impl Curve {
    /// The [`CurveKind`] this instance implements.
    pub fn kind(&self) -> CurveKind {
        match self {
            Curve::Hilbert(_) => CurveKind::Hilbert,
            Curve::Morton(_) => CurveKind::Morton,
            Curve::Scanline(_) => CurveKind::Scanline,
        }
    }
}

impl SpaceFillingCurve for Curve {
    fn dims(&self) -> u32 {
        match self {
            Curve::Hilbert(c) => c.dims(),
            Curve::Morton(c) => c.dims(),
            Curve::Scanline(c) => c.dims(),
        }
    }

    fn bits(&self) -> u32 {
        match self {
            Curve::Hilbert(c) => c.bits(),
            Curve::Morton(c) => c.bits(),
            Curve::Scanline(c) => c.bits(),
        }
    }

    fn index_of(&self, coords: &[u32]) -> u64 {
        match self {
            Curve::Hilbert(c) => c.index_of(coords),
            Curve::Morton(c) => c.index_of(coords),
            Curve::Scanline(c) => c.index_of(coords),
        }
    }

    fn coords_of(&self, index: u64, coords: &mut [u32]) {
        match self {
            Curve::Hilbert(c) => c.coords_of(index, coords),
            Curve::Morton(c) => c.coords_of(index, coords),
            Curve::Scanline(c) => c.coords_of(index, coords),
        }
    }
}

pub(crate) fn check_coords(dims: u32, bits: u32, coords: &[u32]) {
    assert_eq!(
        coords.len(),
        dims as usize,
        "coordinate arity {} does not match curve dimension {dims}",
        coords.len()
    );
    let side = 1u32 << bits;
    for (axis, &c) in coords.iter().enumerate() {
        assert!(c < side, "coordinate {c} on axis {axis} out of range for grid side {side}");
    }
}

pub(crate) fn check_index(dims: u32, bits: u32, index: u64) {
    let cells = 1u64 << (dims * bits);
    assert!(index < cells, "curve index {index} out of range (grid has {cells} cells)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip_and_names() {
        for kind in CurveKind::ALL {
            let c = kind.curve(3, 4);
            assert_eq!(c.kind(), kind);
            assert_eq!(c.dims(), 3);
            assert_eq!(c.bits(), 4);
            assert_eq!(c.side(), 16);
            assert_eq!(c.cell_count(), 4096);
        }
        assert_eq!(CurveKind::Hilbert.to_string(), "hilbert");
        assert_eq!(CurveKind::Morton.to_string(), "z");
        assert_eq!(CurveKind::Scanline.to_string(), "scanline");
    }

    #[test]
    fn hierarchical_blocks_are_cubes() {
        // The property `is_hierarchical` advertises: every aligned id
        // block of size 2^(3m) covers exactly one axis-aligned cube of
        // side 2^m (checked exhaustively on a 16^3 grid at every level).
        for kind in CurveKind::ALL {
            let c = kind.curve(3, 4);
            let mut coords = [0u32; 3];
            let mut all_levels_cubic = true;
            for m in 1..=4u32 {
                let block = 1u64 << (3 * m);
                for q in 0..(c.cell_count() / block) {
                    let (mut lo, mut hi) = ([u32::MAX; 3], [0u32; 3]);
                    for id in q * block..(q + 1) * block {
                        c.coords_of(id, &mut coords);
                        for a in 0..3 {
                            lo[a] = lo[a].min(coords[a]);
                            hi[a] = hi[a].max(coords[a]);
                        }
                    }
                    let side = (1u32 << m) - 1;
                    if (0..3).any(|a| hi[a] - lo[a] != side || lo[a] % (side + 1) != 0) {
                        all_levels_cubic = false;
                    }
                }
            }
            assert_eq!(all_levels_cubic, kind.is_hierarchical(), "{kind}");
        }
    }

    #[test]
    fn dispatch_agrees_with_direct_implementations() {
        let direct = HilbertCurve::new(3, 5);
        let dyn_c = CurveKind::Hilbert.curve(3, 5);
        for idx in [0u64, 1, 77, 4095, 32767] {
            let mut a = [0u32; 3];
            let mut b = [0u32; 3];
            direct.coords_of(idx, &mut a);
            dyn_c.coords_of(idx, &mut b);
            assert_eq!(a, b);
            assert_eq!(direct.index_of(&a), dyn_c.index_of(&b));
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let c = CurveKind::Morton.curve(3, 4);
        let _ = c.index_of(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_coord_panics() {
        let c = CurveKind::Morton.curve(2, 2);
        let _ = c.index_of(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let c = CurveKind::Hilbert.curve(2, 2);
        let mut out = [0u32; 2];
        c.coords_of(16, &mut out);
    }
}
