//! Row-major scanline order.
//!
//! The paper stores *raw* (unwarped) studies "in scanline order in a long
//! field" and uses a hypothetical scanline-ordered "flat file" system as
//! the comparison point for query Q1.  Scanline order is also the baseline
//! for the volume-layout ablation benchmark: it clusters along one axis
//! only, so compact 3-D regions shatter into many short runs.

use crate::curve::{check_coords, check_index};
use crate::SpaceFillingCurve;

/// Scanline (row-major) order: the last axis varies fastest.
///
/// `index = ((c0 * side) + c1) * side + c2 ...` — i.e. axis 0 is the
/// slowest-varying (most significant) axis, matching the bit-significance
/// convention of the other curves in this crate.
#[derive(Debug, Clone)]
pub struct ScanlineCurve {
    dims: u32,
    bits: u32,
}

impl ScanlineCurve {
    /// Creates a scanline order.  See [`crate::validate_geometry`] for limits.
    pub fn new(dims: u32, bits: u32) -> Self {
        crate::validate_geometry(dims, bits);
        ScanlineCurve { dims, bits }
    }
}

impl SpaceFillingCurve for ScanlineCurve {
    fn dims(&self) -> u32 {
        self.dims
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn index_of(&self, coords: &[u32]) -> u64 {
        check_coords(self.dims, self.bits, coords);
        let mut out = 0u64;
        for &c in coords {
            out = (out << self.bits) | u64::from(c);
        }
        out
    }

    fn coords_of(&self, index: u64, coords: &mut [u32]) {
        check_index(self.dims, self.bits, index);
        assert_eq!(
            coords.len(),
            self.dims as usize,
            "coordinate arity {} does not match curve dimension {}",
            coords.len(),
            self.dims
        );
        let mask = (1u64 << self.bits) - 1;
        let mut rest = index;
        for c in coords.iter_mut().rev() {
            *c = (rest & mask) as u32;
            rest >>= self.bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn index_formula_3d() {
        let s = ScanlineCurve::new(3, 7);
        // x slowest, z fastest: classic slice/row/column layout.
        assert_eq!(s.index_of(&[0, 0, 1]), 1);
        assert_eq!(s.index_of(&[0, 1, 0]), 128);
        assert_eq!(s.index_of(&[1, 0, 0]), 128 * 128);
        assert_eq!(s.index_of(&[2, 3, 4]), 2 * 128 * 128 + 3 * 128 + 4);
    }

    #[test]
    fn exhaustive_bijection_small_grid() {
        let s = ScanlineCurve::new(3, 2);
        let mut seen = [false; 64];
        let mut c = [0u32; 3];
        for idx in 0..64 {
            s.coords_of(idx, &mut c);
            assert!(!seen[idx as usize]);
            seen[idx as usize] = true;
            assert_eq!(s.index_of(&c), idx);
        }
    }

    proptest! {
        #[test]
        fn roundtrip(x in 0u32..512, y in 0u32..512, z in 0u32..512) {
            let s = ScanlineCurve::new(3, 9);
            let mut back = [0u32; 3];
            s.coords_of(s.index_of(&[x, y, z]), &mut back);
            prop_assert_eq!(back, [x, y, z]);
        }

        #[test]
        fn order_is_lexicographic(a in proptest::array::uniform3(0u32..64),
                                  b in proptest::array::uniform3(0u32..64)) {
            let s = ScanlineCurve::new(3, 6);
            let (ia, ib) = (s.index_of(&a), s.index_of(&b));
            prop_assert_eq!(ia.cmp(&ib), a.cmp(&b));
        }
    }
}
