//! Space-filling curves for the QBISM reproduction.
//!
//! QBISM (Arya et al., ICDE 1994) stores both of its spatial data types on
//! linear orders derived from space-filling curves:
//!
//! * a `VOLUME` (a dense 3-D scalar field) is stored as a list of intensity
//!   values sorted in **Hilbert** order, so that spatially compact query
//!   regions touch few disk pages;
//! * a `REGION` (an arbitrary set of voxels) is stored as a list of **runs**
//!   of consecutive curve positions.
//!
//! This crate provides the curve machinery: the Morton (Z) curve, the
//! Hilbert curve, and a plain scanline order (used as a baseline), all in
//! arbitrary dimension with fast specializations for 2-D and 3-D.
//!
//! # Conventions
//!
//! * Grids are `2^bits` cells per axis; `bits * dims <= 63` so every curve
//!   index fits in a `u64`.
//! * Axis 0 is the most significant axis at each level of the recursive
//!   decomposition.  For the 2-D Morton curve on a 4x4 grid this yields
//!   `z-id = x1 y1 x0 y0`, exactly the convention used in Figure 2 of the
//!   paper (the cell at `x=01, y=00` has z-id `0010` = 2).
//! * The Hilbert curve uses the orientation that reproduces Table 2 of the
//!   paper on the Figure 3 example region (see `hilbert` module tests).
//!
//! # Example
//!
//! ```
//! use qbism_sfc::{CurveKind, SpaceFillingCurve};
//!
//! // A 128x128x128 grid, the atlas-space resolution used throughout QBISM.
//! let h = CurveKind::Hilbert.curve(3, 7);
//! let idx = h.index_of(&[10, 20, 30]);
//! let mut back = [0u32; 3];
//! h.coords_of(idx, &mut back);
//! assert_eq!(back, [10, 20, 30]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod curve;
mod hilbert;
mod morton;
mod scanline;

pub use curve::{Curve, CurveKind, SpaceFillingCurve};
pub use hilbert::HilbertCurve;
pub use morton::MortonCurve;
pub use scanline::ScanlineCurve;

/// Maximum supported total index width in bits (indices are `u64`).
pub const MAX_INDEX_BITS: u32 = 63;

/// Validates a `(dims, bits)` pair, panicking with a clear message when the
/// resulting index would not fit in a `u64` or the dimension is degenerate.
#[doc(hidden)]
pub fn validate_geometry(dims: u32, bits: u32) {
    assert!(dims >= 1, "curve dimension must be at least 1");
    assert!(bits >= 1, "curve must have at least 1 bit per axis");
    assert!(
        dims * bits <= MAX_INDEX_BITS,
        "curve geometry too large: {dims} dims x {bits} bits = {} index bits (max {MAX_INDEX_BITS})",
        dims * bits
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "curve geometry too large")]
    fn rejects_oversized_geometry() {
        let _ = CurveKind::Hilbert.curve(4, 16);
    }

    #[test]
    #[should_panic(expected = "dimension must be at least 1")]
    fn rejects_zero_dims() {
        let _ = CurveKind::Morton.curve(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least 1 bit")]
    fn rejects_zero_bits() {
        let _ = CurveKind::Morton.curve(3, 0);
    }
}
