//! Dependency-free sampling wall-clock profiler over the live span
//! stacks.
//!
//! Every thread that opens spans mirrors its open-span names into a
//! shared registry (one short uncontended lock per span open/close).
//! [`Profiler::start`] launches a sampler thread that periodically
//! snapshots every live stack and folds it into
//! `outer;inner;leaf count` lines — the folded-stack format flamegraph
//! tooling consumes directly.
//!
//! The profiler lives entirely in `qbism-obs`: deterministic crates
//! never read the wall clock themselves (the `qbism-lint`
//! `no-wall-clock` rule), they only open spans, and the sampling
//! happens here.  The same mirror registry feeds crash dumps
//! ([`live_stacks`]).

use qbism_check::sync::lock_or_recover;
use std::borrow::Cow;
use std::cell::OnceCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Duration;

/// Per-thread mirror of the open-span name stack, outermost first.
#[derive(Debug)]
struct StackMirror {
    names: Mutex<Vec<Cow<'static, str>>>,
}

static MIRRORS: Mutex<Vec<Weak<StackMirror>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: OnceCell<Arc<StackMirror>> = const { OnceCell::new() };
}

fn with_local(f: impl FnOnce(&StackMirror)) {
    LOCAL.with(|cell| {
        let mirror = cell.get_or_init(|| {
            let mirror = Arc::new(StackMirror { names: Mutex::new(Vec::new()) });
            lock_or_recover(&MIRRORS).push(Arc::downgrade(&mirror));
            mirror
        });
        f(mirror);
    });
}

/// Mirrors a span open on this thread (called by the tracer).
pub(crate) fn push_frame(name: Cow<'static, str>) {
    with_local(|m| lock_or_recover(&m.names).push(name));
}

/// Mirrors a span close on this thread (called by the tracer).
pub(crate) fn pop_frame() {
    with_local(|m| {
        lock_or_recover(&m.names).pop();
    });
}

/// Snapshot of every non-empty live span stack (outermost first), one
/// entry per thread.  This is what crash dumps embed.
pub fn live_stacks() -> Vec<Vec<String>> {
    let mirrors = lock_or_recover(&MIRRORS);
    let mut out = Vec::new();
    for weak in mirrors.iter() {
        if let Some(mirror) = weak.upgrade() {
            let names = lock_or_recover(&mirror.names);
            if !names.is_empty() {
                out.push(names.iter().map(|n| n.to_string()).collect());
            }
        }
    }
    out
}

/// Why a profiler could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// Another [`Profiler`] is already sampling; only one may run.
    AlreadyRunning,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::AlreadyRunning => write!(f, "a profiler is already running"),
        }
    }
}

impl std::error::Error for ProfileError {}

static ACTIVE: AtomicBool = AtomicBool::new(false);

/// A finished profiling session: folded stack counts.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Sampling interval used, in microseconds.
    pub interval_micros: u64,
    /// Total stack samples collected (one per non-idle thread per tick).
    pub samples: u64,
    counts: BTreeMap<String, u64>,
}

impl Profile {
    /// `stack count` pairs, keyed by `outer;inner;leaf` folded stacks.
    pub fn counts(&self) -> &BTreeMap<String, u64> {
        &self.counts
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// The folded-stack rendering (`outer;inner;leaf count`, one line
    /// per distinct stack) that flamegraph tooling consumes.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.counts {
            let _ = writeln!(out, "{stack} {count}");
        }
        out
    }
}

fn sample_into(profile: &mut Profile) {
    let live: Vec<Arc<StackMirror>> = {
        let mut mirrors = lock_or_recover(&MIRRORS);
        mirrors.retain(|w| w.strong_count() > 0);
        mirrors.iter().filter_map(Weak::upgrade).collect()
    };
    for mirror in live {
        let key = {
            let names = lock_or_recover(&mirror.names);
            if names.is_empty() {
                continue;
            }
            names.iter().map(Cow::as_ref).collect::<Vec<&str>>().join(";")
        };
        *profile.counts.entry(key).or_insert(0) += 1;
        profile.samples += 1;
    }
}

/// A running sampling session.  Obtain with [`Profiler::start`]; stop
/// with [`Profiler::stop`] (dropping also stops, discarding the
/// profile).
#[derive(Debug)]
pub struct Profiler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Profile>>,
}

impl Profiler {
    /// Starts the sampler thread at the given interval (clamped to
    /// ≥ 50 µs).  Only one profiler may run at a time.
    pub fn start(interval: Duration) -> Result<Profiler, ProfileError> {
        if ACTIVE.swap(true, Ordering::SeqCst) {
            return Err(ProfileError::AlreadyRunning);
        }
        let interval = interval.max(Duration::from_micros(50));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut profile = Profile {
                interval_micros: u64::try_from(interval.as_micros()).unwrap_or(u64::MAX),
                samples: 0,
                counts: BTreeMap::new(),
            };
            while !stop_flag.load(Ordering::Relaxed) {
                sample_into(&mut profile);
                std::thread::sleep(interval);
            }
            profile
        });
        Ok(Profiler { stop, handle: Some(handle) })
    }

    /// Stops the sampler and returns the folded profile.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::SeqCst);
        let profile = match self.handle.take().map(std::thread::JoinHandle::join) {
            Some(Ok(profile)) => profile,
            _ => Profile { interval_micros: 0, samples: 0, counts: BTreeMap::new() },
        };
        ACTIVE.store(false, Ordering::SeqCst);
        profile
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            let _ = handle.join();
            ACTIVE.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    #[test]
    fn sampler_folds_live_span_stacks() {
        let _g = crate::test_lock();
        let profiler = Profiler::start(Duration::from_micros(100)).expect("no other profiler");
        {
            let _root = trace::root("query.profiled");
            let _inner = trace::span("lfm.read");
            // Hold the stack open long enough for several ticks.
            std::thread::sleep(Duration::from_millis(30));
        }
        let profile = profiler.stop();
        assert!(!profile.is_empty(), "sampler saw the open stack");
        let folded = profile.to_folded();
        assert!(
            folded.contains("query.profiled;lfm.read"),
            "folded stack has the nesting: {folded}"
        );
        let line = folded.lines().find(|l| l.starts_with("query.profiled")).map(str::to_string);
        let count: u64 = line
            .as_deref()
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|c| c.parse().ok())
            .expect("folded line ends in a count");
        assert!(count >= 1);
    }

    #[test]
    fn only_one_profiler_at_a_time() {
        let _g = crate::test_lock();
        let first = Profiler::start(Duration::from_millis(1)).expect("first start");
        assert_eq!(
            Profiler::start(Duration::from_millis(1)).err(),
            Some(ProfileError::AlreadyRunning)
        );
        let _ = first.stop();
        // Stopping releases the slot.
        let again = Profiler::start(Duration::from_millis(1)).expect("slot released");
        drop(again);
    }

    #[test]
    fn live_stacks_reflect_open_spans() {
        let _g = crate::test_lock();
        {
            let _root = trace::root("query.live");
            let stacks = live_stacks();
            assert!(stacks.iter().any(|s| s == &vec!["query.live".to_string()]));
        }
        let after = live_stacks();
        assert!(!after.iter().any(|s| s.contains(&"query.live".to_string())));
    }
}
