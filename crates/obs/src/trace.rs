//! Lightweight nestable timed spans — the EXPLAIN ANALYZE backbone.
//!
//! A span is opened with [`root`] (starts a new tree when no span is
//! active) or [`span`] (attaches to the active span, or is discarded
//! when none is).  Guards record key-value fields and finish on drop;
//! finished root trees land in a bounded ring readable via
//! [`last_root`] / [`recent_roots`] and render with
//! [`SpanNode::render_tree`].

use qbism_check::sync::lock_or_recover;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// How many finished root spans the ring retains.
pub const RING_CAPACITY: usize = 32;

/// A recorded field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field (row counts, page counts, bytes).
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (seconds, ratios).
    F64(f64),
    /// Short string field (SQL text, operator detail).
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A finished span: name, wall time, fields and children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `exec.scan` or `lfm.read`.  Borrowed for the
    /// common literal names so opening a span does not allocate.
    pub name: Cow<'static, str>,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Key-value annotations recorded while the span was open.  Keys are
    /// static so recording a field costs one `Vec` push.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total spans in this tree, including self.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The value of field `key` on this span, if recorded.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Renders the tree with `├─`/`└─` rails, one span per line:
    /// name, padded duration, then `key=value` fields.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "", "");
        out
    }

    fn render_into(&self, out: &mut String, lead: &str, here: &str, below: &str) {
        let mut label = format!("{lead}{here}{}", self.name);
        if label.len() < 52 {
            label.push_str(&" ".repeat(52 - label.len()));
        }
        let _ = write!(out, "{label} {:>10}", format_duration(self.seconds));
        for (k, v) in &self.fields {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        let child_lead = format!("{lead}{below}");
        for (i, child) in self.children.iter().enumerate() {
            if i + 1 == self.children.len() {
                child.render_into(out, &child_lead, "└─ ", "   ");
            } else {
                child.render_into(out, &child_lead, "├─ ", "│  ");
            }
        }
    }
}

/// Human-scaled duration: `801.0µs`, `3.1ms`, `2.45s`.
fn format_duration(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// An open span frame on the thread-local stack.
struct Frame {
    name: Cow<'static, str>,
    started: Instant,
    fields: Vec<(&'static str, FieldValue)>,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

static RING: Mutex<VecDeque<SpanNode>> = Mutex::new(VecDeque::new());

/// Guard for an open span; finishes (and files the result) on drop.
///
/// Inert guards (tracing disabled, or [`span`] with no active parent)
/// record nothing and cost only the construction check.
#[must_use = "a span measures the scope of its guard"]
pub struct SpanGuard {
    live: bool,
    /// Root spans push the finished tree to the global ring.
    is_root: bool,
}

impl SpanGuard {
    fn open(name: Cow<'static, str>, is_root: bool) -> SpanGuard {
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                name,
                started: Instant::now(),
                fields: Vec::new(),
                children: Vec::new(),
            });
        });
        SpanGuard { live: true, is_root }
    }

    fn inert() -> SpanGuard {
        SpanGuard { live: false, is_root: false }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.live
    }

    /// Records an unsigned integer field on this span.
    pub fn record_u64(&self, key: &'static str, value: u64) {
        self.record(key, FieldValue::U64(value));
    }

    /// Records a signed integer field on this span.
    pub fn record_i64(&self, key: &'static str, value: i64) {
        self.record(key, FieldValue::I64(value));
    }

    /// Records a floating-point field on this span.
    pub fn record_f64(&self, key: &'static str, value: f64) {
        self.record(key, FieldValue::F64(value));
    }

    /// Records a string field on this span (truncated to 96 chars).
    pub fn record_str(&self, key: &'static str, value: &str) {
        let mut v = value.to_string();
        if v.len() > 96 {
            let mut cut = 93;
            while !v.is_char_boundary(cut) {
                cut -= 1;
            }
            v.truncate(cut);
            v.push_str("...");
        }
        self.record(key, FieldValue::Str(v));
    }

    fn record(&self, key: &'static str, value: FieldValue) {
        if !self.live {
            return;
        }
        STACK.with(|stack| {
            if let Some(frame) = stack.borrow_mut().last_mut() {
                frame.fields.push((key, value));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let node = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let node = SpanNode {
                name: frame.name,
                seconds: frame.started.elapsed().as_secs_f64(),
                fields: frame.fields,
                children: frame.children,
            };
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
                None
            } else {
                Some(node)
            }
        });
        if let Some(node) = node {
            if self.is_root {
                let mut ring = lock_or_recover(&RING);
                if ring.len() >= RING_CAPACITY {
                    ring.pop_front();
                }
                ring.push_back(node);
            }
        }
    }
}

/// Opens a span that starts a new tree when no span is active on this
/// thread (the finished tree is kept in the recent-roots ring), or
/// nests under the active span otherwise.
///
/// Accepts `&'static str` (no allocation) or an owned `String` for
/// dynamic names.
pub fn root(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    SpanGuard::open(name.into(), true)
}

/// Opens a child span under the currently active span.  When no span is
/// active (or tracing is disabled) the guard is inert — interior layers
/// like the LFM can instrument unconditionally without ever starting
/// trees of their own.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    let has_parent = STACK.with(|stack| !stack.borrow().is_empty());
    if !has_parent {
        return SpanGuard::inert();
    }
    SpanGuard::open(name.into(), false)
}

/// The most recently finished root span tree, if any.
pub fn last_root() -> Option<SpanNode> {
    lock_or_recover(&RING).back().cloned()
}

/// Every retained finished root (oldest first, at most [`RING_CAPACITY`]).
pub fn recent_roots() -> Vec<SpanNode> {
    lock_or_recover(&RING).iter().cloned().collect()
}

/// Empties the recent-roots ring (test isolation).
pub fn clear() {
    lock_or_recover(&RING).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_the_expected_tree() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.test_nesting");
            q.record_u64("study_id", 7);
            {
                let ex = span("exec.select");
                ex.record_u64("rows_out", 3);
                {
                    let _scan = span("exec.scan");
                }
                {
                    let udf = span("udf.extractvoxels");
                    let lfm = span("lfm.read");
                    lfm.record_u64("pages", 29);
                    drop(lfm);
                    drop(udf);
                }
            }
        }
        let tree = last_root().expect("root retained");
        assert_eq!(tree.name, "query.test_nesting");
        assert_eq!(tree.span_count(), 5);
        assert_eq!(tree.children.len(), 1);
        let ex = &tree.children[0];
        assert_eq!(ex.name, "exec.select");
        assert_eq!(ex.children.len(), 2);
        assert_eq!(ex.children[0].name, "exec.scan");
        assert_eq!(ex.children[1].name, "udf.extractvoxels");
        let lfm = tree.find("lfm.read").expect("lfm span nested");
        assert_eq!(lfm.field("pages"), Some(&FieldValue::U64(29)));
        // Parent durations cover child durations.
        assert!(tree.seconds >= ex.seconds);
    }

    #[test]
    fn orphan_child_spans_are_discarded() {
        let _g = crate::test_lock();
        clear();
        {
            let s = span("lfm.read");
            assert!(!s.is_recording());
            s.record_u64("pages", 1);
        }
        assert!(last_root().is_none());
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = crate::test_lock();
        clear();
        crate::set_enabled(false);
        {
            let r = root("query.disabled");
            assert!(!r.is_recording());
        }
        crate::set_enabled(true);
        assert!(last_root().is_none());
    }

    #[test]
    fn nested_root_behaves_as_child() {
        let _g = crate::test_lock();
        clear();
        {
            let _outer = root("query.outer");
            let _inner = root("db.execute"); // root() nests when a parent exists
        }
        let tree = last_root().expect("one tree");
        assert_eq!(tree.name, "query.outer");
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "db.execute");
        // Only one ring entry: the inner "root" did not start its own tree.
        assert_eq!(recent_roots().len(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = crate::test_lock();
        clear();
        for i in 0..(RING_CAPACITY + 5) {
            let r = root("query.ring");
            r.record_u64("i", i as u64);
        }
        let roots = recent_roots();
        assert_eq!(roots.len(), RING_CAPACITY);
        // Oldest entries were evicted.
        assert_eq!(roots[0].field("i"), Some(&FieldValue::U64(5)));
    }

    #[test]
    fn tree_rendering_has_rails_and_durations() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.render");
            q.record_str("sql", "select voxels from study");
            let _a = span("exec.scan");
            drop(_a);
            let _b = span("exec.project");
        }
        let text = last_root().unwrap().render_tree();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query.render"));
        assert!(lines[0].contains("sql=select voxels from study"));
        assert!(lines[1].contains("├─ exec.scan"));
        assert!(lines[2].contains("└─ exec.project"));
        for line in &lines {
            assert!(
                line.contains("µs") || line.contains("ms") || line.contains('s'),
                "no duration in {line}"
            );
        }
    }

    #[test]
    fn long_string_fields_are_truncated() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.trunc");
            q.record_str("sql", &"x".repeat(400));
        }
        let tree = last_root().unwrap();
        match tree.field("sql") {
            Some(FieldValue::Str(s)) => {
                assert!(s.len() <= 96);
                assert!(s.ends_with("..."));
            }
            other => panic!("unexpected field {other:?}"),
        }
    }
}
