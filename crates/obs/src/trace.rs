//! Lightweight nestable timed spans — the EXPLAIN ANALYZE backbone.
//!
//! A span is opened with [`root`] (starts a new tree when no span is
//! active) or [`span`] (attaches to the active span, or is discarded
//! when none is).  Guards record key-value fields and finish on drop;
//! finished root trees land in a bounded ring readable via
//! [`last_root`] / [`recent_roots`] and render with
//! [`SpanNode::render_tree`].
//!
//! # Causal identity
//!
//! A true root (no active parent) mints a process-unique trace id and
//! makes it current for the thread (see [`crate::context`]).  When the
//! root finishes, the whole tree is *finalized*: every span is stamped
//! with the trace id and a [`SpanId`](crate::SpanId) equal to its
//! 1-based preorder position, with parent links.  Because numbering
//! happens on the finished tree, the ids are a pure function of tree
//! shape — a query fanned out over 8 workers gets exactly the ids its
//! single-threaded execution would have.
//!
//! Span opens and closes are also journaled as typed events
//! ([`crate::event`]) and mirrored into the live-stack registry the
//! sampling profiler and crash dumps walk ([`crate::profile`]).

use qbism_check::sync::lock_or_recover;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::{context, event, profile};

/// How many finished root spans the ring retains.
pub const RING_CAPACITY: usize = 32;

/// A recorded field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field (row counts, page counts, bytes).
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (seconds, ratios).
    F64(f64),
    /// Short string field (SQL text, operator detail).
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A finished span: identity, name, wall time, fields and children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, e.g. `exec.scan` or `lfm.read`.  Borrowed for the
    /// common literal names so opening a span does not allocate.
    pub name: Cow<'static, str>,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Microseconds since the process trace epoch when the span opened.
    pub start_micros: u64,
    /// Owning trace; 0 until the tree is finalized (root finished).
    pub trace_id: u64,
    /// 1-based preorder position in the finished tree (1 = root);
    /// 0 until finalized.
    pub span_id: u64,
    /// `span_id` of the parent span; 0 for the root.
    pub parent_span_id: u64,
    /// Ordinal of the OS thread that executed the span
    /// ([`context::thread_ordinal`]).
    pub thread: u64,
    /// Key-value annotations recorded while the span was open.  Keys are
    /// static so recording a field costs one `Vec` push.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total spans in this tree, including self.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::span_count).sum::<usize>()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// The value of field `key` on this span, if recorded.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().rev().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// The tree's shape as a flat preorder list of `(span_id,
    /// parent_span_id, name)` — the thing that must be identical at any
    /// thread count.
    pub fn shape(&self) -> Vec<(u64, u64, String)> {
        let mut out = Vec::with_capacity(self.span_count());
        self.shape_into(&mut out);
        out
    }

    fn shape_into(&self, out: &mut Vec<(u64, u64, String)>) {
        out.push((self.span_id, self.parent_span_id, self.name.to_string()));
        for child in &self.children {
            child.shape_into(out);
        }
    }

    /// Renders the tree with `├─`/`└─` rails, one span per line:
    /// name, padded duration, then `key=value` fields.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", "", "");
        out
    }

    fn render_into(&self, out: &mut String, lead: &str, here: &str, below: &str) {
        let mut label = format!("{lead}{here}{}", self.name);
        if label.len() < 52 {
            label.push_str(&" ".repeat(52 - label.len()));
        }
        let _ = write!(out, "{label} {:>10}", format_duration(self.seconds));
        for (k, v) in &self.fields {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        let child_lead = format!("{lead}{below}");
        for (i, child) in self.children.iter().enumerate() {
            if i + 1 == self.children.len() {
                child.render_into(out, &child_lead, "└─ ", "   ");
            } else {
                child.render_into(out, &child_lead, "├─ ", "│  ");
            }
        }
    }
}

/// Human-scaled duration: `801.0µs`, `3.1ms`, `2.45s`.
fn format_duration(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// An open span frame on the thread-local stack.
struct Frame {
    name: Cow<'static, str>,
    started: Instant,
    start_micros: u64,
    /// Capture sentinel pushed by [`capture_begin`]: collects a
    /// parallel work item's subtrees for later replay and never becomes
    /// a span itself.
    capture: bool,
    fields: Vec<(&'static str, FieldValue)>,
    children: Vec<SpanNode>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

static RING: Mutex<VecDeque<SpanNode>> = Mutex::new(VecDeque::new());

/// Guard for an open span; finishes (and files the result) on drop.
///
/// Inert guards (tracing disabled, or [`span`] with no active parent)
/// record nothing and cost only the construction check.
#[must_use = "a span measures the scope of its guard"]
pub struct SpanGuard {
    live: bool,
    /// Root spans push the finished tree to the global ring.
    is_root: bool,
    /// Trace id this guard minted (0 when it joined an existing trace).
    minted: u64,
}

impl SpanGuard {
    fn open(name: Cow<'static, str>, is_root: bool, minted: u64) -> SpanGuard {
        profile::push_frame(name.clone());
        event::span_opened(name.clone());
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                name,
                started: Instant::now(),
                start_micros: context::now_micros(),
                capture: false,
                fields: Vec::new(),
                children: Vec::new(),
            });
        });
        SpanGuard { live: true, is_root, minted }
    }

    fn inert() -> SpanGuard {
        SpanGuard { live: false, is_root: false, minted: 0 }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.live
    }

    /// Records an unsigned integer field on this span.
    pub fn record_u64(&self, key: &'static str, value: u64) {
        self.record(key, FieldValue::U64(value));
    }

    /// Records a signed integer field on this span.
    pub fn record_i64(&self, key: &'static str, value: i64) {
        self.record(key, FieldValue::I64(value));
    }

    /// Records a floating-point field on this span.
    pub fn record_f64(&self, key: &'static str, value: f64) {
        self.record(key, FieldValue::F64(value));
    }

    /// Records a string field on this span (truncated to 96 chars).
    pub fn record_str(&self, key: &'static str, value: &str) {
        let mut v = value.to_string();
        if v.len() > 96 {
            let mut cut = 93;
            while !v.is_char_boundary(cut) {
                cut -= 1;
            }
            v.truncate(cut);
            v.push_str("...");
        }
        self.record(key, FieldValue::Str(v));
    }

    fn record(&self, key: &'static str, value: FieldValue) {
        if !self.live {
            return;
        }
        STACK.with(|stack| {
            if let Some(frame) = stack.borrow_mut().last_mut() {
                frame.fields.push((key, value));
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let mut closed: Option<(Cow<'static, str>, u64)> = None;
        let node = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let seconds = frame.started.elapsed().as_secs_f64();
            closed = Some((frame.name.clone(), (seconds * 1e6) as u64));
            let node = SpanNode {
                name: frame.name,
                seconds,
                start_micros: frame.start_micros,
                trace_id: 0,
                span_id: 0,
                parent_span_id: 0,
                thread: context::thread_ordinal(),
                fields: frame.fields,
                children: frame.children,
            };
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
                None
            } else {
                Some(node)
            }
        });
        profile::pop_frame();
        if let Some((name, micros)) = closed {
            event::span_closed(name, micros);
        }
        if let Some(mut node) = node {
            if self.is_root {
                finalize_root(&mut node, self.minted);
                file_root(node);
            }
        }
        if self.minted != 0 {
            context::set_current_trace(0);
        }
    }
}

/// Stamps trace id, preorder span ids and parent links onto a finished
/// tree.  `trace_id == 0` mints a fresh trace.
fn finalize_root(node: &mut SpanNode, trace_id: u64) {
    let trace = if trace_id != 0 { trace_id } else { context::mint_trace() };
    let mut next = 0u64;
    assign_ids(node, trace, 0, &mut next);
}

fn assign_ids(node: &mut SpanNode, trace: u64, parent: u64, next: &mut u64) {
    *next += 1;
    node.trace_id = trace;
    node.span_id = *next;
    node.parent_span_id = parent;
    let me = *next;
    for child in &mut node.children {
        assign_ids(child, trace, me, next);
    }
}

/// Slow-query check, then the bounded recent-roots ring.
fn file_root(node: SpanNode) {
    event::note_root_finished(&node);
    let mut ring = lock_or_recover(&RING);
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(node);
}

/// Pushes a capture sentinel frame: spans opened on this thread until
/// the matching [`capture_end`] nest under it instead of starting trees
/// of their own.  Used by [`context::ForkHandle`] on worker threads.
pub(crate) fn capture_begin() {
    STACK.with(|stack| {
        stack.borrow_mut().push(Frame {
            name: Cow::Borrowed("(capture)"),
            started: Instant::now(),
            start_micros: context::now_micros(),
            capture: true,
            fields: Vec::new(),
            children: Vec::new(),
        });
    });
}

/// Pops the capture sentinel and returns the subtrees it collected.
pub(crate) fn capture_end() -> Vec<SpanNode> {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        match stack.pop() {
            Some(frame) if frame.capture => frame.children,
            Some(frame) => {
                // Unbalanced (a guard leaked past its capture scope);
                // restore and bail rather than corrupt the stack.
                stack.push(frame);
                Vec::new()
            }
            None => Vec::new(),
        }
    })
}

/// Appends already-finished subtrees to the currently open span, in
/// order — the replay half of cross-thread capture.  With no open span
/// each subtree is finalized and filed as a root of its own.
pub(crate) fn attach(nodes: Vec<SpanNode>) {
    let leftover = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some(frame) = stack.last_mut() {
            frame.children.extend(nodes);
            None
        } else {
            Some(nodes)
        }
    });
    if let Some(nodes) = leftover {
        for mut node in nodes {
            finalize_root(&mut node, 0);
            file_root(node);
        }
    }
}

/// Opens a span that starts a new tree when no span is active on this
/// thread (the finished tree is kept in the recent-roots ring), or
/// nests under the active span otherwise.  A true root mints the
/// thread's current [`TraceId`](crate::TraceId).
///
/// Accepts `&'static str` (no allocation) or an owned `String` for
/// dynamic names.
pub fn root(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    let has_parent = STACK.with(|stack| !stack.borrow().is_empty());
    let minted = if has_parent {
        0
    } else {
        let id = context::mint_trace();
        context::set_current_trace(id);
        id
    };
    SpanGuard::open(name.into(), !has_parent, minted)
}

/// Opens a child span under the currently active span.  When no span is
/// active (or tracing is disabled) the guard is inert — interior layers
/// like the LFM can instrument unconditionally without ever starting
/// trees of their own.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    let has_parent = STACK.with(|stack| !stack.borrow().is_empty());
    if !has_parent {
        return SpanGuard::inert();
    }
    SpanGuard::open(name.into(), false, 0)
}

/// The most recently finished root span tree, if any.
pub fn last_root() -> Option<SpanNode> {
    lock_or_recover(&RING).back().cloned()
}

/// Every retained finished root (oldest first, at most [`RING_CAPACITY`]).
pub fn recent_roots() -> Vec<SpanNode> {
    lock_or_recover(&RING).iter().cloned().collect()
}

/// Empties the recent-roots ring (test isolation).
pub fn clear() {
    lock_or_recover(&RING).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_the_expected_tree() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.test_nesting");
            q.record_u64("study_id", 7);
            {
                let ex = span("exec.select");
                ex.record_u64("rows_out", 3);
                {
                    let _scan = span("exec.scan");
                }
                {
                    let udf = span("udf.extractvoxels");
                    let lfm = span("lfm.read");
                    lfm.record_u64("pages", 29);
                    drop(lfm);
                    drop(udf);
                }
            }
        }
        let tree = last_root().expect("root retained");
        assert_eq!(tree.name, "query.test_nesting");
        assert_eq!(tree.span_count(), 5);
        assert_eq!(tree.children.len(), 1);
        let ex = &tree.children[0];
        assert_eq!(ex.name, "exec.select");
        assert_eq!(ex.children.len(), 2);
        assert_eq!(ex.children[0].name, "exec.scan");
        assert_eq!(ex.children[1].name, "udf.extractvoxels");
        let lfm = tree.find("lfm.read").expect("lfm span nested");
        assert_eq!(lfm.field("pages"), Some(&FieldValue::U64(29)));
        // Parent durations cover child durations.
        assert!(tree.seconds >= ex.seconds);
    }

    #[test]
    fn finalized_ids_are_preorder_with_parent_links() {
        let _g = crate::test_lock();
        clear();
        {
            let _q = root("query.ids");
            {
                let _a = span("exec.select");
                let _b = span("exec.scan");
            }
            let _c = span("net.ship");
        }
        let tree = last_root().expect("root retained");
        assert!(tree.trace_id != 0);
        let shape = tree.shape();
        let expected: Vec<(u64, u64, &str)> = vec![
            (1, 0, "query.ids"),
            (2, 1, "exec.select"),
            (3, 2, "exec.scan"),
            (4, 1, "net.ship"),
        ];
        assert_eq!(shape.len(), expected.len());
        for ((id, parent, name), (eid, eparent, ename)) in shape.iter().zip(&expected) {
            assert_eq!((id, parent, name.as_str()), (eid, eparent, *ename));
        }
        // Every span carries the same trace and a timestamp after epoch.
        fn walk(n: &SpanNode, trace: u64) {
            assert_eq!(n.trace_id, trace);
            assert!(n.thread >= 1);
            for c in &n.children {
                assert!(c.start_micros >= n.start_micros);
                walk(c, trace);
            }
        }
        walk(&tree, tree.trace_id);
    }

    #[test]
    fn current_trace_is_set_while_root_open() {
        let _g = crate::test_lock();
        clear();
        assert!(crate::context::current_trace().is_none());
        {
            let _q = root("query.current");
            let inside = crate::context::current_trace().expect("trace current inside root");
            assert!(inside.0 != 0);
        }
        assert!(crate::context::current_trace().is_none(), "cleared after root drop");
    }

    #[test]
    fn orphan_child_spans_are_discarded() {
        let _g = crate::test_lock();
        clear();
        {
            let s = span("lfm.read");
            assert!(!s.is_recording());
            s.record_u64("pages", 1);
        }
        assert!(last_root().is_none());
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = crate::test_lock();
        clear();
        crate::set_enabled(false);
        {
            let r = root("query.disabled");
            assert!(!r.is_recording());
        }
        crate::set_enabled(true);
        assert!(last_root().is_none());
    }

    #[test]
    fn nested_root_behaves_as_child() {
        let _g = crate::test_lock();
        clear();
        {
            let _outer = root("query.outer");
            let _inner = root("db.execute"); // root() nests when a parent exists
        }
        let tree = last_root().expect("one tree");
        assert_eq!(tree.name, "query.outer");
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "db.execute");
        // Only one ring entry: the inner "root" did not start its own tree.
        assert_eq!(recent_roots().len(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        let _g = crate::test_lock();
        clear();
        for i in 0..(RING_CAPACITY + 5) {
            let r = root("query.ring");
            r.record_u64("i", i as u64);
        }
        let roots = recent_roots();
        assert_eq!(roots.len(), RING_CAPACITY);
        // Oldest entries were evicted.
        assert_eq!(roots[0].field("i"), Some(&FieldValue::U64(5)));
    }

    #[test]
    fn tree_rendering_has_rails_and_durations() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.render");
            q.record_str("sql", "select voxels from study");
            let _a = span("exec.scan");
            drop(_a);
            let _b = span("exec.project");
        }
        let text = last_root().unwrap().render_tree();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("query.render"));
        assert!(lines[0].contains("sql=select voxels from study"));
        assert!(lines[1].contains("├─ exec.scan"));
        assert!(lines[2].contains("└─ exec.project"));
        for line in &lines {
            assert!(
                line.contains("µs") || line.contains("ms") || line.contains('s'),
                "no duration in {line}"
            );
        }
    }

    #[test]
    fn long_string_fields_are_truncated() {
        let _g = crate::test_lock();
        clear();
        {
            let q = root("query.trunc");
            q.record_str("sql", &"x".repeat(400));
        }
        let tree = last_root().unwrap();
        match tree.field("sql") {
            Some(FieldValue::Str(s)) => {
                assert!(s.len() <= 96);
                assert!(s.ends_with("..."));
            }
            other => panic!("unexpected field {other:?}"),
        }
    }
}
