//! The process-wide metrics registry: counters, gauges, histograms.

use qbism_check::sync::lock_or_recover;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone event counter.
///
/// Handles are cheap clones of one shared atomic; adds are relaxed and
/// **wrap** on `u64` overflow (Prometheus counter-reset semantics).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (wrapping).  No-op while recording is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (e.g. live long fields, allocated pages).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.  No-op while recording is disabled.
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in seconds: 1 µs doubling up to
/// ~67 s (28 finite buckets) — wide enough for both native microsecond
/// queries and simulated 1994 tens-of-seconds answers.
pub fn default_seconds_buckets() -> Vec<f64> {
    (0..28).map(|i| 1e-6 * f64::from(1u32 << i)).collect()
}

#[derive(Debug)]
struct HistogramInner {
    /// Finite bucket upper bounds, ascending.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; one extra slot for +Inf.
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observed values, in nanounits, wrapping.
    sum_nanos: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (typically seconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be strictly ascending");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramInner {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }))
    }

    /// Records one observation.  No-op while recording is disabled.
    pub fn observe(&self, v: f64) {
        if !crate::enabled() {
            return;
        }
        let inner = &self.0;
        let idx = inner.bounds.partition_point(|&b| v > b);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum_nanos.fetch_add((v.max(0.0) * 1e9) as u64, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (seconds if seconds were observed).
    pub fn sum(&self) -> f64 {
        self.0.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Estimated quantile `q` in `[0, 1]`, linearly interpolated within
    /// the owning bucket (the Prometheus `histogram_quantile` estimate).
    /// Returns `None` with no observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let inner = &self.0;
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * total as f64;
        let mut cumulative = 0u64;
        for (i, c) in inner.counts.iter().enumerate() {
            let here = c.load(Ordering::Relaxed);
            let next = cumulative + here;
            if (next as f64) >= rank && here > 0 {
                let lower = if i == 0 { 0.0 } else { inner.bounds[i - 1] };
                let upper = if i < inner.bounds.len() {
                    inner.bounds[i]
                } else {
                    // +Inf bucket: report its lower bound (best estimate).
                    return Some(lower);
                };
                let into = (rank - cumulative as f64) / here as f64;
                return Some(lower + into.clamp(0.0, 1.0) * (upper - lower));
            }
            cumulative = next;
        }
        inner.bounds.last().copied()
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Cumulative `(upper_bound, count)` pairs, ending with `(+Inf, total)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &self.0;
        let mut out = Vec::with_capacity(inner.counts.len());
        let mut acc = 0u64;
        for (i, c) in inner.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            let bound = if i < inner.bounds.len() { inner.bounds[i] } else { f64::INFINITY };
            out.push((bound, acc));
        }
        out
    }
}

/// Instance key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Default cap on distinct series per registry — the cardinality guard
/// that keeps a label explosion (e.g. a study id used as a label) from
/// growing the registry without bound.
pub const DEFAULT_MAX_SERIES: usize = 4096;

/// Typed registration failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// Registering one more series would exceed the cardinality cap
    /// ([`Registry::set_series_limit`]).
    CardinalityLimit {
        /// Metric name that was refused.
        name: String,
        /// The cap in force.
        limit: usize,
    },
    /// The name is already registered as a different metric type.
    TypeConflict {
        /// Conflicting metric name.
        name: String,
    },
}

impl std::fmt::Display for MetricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetricError::CardinalityLimit { name, limit } => {
                write!(f, "registering {name} would exceed the {limit}-series cardinality cap")
            }
            MetricError::TypeConflict { name } => {
                write!(f, "metric {name} is already registered as a different type")
            }
        }
    }
}

impl std::error::Error for MetricError {}

#[derive(Default)]
struct Inner {
    metrics: BTreeMap<Key, Metric>,
    help: BTreeMap<String, String>,
    /// Series cap; 0 means [`DEFAULT_MAX_SERIES`].
    max_series: usize,
    /// Registrations refused (or detached) by the cardinality guard.
    dropped_series: u64,
}

impl Inner {
    fn limit(&self) -> usize {
        if self.max_series == 0 {
            DEFAULT_MAX_SERIES
        } else {
            self.max_series
        }
    }
}

/// A metrics registry.  [`global()`] returns the process-wide instance
/// every QBISM layer records into; separate instances serve tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut labels: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    Key { name: name.to_string(), labels }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// The counter `name` with the given label pairs.
    ///
    /// At the cardinality cap a *detached* counter is returned — it
    /// works but is not registered or exported — and the drop is
    /// counted in [`Registry::dropped_series`].  Use
    /// [`Registry::try_counter_with`] for the typed error.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.try_counter_with(name, labels) {
            Ok(c) => c,
            Err(MetricError::CardinalityLimit { .. }) => Counter::default(),
            Err(MetricError::TypeConflict { .. }) => {
                panic!("metric {name} already registered as a non-counter")
            }
        }
    }

    /// Fallible form of [`Registry::counter_with`]: a typed error
    /// instead of a panic or a detached fallback.
    pub fn try_counter_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Counter, MetricError> {
        let mut inner = lock_or_recover(&self.inner);
        if let Some(metric) = inner.metrics.get(&make_key(name, labels)) {
            return match metric {
                Metric::Counter(c) => Ok(c.clone()),
                _ => Err(MetricError::TypeConflict { name: name.to_string() }),
            };
        }
        let limit = inner.limit();
        if inner.metrics.len() >= limit {
            inner.dropped_series += 1;
            return Err(MetricError::CardinalityLimit { name: name.to_string(), limit });
        }
        let counter = Counter::default();
        inner.metrics.insert(make_key(name, labels), Metric::Counter(counter.clone()));
        Ok(counter)
    }

    /// The unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// The gauge `name` with labels.  Detached-fallback semantics at
    /// the cardinality cap, as for [`Registry::counter_with`].
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.try_gauge_with(name, labels) {
            Ok(g) => g,
            Err(MetricError::CardinalityLimit { .. }) => Gauge::default(),
            Err(MetricError::TypeConflict { .. }) => {
                panic!("metric {name} already registered as a non-gauge")
            }
        }
    }

    /// Fallible form of [`Registry::gauge_with`].
    pub fn try_gauge_with(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Result<Gauge, MetricError> {
        let mut inner = lock_or_recover(&self.inner);
        if let Some(metric) = inner.metrics.get(&make_key(name, labels)) {
            return match metric {
                Metric::Gauge(g) => Ok(g.clone()),
                _ => Err(MetricError::TypeConflict { name: name.to_string() }),
            };
        }
        let limit = inner.limit();
        if inner.metrics.len() >= limit {
            inner.dropped_series += 1;
            return Err(MetricError::CardinalityLimit { name: name.to_string(), limit });
        }
        let gauge = Gauge::default();
        inner.metrics.insert(make_key(name, labels), Metric::Gauge(gauge.clone()));
        Ok(gauge)
    }

    /// The unlabeled histogram `name` with the default latency buckets.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// The histogram `name` with labels (default latency buckets).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_buckets(name, labels, default_seconds_buckets)
    }

    /// The histogram `name` with labels and explicit bucket bounds
    /// (`bounds` is only invoked when the instance is first created).
    /// Detached-fallback semantics at the cardinality cap, as for
    /// [`Registry::counter_with`].
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram_with_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: impl FnOnce() -> Vec<f64>,
    ) -> Histogram {
        match self.try_histogram_with_buckets(name, labels, bounds) {
            Ok(h) => h,
            Err(MetricError::CardinalityLimit { .. }) => Histogram::new(default_seconds_buckets()),
            Err(MetricError::TypeConflict { .. }) => {
                panic!("metric {name} already registered as a non-histogram")
            }
        }
    }

    /// Fallible form of [`Registry::histogram_with_buckets`].
    pub fn try_histogram_with_buckets(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: impl FnOnce() -> Vec<f64>,
    ) -> Result<Histogram, MetricError> {
        let mut inner = lock_or_recover(&self.inner);
        if let Some(metric) = inner.metrics.get(&make_key(name, labels)) {
            return match metric {
                Metric::Histogram(h) => Ok(h.clone()),
                _ => Err(MetricError::TypeConflict { name: name.to_string() }),
            };
        }
        let limit = inner.limit();
        if inner.metrics.len() >= limit {
            inner.dropped_series += 1;
            return Err(MetricError::CardinalityLimit { name: name.to_string(), limit });
        }
        let histogram = Histogram::new(bounds());
        inner.metrics.insert(make_key(name, labels), Metric::Histogram(histogram.clone()));
        Ok(histogram)
    }

    /// Caps the number of distinct series (clamped to ≥ 1).  Existing
    /// series always survive; only *new* registrations are refused.
    pub fn set_series_limit(&self, limit: usize) {
        lock_or_recover(&self.inner).max_series = limit.max(1);
    }

    /// The cardinality cap in force.
    pub fn series_limit(&self) -> usize {
        lock_or_recover(&self.inner).limit()
    }

    /// Distinct series currently registered.
    pub fn series_count(&self) -> usize {
        lock_or_recover(&self.inner).metrics.len()
    }

    /// Registrations refused (infallible callers got detached handles)
    /// by the cardinality guard.
    pub fn dropped_series(&self) -> u64 {
        lock_or_recover(&self.inner).dropped_series
    }

    /// Attaches help text to a metric name (rendered as `# HELP`).
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = lock_or_recover(&self.inner);
        inner.help.insert(name.to_string(), help.to_string());
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// Histograms additionally export `{name}_quantiles` gauge series
    /// with p50/p95/p99 estimates (grouped after the main families so
    /// each family's samples stay contiguous).
    pub fn render_prometheus(&self) -> String {
        type QuantileSeries = (String, Vec<(String, String)>, Histogram);
        let inner = lock_or_recover(&self.inner);
        let mut out = String::new();
        let mut last_name = "";
        let mut quantile_series: Vec<QuantileSeries> = Vec::new();
        for (key, metric) in &inner.metrics {
            if key.name != last_name {
                if let Some(help) = inner.help.get(&key.name) {
                    let _ = writeln!(out, "# HELP {} {}", key.name, help);
                }
                let ty = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", key.name, ty);
                last_name = &key.name;
            }
            match metric {
                Metric::Counter(c) => {
                    let _ =
                        writeln!(out, "{} {}", render_series(&key.name, &key.labels, &[]), c.get());
                }
                Metric::Gauge(g) => {
                    let _ =
                        writeln!(out, "{} {}", render_series(&key.name, &key.labels, &[]), g.get());
                }
                Metric::Histogram(h) => {
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format_f64(bound)
                        };
                        let _ = writeln!(
                            out,
                            "{} {}",
                            render_series(
                                &format!("{}_bucket", key.name),
                                &key.labels,
                                &[("le", &le)]
                            ),
                            cum
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&format!("{}_sum", key.name), &key.labels, &[]),
                        format_f64(h.sum())
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&format!("{}_count", key.name), &key.labels, &[]),
                        h.count()
                    );
                    if h.count() > 0 {
                        quantile_series.push((key.name.clone(), key.labels.clone(), h.clone()));
                    }
                }
            }
        }
        let mut last_quantile_name = String::new();
        for (name, labels, h) in quantile_series {
            let qname = format!("{name}_quantiles");
            if qname != last_quantile_name {
                let _ = writeln!(out, "# TYPE {qname} gauge");
                last_quantile_name = qname.clone();
            }
            for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
                if let Some(v) = v {
                    let _ = writeln!(
                        out,
                        "{} {}",
                        render_series(&qname, &labels, &[("quantile", q)]),
                        format_f64(v)
                    );
                }
            }
        }
        out
    }

    /// One JSON object holding every metric (counters and gauges as
    /// numbers; histograms as `{count, sum, p50, p95, p99}`).
    pub fn snapshot_json(&self) -> String {
        let inner = lock_or_recover(&self.inner);
        let mut out = String::from("{");
        let mut first = true;
        for (key, metric) in &inner.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let series = render_series(&key.name, &key.labels, &[]);
            let _ = write!(out, "{}:", json_string(&series));
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count(),
                        format_f64(h.sum()),
                        format_f64(h.p50().unwrap_or(0.0)),
                        format_f64(h.p95().unwrap_or(0.0)),
                        format_f64(h.p99().unwrap_or(0.0)),
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

/// `name{label="v",...}` with optional extra labels appended.
fn render_series(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_string();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{name}{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Shortest float rendering that survives a round-trip parse.
pub(crate) fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}") // keep a decimal point so the type is evident
    } else {
        format!("{v}")
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all QBISM instrumentation records into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_wrap() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let c = r.counter("events_total");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Overflow wraps (Prometheus counter-reset semantics).
        c.add(u64::MAX - 41);
        assert_eq!(c.get(), 0);
        c.add(7);
        assert_eq!(c.get(), 7);
        // Same name returns the same underlying counter.
        assert_eq!(r.counter("events_total").get(), 7);
    }

    #[test]
    fn labeled_instances_are_distinct() {
        let _g = crate::test_lock();
        let r = Registry::new();
        r.counter_with("q_total", &[("class", "a")]).add(3);
        r.counter_with("q_total", &[("class", "b")]).add(5);
        assert_eq!(r.counter_with("q_total", &[("class", "a")]).get(), 3);
        assert_eq!(r.counter_with("q_total", &[("class", "b")]).get(), 5);
        // Label order is canonicalized.
        r.counter_with("two", &[("x", "1"), ("y", "2")]).add(1);
        assert_eq!(r.counter_with("two", &[("y", "2"), ("x", "1")]).get(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let g = r.gauge("pages");
        g.set(100);
        g.add(-30);
        assert_eq!(g.get(), 70);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_confusion_panics() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let _ = r.gauge("m");
        let _ = r.counter("m");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[], || vec![0.001, 0.01, 0.1]);
        // On-boundary observations belong to the bucket they bound
        // (le = upper bound is inclusive, like Prometheus).
        h.observe(0.001);
        h.observe(0.0005);
        h.observe(0.05);
        h.observe(99.0); // +Inf bucket
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (0.001, 2));
        assert_eq!(buckets[1], (0.01, 2));
        assert_eq!(buckets[2], (0.1, 3));
        assert!(buckets[3].0.is_infinite());
        assert_eq!(buckets[3].1, 4);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 99.0515).abs() < 1e-6);
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[], || vec![1.0, 2.0, 4.0, 8.0]);
        for _ in 0..100 {
            h.observe(1.5); // all in (1, 2]
        }
        let p50 = h.p50().unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 {p50}");
        let p99 = h.p99().unwrap();
        assert!((1.0..=2.0).contains(&p99), "p99 {p99}");
        // A bimodal distribution: half fast, half slow.
        let h2 = r.histogram_with_buckets("lat2", &[], || vec![1.0, 2.0, 4.0, 8.0]);
        for _ in 0..50 {
            h2.observe(0.5);
        }
        for _ in 0..50 {
            h2.observe(7.0);
        }
        assert!(h2.p50().unwrap() <= 1.0);
        assert!(h2.p95().unwrap() > 4.0);
        // Empty histogram has no quantiles.
        let h3 = r.histogram_with_buckets("lat3", &[], || vec![1.0]);
        assert!(h3.p50().is_none());
    }

    #[test]
    fn quantile_of_overflow_bucket_reports_last_bound() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[], || vec![1.0, 2.0]);
        h.observe(100.0);
        assert_eq!(h.p99().unwrap(), 2.0);
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        crate::set_enabled(false);
        c.add(10);
        h.observe(1.0);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.add(2);
        assert_eq!(c.get(), 2);
    }

    /// Golden-ish test: the Prometheus dump parses line by line.
    #[test]
    fn prometheus_output_parses_line_by_line() {
        let _g = crate::test_lock();
        let r = Registry::new();
        r.describe("qbism_lfm_pages_read_total", "Distinct 4 KiB pages read.");
        r.counter("qbism_lfm_pages_read_total").add(29);
        r.gauge("qbism_lfm_allocated_pages").set(512);
        let h = r.histogram_with("qbism_query_seconds", &[("class", "structure")]);
        h.observe(0.45);
        h.observe(0.012);
        let text = r.render_prometheus();
        let mut samples = 0;
        let mut saw_help = false;
        let mut saw_type = false;
        for line in text.lines() {
            assert!(!line.trim().is_empty(), "no blank lines");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                assert!(rest.contains(' '), "HELP has name and text: {line}");
                saw_help = true;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let _name = it.next().expect("type line has a name");
                let ty = it.next().expect("type line has a type");
                assert!(matches!(ty, "counter" | "gauge" | "histogram"), "unknown type {ty}");
                saw_type = true;
                continue;
            }
            // Sample line: `name{labels} value` or `name value`.
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "unparsable value {value} in {line}"
            );
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name {name}"
            );
            if let Some(rest) = series.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "bad labels {rest}");
                    for pair in rest[1..rest.len() - 1].split(',') {
                        let (k, v) = pair.split_once('=').expect("label pair");
                        assert!(!k.is_empty());
                        assert!(v.starts_with('"') && v.ends_with('"'), "unquoted label {v}");
                    }
                }
            }
            samples += 1;
        }
        assert!(saw_help && saw_type);
        // counter + gauge + (buckets + sum + count) for the histogram,
        // plus the p50/p95/p99 quantile summary gauges.
        let expected_hist_lines = default_seconds_buckets().len() + 1 + 2;
        assert_eq!(samples, 2 + expected_hist_lines + 3);
        // The advertised acceptance series are present.
        assert!(text.contains("qbism_lfm_pages_read_total 29"));
        assert!(text.contains("qbism_query_seconds_bucket{class=\"structure\",le=\"+Inf\"} 2"));
        assert!(text.contains("qbism_query_seconds_count{class=\"structure\"} 2"));
        assert!(text.contains("# TYPE qbism_query_seconds_quantiles gauge"));
        assert!(
            text.contains("qbism_query_seconds_quantiles{class=\"structure\",quantile=\"0.95\"}")
        );
    }

    #[test]
    fn empty_histograms_export_no_quantiles() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let _ = r.histogram("idle_seconds");
        let text = r.render_prometheus();
        assert!(!text.contains("idle_seconds_quantiles"), "no quantiles without observations");
    }

    #[test]
    fn cardinality_guard_refuses_with_typed_error() {
        let _g = crate::test_lock();
        let r = Registry::new();
        r.set_series_limit(2);
        assert_eq!(r.series_limit(), 2);
        let _ = r.counter_with("fits", &[("class", "a")]);
        let _ = r.counter_with("fits", &[("class", "b")]);
        assert_eq!(r.series_count(), 2);
        match r.try_counter_with("fits", &[("class", "c")]) {
            Err(MetricError::CardinalityLimit { name, limit }) => {
                assert_eq!(name, "fits");
                assert_eq!(limit, 2);
            }
            other => panic!("expected cardinality error, got {other:?}"),
        }
        // Existing series are still reachable below the cap.
        assert!(r.try_counter_with("fits", &[("class", "a")]).is_ok());
        // Histograms and gauges hit the same guard.
        assert!(matches!(r.try_gauge_with("g", &[]), Err(MetricError::CardinalityLimit { .. })));
        assert!(matches!(
            r.try_histogram_with_buckets("h", &[], || vec![1.0]),
            Err(MetricError::CardinalityLimit { .. })
        ));
    }

    #[test]
    fn infallible_callers_get_detached_handles_at_the_cap() {
        let _g = crate::test_lock();
        let r = Registry::new();
        r.set_series_limit(1);
        let _ = r.counter("kept_total");
        let detached = r.counter_with("dropped_total", &[("id", "9999")]);
        detached.add(7);
        assert_eq!(detached.get(), 7, "detached handle still works");
        assert!(r.dropped_series() >= 1);
        assert_eq!(r.series_count(), 1);
        assert!(!r.render_prometheus().contains("dropped_total"), "detached series not exported");
    }

    #[test]
    fn try_constructors_report_type_conflicts() {
        let _g = crate::test_lock();
        let r = Registry::new();
        let _ = r.counter("m_total");
        assert!(matches!(
            r.try_gauge_with("m_total", &[]),
            Err(MetricError::TypeConflict { name }) if name == "m_total"
        ));
    }

    #[test]
    fn json_snapshot_is_wellformed_enough() {
        let _g = crate::test_lock();
        let r = Registry::new();
        r.counter("a_total").add(5);
        r.histogram("h_seconds").observe(0.25);
        let json = r.snapshot_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a_total\":5"));
        assert!(json.contains("\"count\":1"));
        // Balanced braces and quotes.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('"').count() % 2, 0);
    }

    #[test]
    fn global_registry_is_shared() {
        let _g = crate::test_lock();
        global().counter("qbism_obs_selftest_total").add(1);
        assert!(global().counter("qbism_obs_selftest_total").get() >= 1);
    }
}
