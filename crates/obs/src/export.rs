//! Flight-recorder exporters: JSONL event dumps and Chrome trace-event
//! JSON.
//!
//! [`events_jsonl`] writes one JSON object per line — grep-able,
//! stream-appendable, trivially parsed.  [`chrome_trace`] emits the
//! Chrome trace-event format (load the file in `about:tracing` or
//! Perfetto): each finished span becomes a complete `"ph":"X"` slice
//! and each journal event an instant `"ph":"i"` tick.  Traces map to
//! process rows (`pid` = trace id) and threads to `tid` rows, so an
//! 8-client storm renders as 8 stacked query timelines.
//!
//! Both exporters are pure string builders — callers decide where the
//! bytes go, so `qbism-obs` stays free of filesystem side effects.

use std::fmt::Write as _;

use crate::event::{CrashDump, Event, EventKind};
use crate::metrics::{format_f64, json_string};
use crate::trace::{FieldValue, SpanNode};

/// One JSON object per event, newline-delimited.
pub fn events_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_json(event));
        out.push('\n');
    }
    out
}

/// One event as a single-line JSON object.
pub fn event_json(event: &Event) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"seq\":{},\"micros\":{},\"trace\":{},\"thread\":{},\"kind\":{}",
        event.seq,
        event.micros,
        event.trace,
        event.thread,
        json_string(event.kind.label())
    );
    append_kind_fields(&mut out, &event.kind);
    out.push('}');
    out
}

fn append_kind_fields(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::SpanOpen { name } => {
            let _ = write!(out, ",\"name\":{}", json_string(name));
        }
        EventKind::SpanClose { name, micros } => {
            let _ = write!(out, ",\"name\":{},\"dur_micros\":{micros}", json_string(name));
        }
        EventKind::PageRead { pages, extents } => {
            let _ = write!(out, ",\"pages\":{pages},\"extents\":{extents}");
        }
        EventKind::CacheHit { page }
        | EventKind::CacheMiss { page }
        | EventKind::CacheEvict { page } => {
            let _ = write!(out, ",\"page\":{page}");
        }
        EventKind::CompressedScan { field, pages, skips } => {
            let _ = write!(out, ",\"field\":{field},\"pages\":{pages},\"skips\":{skips}");
        }
        EventKind::JournalRecord { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        EventKind::FaultInjected { site, outcome } => {
            let _ =
                write!(out, ",\"site\":{},\"outcome\":{}", json_string(site), json_string(outcome));
        }
        EventKind::Retry { site, attempt } => {
            let _ = write!(out, ",\"site\":{},\"attempt\":{attempt}", json_string(site));
        }
        EventKind::Timeout { site, attempts } => {
            let _ = write!(out, ",\"site\":{},\"attempts\":{attempts}", json_string(site));
        }
        EventKind::Failover { study, from_shard, to_shard } => {
            let _ = write!(
                out,
                ",\"study\":{study},\"from_shard\":{from_shard},\"to_shard\":{to_shard}"
            );
        }
        EventKind::ShardDown { shard } => {
            let _ = write!(out, ",\"shard\":{shard}");
        }
        EventKind::Rebalance { shards, moved } => {
            let _ = write!(out, ",\"shards\":{shards},\"moved\":{moved}");
        }
        EventKind::SlowQuery { name, micros } => {
            let _ = write!(out, ",\"name\":{},\"dur_micros\":{micros}", json_string(name));
        }
        EventKind::CrashDump { site } => {
            let _ = write!(out, ",\"site\":{}", json_string(site));
        }
        EventKind::Custom { name, detail } => {
            let _ =
                write!(out, ",\"name\":{},\"detail\":{}", json_string(name), json_string(detail));
        }
    }
}

/// Chrome trace-event JSON over finished span trees plus journal
/// events.  Span open/close journal entries are skipped — the `"X"`
/// slices already carry them.
pub fn chrome_trace(roots: &[SpanNode], events: &[Event]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for root in roots {
        span_slices(root, &mut parts);
    }
    for event in events {
        if matches!(event.kind, EventKind::SpanOpen { .. } | EventKind::SpanClose { .. }) {
            continue;
        }
        parts.push(instant_slice(event));
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", parts.join(","))
}

fn span_slices(node: &SpanNode, out: &mut Vec<String>) {
    let mut args = String::from("{");
    let _ = write!(
        args,
        "\"trace_id\":{},\"span_id\":{},\"parent_span_id\":{}",
        node.trace_id, node.span_id, node.parent_span_id
    );
    for (key, value) in &node.fields {
        let _ = write!(args, ",{}:{}", json_string(key), field_json(value));
    }
    args.push('}');
    out.push(format!(
        "{{\"name\":{},\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
        json_string(&node.name),
        node.start_micros,
        format_f64((node.seconds * 1e6).max(0.001)),
        node.trace_id,
        node.thread,
        args
    ));
    for child in &node.children {
        span_slices(child, out);
    }
}

fn instant_slice(event: &Event) -> String {
    let mut args = String::from("{");
    let _ = write!(args, "\"seq\":{}", event.seq);
    append_kind_fields(&mut args, &event.kind);
    args.push('}');
    format!(
        "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{}}}",
        json_string(event.kind.label()),
        event.micros,
        event.trace,
        event.thread,
        args
    )
}

fn field_json(value: &FieldValue) -> String {
    match value {
        FieldValue::U64(v) => v.to_string(),
        FieldValue::I64(v) => v.to_string(),
        FieldValue::F64(v) if v.is_finite() => format_f64(*v),
        FieldValue::F64(v) => json_string(&v.to_string()),
        FieldValue::Str(v) => json_string(v),
    }
}

/// One crash dump as a JSON object (events inline, live stacks as
/// arrays of span names).
pub fn crash_dump_json(dump: &CrashDump) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"site\":{},\"micros\":{},\"trace\":{},\"thread\":{},\"events\":[",
        json_string(&dump.site),
        dump.micros,
        dump.trace,
        dump.thread
    );
    for (i, event) in dump.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&event_json(event));
    }
    out.push_str("],\"live_spans\":[");
    for (i, stack) in dump.live_spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, name) in stack.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
        }
        out.push(']');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event;
    use crate::trace;

    fn balanced(s: &str) {
        assert_eq!(s.matches('{').count(), s.matches('}').count(), "braces: {s}");
        assert_eq!(s.matches('[').count(), s.matches(']').count(), "brackets: {s}");
        assert_eq!(s.matches('"').count() % 2, 0, "quotes: {s}");
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let _g = crate::test_lock();
        event::clear();
        event::page_read(3, 2);
        event::fault_injected("lfm.read", "torn");
        event::custom("note", "a \"quoted\" detail\nwith newline");
        let text = events_jsonl(&event::events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            balanced(line);
        }
        assert!(lines[0].contains("\"kind\":\"page_read\""));
        assert!(lines[1].contains("\"outcome\":\"torn\""));
        assert!(lines[2].contains("\\\"quoted\\\""));
        event::clear();
    }

    #[test]
    fn chrome_trace_has_slices_and_instants() {
        let _g = crate::test_lock();
        event::clear();
        trace::clear();
        {
            let root = trace::root("query.chrome");
            root.record_u64("study_id", 7);
            let _inner = trace::span("lfm.read");
            event::page_read(5, 1);
        }
        let json = chrome_trace(&trace::recent_roots(), &event::events());
        balanced(&json);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"query.chrome\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"span_id\":1"));
        assert!(json.contains("\"parent_span_id\":1"), "child links to root");
        assert!(json.contains("\"study_id\":7"));
        // Span open/close journal entries are not duplicated as instants.
        assert!(!json.contains("\"name\":\"span_open\""));
        event::clear();
        trace::clear();
    }

    #[test]
    fn crash_dump_json_roundtrips_shape() {
        let _g = crate::test_lock();
        event::clear();
        event::clear_crash_dumps();
        {
            let _root = trace::root("query.boom");
            event::capture_crash_dump("lfm.meta.write");
        }
        let dump = event::last_crash_dump().expect("dump");
        let json = crash_dump_json(&dump);
        balanced(&json);
        assert!(json.contains("\"site\":\"lfm.meta.write\""));
        assert!(json.contains("\"live_spans\":[[\"query.boom\"]]"));
        event::clear_crash_dumps();
        event::clear();
    }
}
