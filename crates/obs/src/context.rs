//! Trace identity and cross-thread context propagation.
//!
//! Every query entrypoint mints a process-unique [`TraceId`] when it
//! opens its root span; spans and journal events recorded while that
//! trace is current on the thread inherit the id.  [`fork`] /
//! [`ForkHandle`] carry the context across a `qbism-parallel` fan-out:
//! the executor captures each work item's finished spans on the worker
//! thread and replays them — in input order — into the calling thread's
//! open span, so the finished tree has exactly the parent/child
//! structure the inline (`threads = 1`) execution would have produced.

use qbism_check::sync::lock_or_recover;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::trace::{self, SpanNode};

/// Identity of one causal trace: one query execution end to end,
/// across every thread it fans out over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identity of one span within its trace: the 1-based preorder position
/// in the finished tree.  Assigned when the root finishes, which makes
/// the numbering a pure function of tree shape — identical at any
/// thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

/// Microseconds since the process trace epoch (first instrumented
/// operation).  All span and event timestamps share this origin, so a
/// Chrome trace lines every thread up on one timeline.
pub fn now_micros() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

pub(crate) fn mint_trace() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// Replaces this thread's current trace id, returning the previous one.
pub(crate) fn set_current_trace(id: u64) -> u64 {
    CURRENT_TRACE.with(|c| c.replace(id))
}

pub(crate) fn current_raw() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// The trace currently open on this thread, if any.
pub fn current_trace() -> Option<TraceId> {
    match current_raw() {
        0 => None,
        id => Some(TraceId(id)),
    }
}

/// A small dense ordinal naming this OS thread in exports (1, 2, 3 …
/// in first-use order).  Stable for the thread's lifetime.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|c| {
        let mut v = c.get();
        if v == 0 {
            v = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// Trace context captured on the coordinating thread before a parallel
/// fan-out.  Workers call [`ForkHandle::adopt`] around each work item;
/// the coordinator calls [`ForkHandle::join`] after the pool drains.
#[derive(Debug)]
pub struct ForkHandle {
    trace: u64,
    slots: Mutex<Vec<(usize, Vec<SpanNode>)>>,
}

/// Captures the calling thread's trace context for a fan-out.  Returns
/// `None` while recording is disabled — workers then run exactly as
/// uninstrumented inline code would.
pub fn fork() -> Option<ForkHandle> {
    if !crate::enabled() {
        return None;
    }
    Some(ForkHandle { trace: current_raw(), slots: Mutex::new(Vec::new()) })
}

impl ForkHandle {
    /// Adopts the forked context on a worker thread for work item
    /// `index`.  While the guard lives, events carry the forked trace
    /// id and spans the item opens are captured instead of starting
    /// stray root trees; the guard's drop files the captured subtrees
    /// under `index` for [`ForkHandle::join`] to replay.
    pub fn adopt(&self, index: usize) -> AdoptGuard<'_> {
        let prev = set_current_trace(self.trace);
        trace::capture_begin();
        AdoptGuard { fork: self, index, prev }
    }

    /// Replays every captured item subtree into the calling thread's
    /// open span, in work-item input order (or files them as roots when
    /// no span is open).  Call after all workers have joined.
    pub fn join(self) {
        let mut slots = self.slots.into_inner().unwrap_or_else(|e| e.into_inner());
        slots.sort_by_key(|(i, _)| *i);
        for (_, nodes) in slots {
            trace::attach(nodes);
        }
    }
}

/// RAII scope for one adopted work item; see [`ForkHandle::adopt`].
#[derive(Debug)]
pub struct AdoptGuard<'a> {
    fork: &'a ForkHandle,
    index: usize,
    prev: u64,
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        let nodes = trace::capture_end();
        set_current_trace(self.prev);
        if !nodes.is_empty() {
            lock_or_recover(&self.fork.slots).push((self.index, nodes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_display_hex() {
        let a = TraceId(mint_trace());
        let b = TraceId(mint_trace());
        assert_ne!(a, b);
        assert_eq!(format!("{}", TraceId(0x2a)).len(), 16);
        assert!(format!("{}", TraceId(0x2a)).ends_with("2a"));
    }

    #[test]
    fn thread_ordinal_is_stable_per_thread() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let other = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, other);
    }

    #[test]
    fn now_micros_is_monotone() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn fork_captures_worker_spans_in_item_order() {
        let _g = crate::test_lock();
        trace::clear();
        {
            let root = trace::root("query.fork_test");
            assert!(root.is_recording());
            let fork = fork().expect("recording is on");
            std::thread::scope(|s| {
                for idx in (0..4).rev() {
                    let fk = &fork;
                    s.spawn(move || {
                        let _adopt = fk.adopt(idx);
                        let span = trace::root("db.execute");
                        span.record_u64("item", idx as u64);
                    });
                }
            });
            fork.join();
        }
        let tree = trace::last_root().expect("root retained");
        assert_eq!(tree.name, "query.fork_test");
        assert_eq!(tree.children.len(), 4);
        for (i, child) in tree.children.iter().enumerate() {
            assert_eq!(child.name, "db.execute");
            assert_eq!(
                child.field("item"),
                Some(&trace::FieldValue::U64(i as u64)),
                "children replayed in item order"
            );
        }
        // Finalized ids: preorder, one trace.
        assert_eq!(tree.span_id, 1);
        assert!(tree.trace_id != 0);
        for child in &tree.children {
            assert_eq!(child.trace_id, tree.trace_id);
            assert_eq!(child.parent_span_id, 1);
        }
    }

    #[test]
    fn fork_without_open_span_files_roots() {
        let _g = crate::test_lock();
        trace::clear();
        let fork = fork().expect("recording is on");
        std::thread::scope(|s| {
            let fk = &fork;
            s.spawn(move || {
                let _adopt = fk.adopt(0);
                let _span = trace::root("db.execute");
            });
        });
        fork.join();
        let tree = trace::last_root().expect("worker root filed to the ring");
        assert_eq!(tree.name, "db.execute");
        assert!(tree.trace_id != 0, "attached roots still get a trace id");
    }
}
