//! Bounded structured event journal, slow-query log, and crash dumps —
//! the always-on half of the flight recorder.
//!
//! Every instrumented layer appends typed [`Event`]s (span open/close,
//! LFM page reads, cache hits/evictions, injected faults, RPC retries)
//! to one process-wide ring.  Appends are lock-cheap: one timestamp,
//! one short mutex-guarded push; the ring is bounded so an always-on
//! recorder can never grow without limit — old events fall off the
//! front and are counted in [`dropped`].
//!
//! Two triggers snapshot the ring:
//!
//! * **slow queries** — a finished root span whose duration meets the
//!   configurable threshold ([`set_slow_query_threshold`]) captures its
//!   EXPLAIN ANALYZE tree plus the journal slice belonging to its
//!   trace ([`slow_queries`]);
//! * **crashes** — the `qbism-fault` crash path calls
//!   [`capture_crash_dump`], which snapshots the whole ring and every
//!   live span stack, so a `crash_sweep` failure always comes with the
//!   events leading up to it ([`crash_dumps`]).

use qbism_check::sync::lock_or_recover;
use std::borrow::Cow;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::context;
use crate::trace::SpanNode;

/// Default bound on the event ring.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 16_384;
/// How many slow-query records are retained (newest win).
pub const SLOW_LOG_CAPACITY: usize = 16;
/// How many crash dumps are retained (newest win).
pub const CRASH_DUMP_CAPACITY: usize = 8;
/// Default slow-query threshold: 250 ms.
pub const DEFAULT_SLOW_QUERY_MICROS: u64 = 250_000;

/// A typed journal event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened ([`crate::trace`]).
    SpanOpen {
        /// Span name.
        name: Cow<'static, str>,
    },
    /// A span closed.
    SpanClose {
        /// Span name.
        name: Cow<'static, str>,
        /// Span duration in microseconds.
        micros: u64,
    },
    /// The LFM served a read: distinct 4 KiB pages and contiguous
    /// extents.
    PageRead {
        /// Distinct pages read.
        pages: u64,
        /// Contiguous extents (seeks).
        extents: u64,
    },
    /// Page cache hit.
    CacheHit {
        /// Page number.
        page: u64,
    },
    /// Page cache miss.
    CacheMiss {
        /// Page number.
        page: u64,
    },
    /// Page cache eviction.
    CacheEvict {
        /// Page number evicted.
        page: u64,
    },
    /// The LFM served a read out of the compressed tablespace:
    /// compact pages touched and galloping skips taken in their place.
    CompressedScan {
        /// Long field that was scanned.
        field: i64,
        /// Distinct compact 4 KiB pages read.
        pages: u64,
        /// Skip-jumps (blocks or subtrees bypassed without decode).
        skips: u64,
    },
    /// The LFM metadata journal appended a record.
    JournalRecord {
        /// Record size in bytes.
        bytes: u64,
    },
    /// An armed fault plane delivered a fault.
    FaultInjected {
        /// Site pattern that matched, e.g. `lfm.read`.
        site: String,
        /// Outcome name (`error`, `torn`, `crash`, `latency`, `drop`).
        outcome: &'static str,
    },
    /// An RPC was retransmitted.
    Retry {
        /// Site, e.g. `net.ship`.
        site: &'static str,
        /// 1-based retransmission attempt.
        attempt: u64,
    },
    /// An RPC exhausted its retry budget.
    Timeout {
        /// Site, e.g. `net.ship`.
        site: &'static str,
        /// Attempts made before giving up.
        attempts: u64,
    },
    /// The cluster router rerouted a sub-query to a replica mid-query.
    Failover {
        /// Study whose sub-query was rerouted.
        study: i64,
        /// Shard the sub-query was abandoned on.
        from_shard: u64,
        /// Replica shard the sub-query was retried on.
        to_shard: u64,
    },
    /// A shard was marked unavailable (injected kill or health check).
    ShardDown {
        /// The downed shard.
        shard: u64,
    },
    /// The placement catalog was rebuilt after an add/remove-shard.
    Rebalance {
        /// Live shards after the rebuild.
        shards: u64,
        /// Studies whose replica set changed.
        moved: u64,
    },
    /// A root span met the slow-query threshold.
    SlowQuery {
        /// Root span name.
        name: String,
        /// Query duration in microseconds.
        micros: u64,
    },
    /// A crash dump was captured at this point.
    CrashDump {
        /// Faulted site.
        site: String,
    },
    /// Free-form instrumentation point.
    Custom {
        /// Event name (static so hot paths don't allocate for it).
        name: &'static str,
        /// Short detail string.
        detail: String,
    },
}

impl EventKind {
    /// Stable lowercase label for exports (`span_open`, `page_read`, …).
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanOpen { .. } => "span_open",
            EventKind::SpanClose { .. } => "span_close",
            EventKind::PageRead { .. } => "page_read",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheEvict { .. } => "cache_evict",
            EventKind::CompressedScan { .. } => "compressed_scan",
            EventKind::JournalRecord { .. } => "journal_record",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::Retry { .. } => "retry",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Failover { .. } => "failover",
            EventKind::ShardDown { .. } => "shard_down",
            EventKind::Rebalance { .. } => "rebalance",
            EventKind::SlowQuery { .. } => "slow_query",
            EventKind::CrashDump { .. } => "crash_dump",
            EventKind::Custom { .. } => "custom",
        }
    }
}

/// One journal entry: monotone sequence number, timestamp, causal
/// context, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone per-process sequence number (gaps mean eviction).
    pub seq: u64,
    /// Microseconds since the process trace epoch.
    pub micros: u64,
    /// Owning trace id, or 0 when recorded outside any trace.
    pub trace: u64,
    /// Recording thread's ordinal.
    pub thread: u64,
    /// Payload.
    pub kind: EventKind,
}

struct Journal {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

static JOURNAL: Mutex<Journal> =
    Mutex::new(Journal { events: VecDeque::new(), next_seq: 0, dropped: 0 });
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_JOURNAL_CAPACITY);
static SLOW_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_QUERY_MICROS);

static SLOW_LOG: Mutex<VecDeque<SlowQuery>> = Mutex::new(VecDeque::new());
static CRASH_DUMPS: Mutex<VecDeque<CrashDump>> = Mutex::new(VecDeque::new());

/// Appends one event to the journal.  No-op while recording is
/// disabled; evicts the oldest entry at capacity.
pub fn record(kind: EventKind) {
    if !crate::enabled() {
        return;
    }
    let event = Event {
        seq: 0,
        micros: context::now_micros(),
        trace: context::current_raw(),
        thread: context::thread_ordinal(),
        kind,
    };
    let capacity = CAPACITY.load(Ordering::Relaxed).max(1);
    let mut journal = lock_or_recover(&JOURNAL);
    let mut event = event;
    event.seq = journal.next_seq;
    journal.next_seq += 1;
    while journal.events.len() >= capacity {
        journal.events.pop_front();
        journal.dropped += 1;
    }
    journal.events.push_back(event);
}

pub(crate) fn span_opened(name: Cow<'static, str>) {
    record(EventKind::SpanOpen { name });
}

pub(crate) fn span_closed(name: Cow<'static, str>, micros: u64) {
    record(EventKind::SpanClose { name, micros });
}

/// Records an LFM page read (`pages` distinct pages over `extents`
/// contiguous extents).
pub fn page_read(pages: u64, extents: u64) {
    record(EventKind::PageRead { pages, extents });
}

/// Records a page-cache hit.
pub fn cache_hit(page: u64) {
    record(EventKind::CacheHit { page });
}

/// Records a page-cache miss.
pub fn cache_miss(page: u64) {
    record(EventKind::CacheMiss { page });
}

/// Records a page-cache eviction.
pub fn cache_evict(page: u64) {
    record(EventKind::CacheEvict { page });
}

/// Records a compressed-tablespace scan of long field `field` touching
/// `pages` compact pages with `skips` galloping skip-jumps.
pub fn compressed_scan(field: i64, pages: u64, skips: u64) {
    record(EventKind::CompressedScan { field, pages, skips });
}

/// Records an LFM metadata-journal append of `bytes` bytes.
pub fn journal_record(bytes: u64) {
    record(EventKind::JournalRecord { bytes });
}

/// Records an injected fault at `site` with the given outcome name.
pub fn fault_injected(site: &str, outcome: &'static str) {
    record(EventKind::FaultInjected { site: site.to_string(), outcome });
}

/// Records an RPC retransmission.
pub fn retry(site: &'static str, attempt: u64) {
    record(EventKind::Retry { site, attempt });
}

/// Records an exhausted RPC retry budget.
pub fn timeout(site: &'static str, attempts: u64) {
    record(EventKind::Timeout { site, attempts });
}

/// Records a mid-query failover of `study`'s sub-query between shards.
pub fn failover(study: i64, from_shard: u64, to_shard: u64) {
    record(EventKind::Failover { study, from_shard, to_shard });
}

/// Records a shard being marked unavailable.
pub fn shard_down(shard: u64) {
    record(EventKind::ShardDown { shard });
}

/// Records a placement-catalog rebuild over `shards` live shards that
/// moved `moved` study replica sets.
pub fn rebalance(shards: u64, moved: u64) {
    record(EventKind::Rebalance { shards, moved });
}

/// Records a free-form event.
pub fn custom(name: &'static str, detail: &str) {
    record(EventKind::Custom { name, detail: detail.to_string() });
}

/// Snapshot of the journal, oldest first.
pub fn events() -> Vec<Event> {
    lock_or_recover(&JOURNAL).events.iter().cloned().collect()
}

/// Journal entries belonging to one trace, oldest first.
pub fn events_for_trace(trace: u64) -> Vec<Event> {
    lock_or_recover(&JOURNAL).events.iter().filter(|e| e.trace == trace).cloned().collect()
}

/// Events evicted from the ring so far (journal pressure indicator).
pub fn dropped() -> u64 {
    lock_or_recover(&JOURNAL).dropped
}

/// Empties the journal (test isolation).  Sequence numbers keep
/// counting; the drop counter resets.
pub fn clear() {
    let mut journal = lock_or_recover(&JOURNAL);
    journal.events.clear();
    journal.dropped = 0;
}

/// Bounds the event ring to `capacity` entries (clamped to ≥ 1).
/// Excess entries are evicted on the next append.
pub fn set_journal_capacity(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
}

/// Current journal bound.
pub fn journal_capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// A captured slow query: its finished EXPLAIN ANALYZE tree plus the
/// journal slice that belongs to its trace.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Owning trace id.
    pub trace: u64,
    /// Query duration in microseconds.
    pub micros: u64,
    /// The finished root span tree.
    pub tree: SpanNode,
    /// Journal events recorded under this trace (bounded by the ring).
    pub events: Vec<Event>,
}

/// Sets the slow-query threshold.  Roots at least this long are
/// captured; `Duration::ZERO` captures every query,
/// `Duration::MAX` effectively disables the log.
pub fn set_slow_query_threshold(threshold: Duration) {
    let micros = u64::try_from(threshold.as_micros()).unwrap_or(u64::MAX);
    SLOW_THRESHOLD.store(micros, Ordering::Relaxed);
}

/// Current slow-query threshold in microseconds.
pub fn slow_query_threshold_micros() -> u64 {
    SLOW_THRESHOLD.load(Ordering::Relaxed)
}

/// Retained slow-query captures, oldest first (at most
/// [`SLOW_LOG_CAPACITY`]).
pub fn slow_queries() -> Vec<SlowQuery> {
    lock_or_recover(&SLOW_LOG).iter().cloned().collect()
}

/// Empties the slow-query log (test isolation).
pub fn clear_slow_queries() {
    lock_or_recover(&SLOW_LOG).clear();
}

/// Called by the tracer when a root span finishes: journals the
/// `slow_query` event and captures the tree + event slice when the
/// threshold is met.
pub(crate) fn note_root_finished(node: &SpanNode) {
    let micros = (node.seconds * 1e6) as u64;
    if micros < SLOW_THRESHOLD.load(Ordering::Relaxed) {
        return;
    }
    record(EventKind::SlowQuery { name: node.name.to_string(), micros });
    let capture = SlowQuery {
        trace: node.trace_id,
        micros,
        tree: node.clone(),
        events: events_for_trace(node.trace_id),
    };
    let mut log = lock_or_recover(&SLOW_LOG);
    if log.len() >= SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(capture);
}

/// A flight-recorder dump captured when an armed fault plane delivered
/// a crash: the whole event ring plus every live span stack at the
/// moment of the crash.
#[derive(Debug, Clone)]
pub struct CrashDump {
    /// Faulted site, e.g. `lfm.meta.write`.
    pub site: String,
    /// Microseconds since the process trace epoch.
    pub micros: u64,
    /// Trace current on the crashing thread (0 = none).
    pub trace: u64,
    /// Crashing thread's ordinal.
    pub thread: u64,
    /// The event ring at the moment of the crash, oldest first.
    pub events: Vec<Event>,
    /// Live span stacks (outermost first), one per active thread.
    pub live_spans: Vec<Vec<String>>,
}

/// Captures a crash dump: journals a `crash_dump` event, then snapshots
/// the event ring and every live span stack.  Called by the
/// `qbism-fault` crash path; bounded at [`CRASH_DUMP_CAPACITY`].
pub fn capture_crash_dump(site: &str) {
    if !crate::enabled() {
        return;
    }
    record(EventKind::CrashDump { site: site.to_string() });
    let dump = CrashDump {
        site: site.to_string(),
        micros: context::now_micros(),
        trace: context::current_raw(),
        thread: context::thread_ordinal(),
        events: events(),
        live_spans: crate::profile::live_stacks(),
    };
    crate::global().counter("qbism_obs_crash_dumps_total").inc();
    let mut dumps = lock_or_recover(&CRASH_DUMPS);
    if dumps.len() >= CRASH_DUMP_CAPACITY {
        dumps.pop_front();
    }
    dumps.push_back(dump);
}

/// Retained crash dumps, oldest first.
pub fn crash_dumps() -> Vec<CrashDump> {
    lock_or_recover(&CRASH_DUMPS).iter().cloned().collect()
}

/// The most recent crash dump, if any.
pub fn last_crash_dump() -> Option<CrashDump> {
    lock_or_recover(&CRASH_DUMPS).back().cloned()
}

/// Empties the crash-dump store (test isolation).
pub fn clear_crash_dumps() {
    lock_or_recover(&CRASH_DUMPS).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace;

    #[test]
    fn journal_records_and_bounds() {
        let _g = crate::test_lock();
        clear();
        let before = journal_capacity();
        set_journal_capacity(8);
        for i in 0..20 {
            page_read(i, 1);
        }
        let evs = events();
        assert_eq!(evs.len(), 8);
        assert!(dropped() >= 12);
        // Oldest were evicted: the survivors are the last 8 appends.
        match &evs[0].kind {
            EventKind::PageRead { pages, .. } => assert_eq!(*pages, 12),
            other => panic!("unexpected {other:?}"),
        }
        // Sequence numbers are monotone and dense within the window.
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        set_journal_capacity(before);
        clear();
    }

    #[test]
    fn events_carry_the_current_trace() {
        let _g = crate::test_lock();
        clear();
        trace::clear();
        page_read(1, 1); // outside any trace
        let trace_id = {
            let _root = trace::root("query.event_ctx");
            cache_hit(42);
            context::current_raw()
        };
        assert!(trace_id != 0);
        let evs = events();
        let outside = evs.iter().find(|e| matches!(e.kind, EventKind::PageRead { .. }));
        assert_eq!(outside.map(|e| e.trace), Some(0));
        let inside: Vec<_> = events_for_trace(trace_id);
        assert!(
            inside.iter().any(|e| matches!(e.kind, EventKind::CacheHit { page: 42 })),
            "cache hit attributed to the trace: {inside:?}"
        );
        assert!(
            inside.iter().any(
                |e| matches!(&e.kind, EventKind::SpanOpen { name } if name == "query.event_ctx")
            ),
            "span open journaled under the trace"
        );
        clear();
    }

    #[test]
    fn disabled_recording_journals_nothing() {
        let _g = crate::test_lock();
        clear();
        crate::set_enabled(false);
        page_read(1, 1);
        crate::set_enabled(true);
        assert!(events().is_empty());
    }

    #[test]
    fn slow_query_threshold_captures_tree_and_events() {
        let _g = crate::test_lock();
        clear();
        clear_slow_queries();
        trace::clear();
        let before = slow_query_threshold_micros();
        set_slow_query_threshold(Duration::ZERO);
        {
            let _root = trace::root("query.slow");
            page_read(3, 2);
        }
        set_slow_query_threshold(Duration::from_micros(before));
        let log = slow_queries();
        assert_eq!(log.len(), 1);
        let slow = &log[0];
        assert_eq!(slow.tree.name, "query.slow");
        assert!(slow.trace != 0);
        assert!(slow
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::PageRead { pages: 3, extents: 2 })));
        // The slow_query event itself landed in the journal.
        assert!(events()
            .iter()
            .any(|e| matches!(&e.kind, EventKind::SlowQuery { name, .. } if name == "query.slow")));
        clear_slow_queries();
        clear();
    }

    #[test]
    fn fast_queries_are_not_captured() {
        let _g = crate::test_lock();
        clear_slow_queries();
        trace::clear();
        {
            let _root = trace::root("query.fast");
        }
        assert!(slow_queries().is_empty(), "default 250ms threshold skips a µs query");
    }

    #[test]
    fn crash_dump_snapshots_ring_and_live_stacks() {
        let _g = crate::test_lock();
        clear();
        clear_crash_dumps();
        trace::clear();
        {
            let _root = trace::root("query.crashing");
            let _inner = trace::span("lfm.read");
            fault_injected("lfm.read", "crash");
            capture_crash_dump("lfm.read");
        }
        let dump = last_crash_dump().expect("dump captured");
        assert_eq!(dump.site, "lfm.read");
        assert!(dump.trace != 0, "dump tied to the crashing query's trace");
        assert!(dump
            .events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::FaultInjected { site, outcome } if site == "lfm.read" && *outcome == "crash")));
        let stack = dump
            .live_spans
            .iter()
            .find(|s| s.contains(&"query.crashing".to_string()))
            .expect("crashing thread's live stack present");
        assert_eq!(stack.last().map(String::as_str), Some("lfm.read"));
        clear_crash_dumps();
        clear();
    }

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(EventKind::PageRead { pages: 1, extents: 1 }.label(), "page_read");
        assert_eq!(EventKind::SpanOpen { name: "x".into() }.label(), "span_open");
        assert_eq!(
            EventKind::FaultInjected { site: "a.b".into(), outcome: "torn" }.label(),
            "fault_injected"
        );
    }
}
