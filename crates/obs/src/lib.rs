//! Observability for the QBISM workspace: metrics, spans, exports.
//!
//! The paper's whole evaluation is cost accounting — Tables 3 and 4 and
//! Figure 4 are columns of LFM 4 KiB I/Os, tuple scans, RPC messages and
//! simulated real time.  This crate makes those costs *first-class and
//! cumulative* instead of per-call throwaways: a process-wide
//! [`Registry`] of atomic counters, gauges and fixed-bucket latency
//! histograms, plus a lightweight nestable [`trace`] span facility that
//! turns each query into an `EXPLAIN ANALYZE`-style tree of operators
//! with their measured costs.
//!
//! # Metric name ↔ paper column map
//!
//! | metric | paper result it generalizes |
//! |---|---|
//! | `qbism_lfm_pages_read_total` | Table 3/4 "LFM Disk I/Os (4KB)" (query side) |
//! | `qbism_lfm_pages_written_total` | Table 3 load-time I/O column |
//! | `qbism_lfm_extents_read_total` | seek count feeding the §5.2 disk model |
//! | `qbism_lfm_read_calls_total` / `qbism_lfm_write_calls_total` | LFM call volume (§5.1) |
//! | `qbism_lfm_sim_disk_micros_total` | Table 3 "DB Time (real)" disk component |
//! | `qbism_lfm_buddy_allocs_total` / `_frees_total` / `_splits_total` / `_coalesces_total` | §5.1 buddy scheme behaviour |
//! | `qbism_exec_rows_total` | Table 3 "Tuples Scanned" |
//! | `qbism_exec_selects_total` | query volume over the §3.4 SQL surface |
//! | `qbism_udf_calls_total{udf=...}` | §3.2 operator invocations (extractVoxels, intersection, …) |
//! | `qbism_query_seconds{class=...}` | Table 3/4 per-query-class end-to-end DB time |
//! | `qbism_query_total{class=...}` | per-class query counts |
//! | `qbism_query_wire_bytes_total` | Table 3 answer-size column (bytes shipped to DX) |
//! | `qbism_net_messages_total` / `qbism_net_wire_bytes_total` / `qbism_net_sim_micros_total` | Table 3 "IPC Messages" and network "Answer Time (real)" |
//! | `qbism_faults_injected_total{site=...,outcome=...}` | faults delivered by an armed `qbism-fault` plane |
//! | `qbism_lfm_journal_records_total` / `qbism_lfm_journal_bytes_total` | LFM metadata write-ahead journal traffic |
//! | `qbism_lfm_checkpoints_total` / `qbism_lfm_recoveries_total` | LFM snapshot checkpoints and crash recoveries |
//! | `qbism_lfm_fault_latency_micros_total` | injected device latency (kept out of the Table 3/4 I/O counters) |
//! | `qbism_net_retries_total` / `qbism_net_timeouts_total` | RPC retransmissions and exhausted retry budgets under injected loss |
//!
//! # Reading the span tree
//!
//! Every `MedicalServer` query opens a root span; the executor, the UDF
//! operators and the LFM add child spans with their wall time and
//! key-value fields (`rows_in`, `rows_out`, `pages`, `extents`, …).
//! Finished roots land in a bounded ring of recent spans
//! ([`trace::last_root`], [`trace::recent_roots`]) and render as a tree:
//!
//! ```text
//! query.band_in_structure                                   3.1ms  study_id=1
//! └─ db.execute                                             3.0ms  sql=select …
//!    ├─ sql.parse                                          12.4µs
//!    └─ exec.select                                         2.9ms  rows_out=1
//!       ├─ exec.scan warpedvolume                          41.0µs  rows_in=2 rows_out=1
//!       ├─ exec.hash_join intensityband                    55.1µs  rows_in=12 rows_out=1
//!       └─ exec.project                                     2.7ms  rows=1
//!          └─ udf.extractvoxels                             2.6ms
//!             └─ lfm.read                                 801.0µs  pages=29 extents=25
//! ```
//!
//! # Scraping
//!
//! [`Registry::render_prometheus`] emits the Prometheus text exposition
//! format (serve it from any HTTP endpoint, or dump it after a batch
//! run); [`Registry::snapshot_json`] is the same data as one JSON
//! object for programmatic diffing.  Counters are monotone and
//! **wrap** on `u64` overflow, matching Prometheus counter semantics of
//! "rate over resets".
//!
//! Instrumentation is on by default and costs one relaxed atomic load
//! when disabled via [`set_enabled`] — the harness that proves the <5 %
//! overhead bound (`BENCH_observability.json`) flips exactly this
//! switch.
//!
//! # The flight recorder
//!
//! Beyond aggregate metrics and span trees, the crate is a full flight
//! recorder:
//!
//! * [`context`] — every query root mints a [`TraceId`]; finished trees
//!   carry preorder [`SpanId`]s with parent links, and
//!   [`context::fork`] carries the context across `qbism-parallel`
//!   workers so fanned-out queries produce the same tree as inline
//!   execution;
//! * [`event`] — a bounded ring of typed events (span open/close, page
//!   reads, cache hits/evictions, injected faults, retries), plus the
//!   slow-query log and fault-crash dumps;
//! * [`export`] — JSONL event dumps and `about:tracing`-loadable
//!   Chrome trace JSON;
//! * [`profile`] — a dependency-free sampling profiler over the live
//!   span stacks with folded-stack (flamegraph) output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod event;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use context::{current_trace, SpanId, TraceId};
pub use event::{CrashDump, Event, EventKind, SlowQuery};
pub use metrics::{global, Counter, Gauge, Histogram, MetricError, Registry};
pub use profile::{Profile, Profiler};
pub use trace::SpanNode;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether instrumentation is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables all recording (counters, histograms and
/// spans).  Handles stay valid; disabled operations are no-ops.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Serializes tests that read or toggle process-global state (the
/// enabled flag, the global registry, the span ring).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
