//! DBMS substrate benchmarks: parser throughput and join strategies —
//! the relational work under every QBISM query.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism_starburst::{Database, Value};

fn seeded_db(rows: i64) -> Database {
    let mut db = Database::new(1 << 20).expect("db");
    db.execute("create table patient (patientId int, name string, age int)").expect("ddl");
    db.execute("create table study (studyId int, patientId int, modality string)").expect("ddl");
    for i in 0..rows {
        db.insert_row(
            "patient",
            vec![Value::Int(i), Value::Str(format!("p{i}")), Value::Int(20 + i % 60)],
        )
        .expect("insert");
        for j in 0..3 {
            db.insert_row(
                "study",
                vec![
                    Value::Int(i * 3 + j),
                    Value::Int(i),
                    Value::Str(if j == 0 { "MRI" } else { "PET" }.into()),
                ],
            )
            .expect("insert");
        }
    }
    db
}

fn bench_parser(c: &mut Criterion) {
    let sql =
        "select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz, a.atlasId, p.name, p.patientId, rv.date
               from atlas a, rawVolume rv, warpedVolume wv, patient p
               where a.atlasId = wv.atlasId and wv.studyId = rv.studyId and
                     rv.patientId = p.patientId and rv.studyId = 53 and a.atlasName = 'Talairach'";
    c.bench_function("parse_section34_query", |b| {
        b.iter(|| black_box(qbism_starburst::parse_statement(sql).expect("parses")))
    });
}

fn bench_joins(c: &mut Criterion) {
    let db = seeded_db(2000);
    let mut group = c.benchmark_group("joins_2000x6000");
    group.sample_size(20);
    group.bench_function("hash_join", |b| {
        b.iter(|| {
            black_box(
                db.query("select count(*) from patient p, study s where p.patientId = s.patientId")
                    .expect("join"),
            )
        })
    });
    group.bench_function("hash_join_with_filter", |b| {
        b.iter(|| {
            black_box(
                db.query(
                    "select count(*) from patient p, study s
                     where p.patientId = s.patientId and p.age > 50 and s.modality = 'PET'",
                )
                .expect("join"),
            )
        })
    });
    group.finish();
}

fn bench_sort_and_aggregate(c: &mut Criterion) {
    let db = seeded_db(2000);
    let mut group = c.benchmark_group("sort_aggregate");
    group.sample_size(20);
    group.bench_function("order_by_limit", |b| {
        b.iter(|| {
            black_box(
                db.query("select p.name from patient p order by p.age desc, p.name limit 10")
                    .expect("sort"),
            )
        })
    });
    group.bench_function("aggregates", |b| {
        b.iter(|| {
            black_box(
                db.query("select count(*), avg(p.age), min(p.age), max(p.age) from patient p")
                    .expect("agg"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parser, bench_joins, bench_sort_and_aggregate);
criterion_main!(benches);
