//! End-to-end query benchmarks: the Table 3 and Table 4 workloads at a
//! bench-friendly grid size (native wall times; the simulated-1994
//! numbers come from `tablegen`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism::{QbismConfig, QbismSystem};

fn config() -> QbismConfig {
    QbismConfig {
        atlas_bits: 6,
        pet_studies: 5,
        mri_studies: 1,
        device_capacity: 1 << 28,
        ..QbismConfig::paper_scale()
    }
}

fn bench_single_study(c: &mut Criterion) {
    let sys = QbismSystem::install(&config()).expect("install");
    let study = sys.pet_study_ids[0];
    let mut group = c.benchmark_group("single_study_queries_64");
    group.sample_size(20);
    group.bench_function("q1_full_study", |b| {
        b.iter(|| black_box(sys.server.full_study(study).expect("q1")))
    });
    group.bench_function("q2_box", |b| {
        b.iter(|| black_box(sys.server.box_data(study, [15, 15, 15], [50, 50, 50]).expect("q2")))
    });
    group.bench_function("q3_ntal", |b| {
        b.iter(|| black_box(sys.server.structure_data(study, "ntal").expect("q3")))
    });
    group.bench_function("q4_hemisphere", |b| {
        b.iter(|| black_box(sys.server.structure_data(study, "ntal1").expect("q4")))
    });
    group.bench_function("q5_band", |b| {
        b.iter(|| black_box(sys.server.band_data(study, 128, 159).expect("q5")))
    });
    group.bench_function("q6_band_in_structure", |b| {
        b.iter(|| black_box(sys.server.band_in_structure(study, 128, 159, "ntal1").expect("q6")))
    });
    group.finish();
}

fn bench_multi_study(c: &mut Criterion) {
    let sys = QbismSystem::install(&config()).expect("install");
    let ids = sys.pet_study_ids.clone();
    let mut group = c.benchmark_group("multi_study_64");
    group.sample_size(20);
    group.bench_function("five_way_band_intersection", |b| {
        b.iter(|| black_box(sys.server.multi_study_band_region(&ids, 128, 159).expect("t4")))
    });
    group.bench_function("population_average_ntal", |b| {
        b.iter(|| black_box(sys.server.population_average(&ids, "ntal").expect("avg")))
    });
    group.finish();
}

fn bench_catalog_query(c: &mut Criterion) {
    // The pure relational side: the Section 3.4 catalog join.
    let sys = QbismSystem::install(&config()).expect("install");
    let study = sys.pet_study_ids[0];
    c.bench_function("catalog_join_query", |b| {
        b.iter(|| black_box(sys.server.atlas_info(study).expect("info")))
    });
}

criterion_group!(benches, bench_single_study, bench_multi_study, bench_catalog_query);
criterion_main!(benches);
