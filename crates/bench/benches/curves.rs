//! Curve micro-benchmarks: the `O(n)` conversion cost the paper cites
//! for both curves, plus run-count quality per curve on a brain REGION.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism_sfc::{CurveKind, SpaceFillingCurve};

fn bench_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_conversions_128");
    for kind in CurveKind::ALL {
        let curve = kind.curve(3, 7);
        group.bench_function(format!("{kind}_index_of"), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 37) & 127;
                black_box(curve.index_of(&[i, (i * 3) & 127, (i * 7) & 127]))
            })
        });
        group.bench_function(format!("{kind}_coords_of"), |b| {
            let mut id = 0u64;
            let mut out = [0u32; 3];
            b.iter(|| {
                id = (id + 40_503) & (2_097_152 - 1);
                curve.coords_of(id, &mut out);
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_bulk_relayout(c: &mut Criterion) {
    // The load-time cost of the paper's choice: sorting a study into
    // Hilbert order (vs leaving it in scanline order).
    let mut group = c.benchmark_group("volume_relayout_64");
    group.sample_size(10);
    let geom = qbism_region::GridGeometry::new(CurveKind::Scanline, 3, 6);
    let vol = qbism_volume::Volume::from_fn3(geom, |x, y, z| (x ^ y ^ z) as u8);
    for kind in [CurveKind::Hilbert, CurveKind::Morton] {
        group.bench_function(format!("to_{kind}"), |b| b.iter(|| black_box(vol.relayout(kind))));
    }
    group.finish();
}

criterion_group!(benches, bench_conversions, bench_bulk_relayout);
criterion_main!(benches);
