//! REGION operation benchmarks: the merge-scan spatial operators and the
//! octant decompositions they replaced.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism_bench::population::region_population;
use qbism_region::{intersect_all, OctantKind, Region};

fn brain_regions() -> Vec<Region> {
    region_population(6, 2, 0, 7).into_iter().map(|r| r.region).collect()
}

fn bench_pairwise_ops(c: &mut Criterion) {
    let regions = brain_regions();
    let a = &regions[1]; // ntal1 (hemisphere)
    let b = &regions[3]; // ntal
    let band = regions.iter().rev().find(|r| r.run_count() > 100).expect("a busy band");
    let mut group = c.benchmark_group("region_ops");
    group.bench_function("intersect_structure_band", |bch| {
        bch.iter(|| black_box(a.intersect(band)))
    });
    group.bench_function("union_structure_band", |bch| bch.iter(|| black_box(a.union(band))));
    group.bench_function("difference_structure_band", |bch| {
        bch.iter(|| black_box(a.difference(band)))
    });
    group.bench_function("contains_structure_structure", |bch| {
        bch.iter(|| black_box(a.contains_region(b)))
    });
    group.finish();
}

fn bench_nway(c: &mut Criterion) {
    // Table 4's workload shape: intersect several band regions at once,
    // k-way scan vs pairwise fold.
    let regions = brain_regions();
    let bands: Vec<&Region> = regions.iter().skip(11).take(5).collect();
    let mut group = c.benchmark_group("nway_intersection");
    group.bench_function("kway_scan_5", |b| {
        b.iter(|| black_box(intersect_all(&bands).expect("non-empty input")))
    });
    group.bench_function("pairwise_fold_5", |b| {
        b.iter(|| {
            let mut acc = bands[0].clone();
            for r in &bands[1..] {
                acc = acc.intersect(r);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_octants(c: &mut Criterion) {
    let regions = brain_regions();
    let hemisphere = &regions[1];
    let mut group = c.benchmark_group("octant_decomposition");
    group.bench_function("cubic", |b| {
        b.iter(|| black_box(hemisphere.octant_count(OctantKind::Cubic)))
    });
    group.bench_function("oblong", |b| {
        b.iter(|| black_box(hemisphere.octant_count(OctantKind::Oblong)))
    });
    group.finish();
}

fn bench_approximation(c: &mut Criterion) {
    let regions = brain_regions();
    let band = regions.iter().rev().find(|r| r.run_count() > 100).expect("busy band").clone();
    let mut group = c.benchmark_group("approximation");
    group.bench_function("mingap_8", |b| b.iter(|| black_box(band.approximate_mingap(8))));
    group.bench_function("min_octant_4", |b| b.iter(|| black_box(band.approximate_min_octant(4))));
    group.finish();
}

criterion_group!(benches, bench_pairwise_ops, bench_nway, bench_octants, bench_approximation);
criterion_main!(benches);
