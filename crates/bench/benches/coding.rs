//! Codec benchmarks on real delta data: the codes Figure 4 compares,
//! plus the geometric-distribution codes the paper rejected.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism_bench::population::region_population;
use qbism_coding::{EliasDelta, EliasGamma, Golomb, IntCodec, Rice};
use qbism_region::RegionCodec;

fn real_deltas() -> Vec<u64> {
    // Delta lengths of a real hemisphere region — the paper's workload.
    let pop = region_population(6, 1, 0, 7);
    pop[1].region.delta_lengths()
}

fn bench_int_codecs(c: &mut Criterion) {
    let deltas = real_deltas();
    let mut group = c.benchmark_group("int_codecs");
    group.throughput(criterion::Throughput::Elements(deltas.len() as u64));
    let codecs: Vec<(&str, Box<dyn IntCodec>)> = vec![
        ("elias_gamma", Box::new(EliasGamma)),
        ("elias_delta", Box::new(EliasDelta)),
        ("golomb_8", Box::new(Golomb::new(8))),
        ("rice_3", Box::new(Rice::new(3))),
    ];
    for (name, codec) in &codecs {
        group.bench_function(format!("{name}_encode"), |b| {
            b.iter(|| black_box(codec.encode_all(&deltas).expect("encodes")))
        });
        let bytes = codec.encode_all(&deltas).expect("encodes");
        group.bench_function(format!("{name}_decode"), |b| {
            b.iter(|| black_box(codec.decode_all(&bytes, deltas.len()).expect("decodes")))
        });
    }
    group.finish();
}

fn bench_region_codecs(c: &mut Criterion) {
    let pop = region_population(6, 1, 0, 7);
    let region = &pop[1].region;
    let mut group = c.benchmark_group("region_codecs");
    for codec in RegionCodec::ALL {
        group.bench_function(format!("{}_encode", codec.name()), |b| {
            b.iter(|| black_box(codec.encode(region).expect("encodes")))
        });
        let bytes = codec.encode(region).expect("encodes");
        group.bench_function(format!("{}_decode", codec.name()), |b| {
            b.iter(|| black_box(RegionCodec::decode(&bytes).expect("decodes")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_int_codecs, bench_region_codecs);
criterion_main!(benches);
