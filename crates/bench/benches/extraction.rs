//! Extraction ablation: the paper's Section 4.1 design decision.
//!
//! Storing the VOLUME in Hilbert order means a spatially compact REGION
//! reads few pages; scanline order shatters the same REGION across many
//! pages.  This bench extracts the same structure from volumes stored in
//! each order and reports both wall time and page counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qbism_bench::population::{region_population, sample_field};
use qbism_lfm::LongFieldManager;
use qbism_phantom::{build_atlas, PetField};
use qbism_region::GridGeometry;
use qbism_sfc::CurveKind;

fn bench_layouts(c: &mut Criterion) {
    let bits = 6;
    let truth_geom = GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let atlas = build_atlas(truth_geom);
    let field = PetField::new(&atlas, 7, 4);
    let hvol = sample_field(truth_geom, &field);
    let structure = atlas.structure("ntal").expect("exists");
    let mut group = c.benchmark_group("extraction_layout");
    let mut printed = Vec::new();
    for kind in CurveKind::ALL {
        let vol = hvol.relayout(kind);
        let region = structure.region.to_curve(kind);
        let mut lfm = LongFieldManager::new(1 << 22, 4096).expect("device");
        let id = lfm.create(vol.values()).expect("store volume");
        lfm.reset_stats();
        // One measured extraction for the page counts.
        let pieces: Vec<(u64, u64)> = region.runs().iter().map(|r| (r.start, r.len())).collect();
        let mut out = Vec::new();
        lfm.read_pieces_into(id, &pieces, &mut out).expect("extract");
        printed.push(format!(
            "{kind}: {} runs -> {} pages, {} extents",
            region.run_count(),
            lfm.stats().pages_read,
            lfm.stats().extents_read
        ));
        group.bench_function(format!("extract_ntal_{kind}"), |b| {
            b.iter(|| {
                let mut buf = Vec::with_capacity(out.len());
                lfm.read_pieces_into(id, &pieces, &mut buf).expect("extract");
                black_box(buf)
            })
        });
    }
    group.finish();
    for line in printed {
        println!("layout ablation — {line}");
    }
}

fn bench_in_memory_extract(c: &mut Criterion) {
    // The pure CPU side of EXTRACT_DATA (no device).
    let pop = region_population(6, 1, 0, 7);
    let geom = pop[0].region.geometry();
    let atlas = build_atlas(geom);
    let vol = sample_field(geom, &PetField::new(&atlas, 9, 3));
    let hemisphere = &pop[1].region;
    c.bench_function("extract_hemisphere_in_memory", |b| {
        b.iter(|| black_box(vol.extract(hemisphere).expect("geometry matches")))
    });
}

criterion_group!(benches, bench_layouts, bench_in_memory_extract);
criterion_main!(benches);
