//! Sharded warehouse throughput and failover recovery: population
//! aggregates against a [`ClusterWarehouse`] at 1/2/4/8 shards, plus
//! the wall-clock cost of losing a replica mid-query.
//!
//! **Why this speeds up on any machine**: each shard serves its
//! sub-queries through a single service lane, and the warehouse
//! *replays* a scaled slice of every sub-query's simulated 1994
//! database seconds inside that lane (`replay_scale × sim_db`, a real
//! sleep).  At one shard every study's sub-query serializes on one
//! lane; at eight, placement spreads the studies over eight lanes the
//! router's fan-out keeps busy.  The speedup therefore measures
//! scatter/gather over independent shard lanes — not host cores — and
//! every answer is still checked against the single-node reference.
//!
//! The recovery measurement arms a `cluster.shard.kill` fault on the
//! first kill-site pass and times the same query: the delta over the
//! fault-free baseline is what one mid-query failover costs, and the
//! answer must stay byte-identical.
//!
//! `tablegen` does not run this (it is wall-clock, not a paper table);
//! the `cluster` binary writes `BENCH_cluster.json` for CI.

use qbism::QbismConfig;
use qbism_cluster::ClusterWarehouse;
use qbism_fault::{sites, FaultOutcome, FaultPlane, Trigger};
use std::time::Instant;

/// Throughput at one shard count.
#[derive(Debug, Clone, Copy)]
pub struct ShardRun {
    /// Shards serving the placement catalog.
    pub shards: usize,
    /// Wall seconds to drain the whole workload.
    pub wall_seconds: f64,
    /// Population queries per wall second.
    pub qps: f64,
}

/// Wall-clock cost of one mid-query replica loss at the widest sweep
/// point, answers checked for exactness.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Median fault-free single-query wall seconds.
    pub baseline_seconds: f64,
    /// Median wall seconds for the same query with a kill injected on
    /// the first kill-site pass.
    pub faulted_seconds: f64,
    /// Failovers each kill forced (≥ 1).
    pub failovers: u64,
}

impl RecoveryReport {
    /// Added wall-clock cost of the failover (clamped at zero: on a
    /// noisy host the retried sub-query can hide inside the fan-out).
    pub fn recovery_seconds(&self) -> f64 {
        (self.faulted_seconds - self.baseline_seconds).max(0.0)
    }
}

/// The full sweep report.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Grid side (voxels per axis).
    pub side: u32,
    /// Studies placed on the warehouse.
    pub studies: usize,
    /// Replicas per study.
    pub replication: usize,
    /// Population queries per sweep point.
    pub items: usize,
    /// Fraction of each sub-query's simulated database seconds
    /// replayed inside its shard's service lane.
    pub replay_scale: f64,
    /// One entry per shard count, in sweep order (first is one shard).
    pub runs: Vec<ShardRun>,
    /// Failover cost at the widest sweep point.
    pub recovery: RecoveryReport,
}

impl ClusterReport {
    /// Speedup of `run` over the one-shard (first) sweep point.
    pub fn speedup(&self, run: &ShardRun) -> f64 {
        match self.runs.first() {
            Some(serial) if run.qps > 0.0 && serial.qps > 0.0 => run.qps / serial.qps,
            _ => 0.0,
        }
    }

    /// Speedup at the widest sweep point.
    pub fn peak_speedup(&self) -> f64 {
        self.runs.last().map(|r| self.speedup(r)).unwrap_or(0.0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Sharded warehouse, {}³ grid — {} population queries over {} studies, k={}\n\
             per-shard lane replay: {:.0} % of simulated 1994 database time\n\
             {:>8} {:>12} {:>10} {:>9}\n",
            self.side,
            self.items,
            self.studies,
            self.replication,
            self.replay_scale * 100.0,
            "shards",
            "wall (s)",
            "queries/s",
            "speedup",
        );
        for run in &self.runs {
            out.push_str(&format!(
                "{:>8} {:>12.3} {:>10.2} {:>8.2}x\n",
                run.shards,
                run.wall_seconds,
                run.qps,
                self.speedup(run),
            ));
        }
        out.push_str(&format!(
            "failover recovery at {} shards: baseline {:.3} s, with kill {:.3} s \
             (+{:.3} s, {} failover(s)), answer byte-identical\n",
            self.runs.last().map(|r| r.shards).unwrap_or(0),
            self.recovery.baseline_seconds,
            self.recovery.faulted_seconds,
            self.recovery.recovery_seconds(),
            self.recovery.failovers,
        ));
        out
    }

    /// Machine-readable report for `BENCH_cluster.json`.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"shards\": {}, \"wall_seconds\": {:.6}, \"qps\": {:.2}, \"speedup\": {:.3} }}",
                    r.shards,
                    r.wall_seconds,
                    r.qps,
                    self.speedup(r)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"cluster_warehouse\",\n  \
             \"workload\": \"population_average fanned over placement-directed shards\",\n  \
             \"design\": \"each shard replays replay_scale x simulated 1994 database seconds inside its single service lane; speedup comes from scattering studies over independent lanes, independent of host core count; every answer is checked against the single-node reference\",\n  \
             \"grid_side\": {},\n  \"studies\": {},\n  \"replication\": {},\n  \
             \"items\": {},\n  \"replay_scale\": {},\n  \
             \"peak_speedup\": {:.3},\n  \"runs\": [\n{}\n  ],\n  \
             \"recovery\": {{\n    \"baseline_seconds\": {:.6},\n    \
             \"faulted_seconds\": {:.6},\n    \"recovery_seconds\": {:.6},\n    \
             \"failovers\": {},\n    \"answer_exact\": true\n  }}\n}}\n",
            self.side,
            self.studies,
            self.replication,
            self.items,
            self.replay_scale,
            self.peak_speedup(),
            runs,
            self.recovery.baseline_seconds,
            self.recovery.faulted_seconds,
            self.recovery.recovery_seconds(),
            self.recovery.failovers,
        )
    }
}

/// Runs the sweep: installs a one-shard warehouse, then grows it
/// through `shard_counts` with [`ClusterWarehouse::add_shard`]
/// (exercising the rebalance path), draining the same population
/// workload at each membership.  Every answer is checked against the
/// single-node reference.  At the widest point, times one fault-free
/// query against the same query under an injected first-pass shard
/// kill and reports the delta as the failover recovery cost.
pub fn measure(
    config: &QbismConfig,
    shard_counts: &[usize],
    replication: usize,
    items: usize,
    replay_scale: f64,
) -> ClusterReport {
    let first = shard_counts.first().copied().unwrap_or(1).max(1);
    let mut warehouse =
        ClusterWarehouse::install(config, first, replication).expect("warehouse install");
    let studies: Vec<i64> = warehouse.studies().to_vec();
    warehouse.set_threads(studies.len().min(16));
    warehouse.set_replay_scale(replay_scale);

    // Single-node reference answer; the sweep checks every cluster
    // answer against it (voxel counts per item, full values once per
    // membership — divergence fails loudly).
    let reference =
        warehouse.reference_server().population_average(&studies, "ntal").expect("reference pop");

    let mut runs = Vec::with_capacity(shard_counts.len());
    for &target in shard_counts {
        let target = target.max(1);
        while warehouse.shard_count() < target {
            warehouse.add_shard().expect("grow warehouse");
        }
        assert_eq!(warehouse.shard_count(), target, "sweep shard counts must be non-decreasing");
        let probe = warehouse.population_average(&studies, "ntal").expect("probe under membership");
        assert_eq!(
            probe.data.values(),
            reference.data.values(),
            "answer diverged at {target} shards"
        );
        let start = Instant::now();
        for _ in 0..items.max(1) {
            let answer = warehouse.population_average(&studies, "ntal").expect("pop under sweep");
            assert!(answer.is_complete());
            assert_eq!(
                answer.data.voxel_count(),
                reference.data.voxel_count(),
                "answer diverged at {target} shards"
            );
        }
        let wall_seconds = start.elapsed().as_secs_f64();
        runs.push(ShardRun {
            shards: target,
            wall_seconds,
            qps: items.max(1) as f64 / wall_seconds.max(f64::EPSILON),
        });
    }

    // Recovery: median fault-free query time vs the median time of the
    // same query with the serving shard killed on the first kill-site
    // pass.  Medians of several runs, after a warmup, because the
    // failover's rerouting cost is small against host scheduling noise.
    const RECOVERY_RUNS: usize = 5;
    let median = |mut xs: Vec<f64>| -> f64 {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let baseline = warehouse.population_average(&studies, "ntal").expect("recovery warmup");
    let mut baseline_walls = Vec::with_capacity(RECOVERY_RUNS);
    for _ in 0..RECOVERY_RUNS {
        let start = Instant::now();
        warehouse.population_average(&studies, "ntal").expect("recovery baseline");
        baseline_walls.push(start.elapsed().as_secs_f64());
    }
    let failovers_before = warehouse.recovery_stats().failovers;
    let mut faulted_walls = Vec::with_capacity(RECOVERY_RUNS);
    for run in 0..RECOVERY_RUNS {
        let scope = FaultPlane::new(0xBE + run as u64)
            .rule(sites::CLUSTER_SHARD_KILL, Trigger::Nth(1), FaultOutcome::Error)
            .arm();
        let start = Instant::now();
        let faulted = warehouse.population_average(&studies, "ntal").expect("survives the kill");
        faulted_walls.push(start.elapsed().as_secs_f64());
        drop(scope);
        assert!(faulted.is_complete(), "the kill must not lose a study");
        assert_eq!(
            faulted.data.values(),
            baseline.data.values(),
            "failover changed the answer bytes"
        );
        warehouse.revive_all();
    }
    let failovers_total = warehouse.recovery_stats().failovers - failovers_before;
    assert!(failovers_total >= RECOVERY_RUNS as u64, "every kill must force at least one failover");
    let baseline_seconds = median(baseline_walls);
    let faulted_seconds = median(faulted_walls);
    let failovers = failovers_total / RECOVERY_RUNS as u64;

    ClusterReport {
        side: config.side(),
        studies: studies.len(),
        replication,
        items: items.max(1),
        replay_scale,
        runs,
        recovery: RecoveryReport { baseline_seconds, faulted_seconds, failovers },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_overlaps_shard_lanes() {
        // Tiny grid, two memberships, generous lane replay: two shards
        // must overlap their lanes even on one host core.
        let config = QbismConfig { pet_studies: 4, ..QbismConfig::small_test() };
        let report = measure(&config, &[1, 2], 2, 3, 0.25);
        assert_eq!(report.runs.len(), 2);
        assert!(report.runs.iter().all(|r| r.qps > 0.0));
        assert!(
            report.peak_speedup() > 1.1,
            "two shard lanes should overlap replays: {}",
            report.render()
        );
        assert!(report.recovery.failovers >= 1);
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"cluster_warehouse\""));
        assert!(json.contains("\"peak_speedup\""));
        assert!(json.contains("\"recovery_seconds\""));
    }
}
