//! Parallel query engine throughput: queries/sec and speedup at
//! 1/2/4/8 client threads against one shared [`qbism::MedicalServer`].
//!
//! The workload mixes the paper's EQ 1 (Q1 `full_study`, the heaviest
//! single-study query) with the §6.4 population aggregate, drained from
//! a shared work queue by the client pool.
//!
//! **Why this speeds up on any machine**: the simulated 1994 testbed is
//! I/O-bound — an EQ 1 answer costs seconds of modelled disk and
//! network time but only microseconds of native compute.  Each client
//! therefore *replays* a scaled slice of its query's simulated
//! latency (`latency_scale × (sim_db + sim_net)` as a real sleep) after
//! the answer returns, exactly like a client waiting on a wire.
//! Concurrency then overlaps those waits — the same reason the real
//! 1994 server benefited from serving clients in parallel — so the
//! measured speedup reflects the shared-read architecture (no lock
//! serializes the query path), not the host's core count.
//!
//! `tablegen` does not run this (it is wall-clock, not a paper table);
//! the `parallel` binary writes `BENCH_parallel.json` for CI.

use qbism::{QbismConfig, QbismSystem};
use qbism_parallel::Executor;
use std::time::Instant;

/// One work item of the mixed workload.
#[derive(Debug, Clone, Copy)]
enum Item {
    /// EQ 1: `full_study` of the given study.
    Full(i64),
    /// §6.4 population aggregate over every PET study.
    Population,
}

/// Throughput at one client-thread count.
#[derive(Debug, Clone, Copy)]
pub struct ThreadRun {
    /// Client threads draining the workload.
    pub threads: usize,
    /// Wall seconds to drain the whole workload.
    pub wall_seconds: f64,
    /// Queries per wall second.
    pub qps: f64,
}

/// The full sweep report.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Grid side (voxels per axis).
    pub side: u32,
    /// Work items per sweep point.
    pub items: usize,
    /// Fraction of each query's simulated latency replayed as a real
    /// client-side sleep.
    pub latency_scale: f64,
    /// One entry per thread count, in sweep order (first is serial).
    pub runs: Vec<ThreadRun>,
}

impl ParallelReport {
    /// Speedup of `run` over the serial (first) sweep point.
    pub fn speedup(&self, run: &ThreadRun) -> f64 {
        match self.runs.first() {
            Some(serial) if run.qps > 0.0 && serial.qps > 0.0 => run.qps / serial.qps,
            _ => 0.0,
        }
    }

    /// Speedup at the widest sweep point.
    pub fn peak_speedup(&self) -> f64 {
        self.runs.last().map(|r| self.speedup(r)).unwrap_or(0.0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Parallel query engine, {}³ grid — {} queries (EQ1 + population mix)\n\
             client-side latency replay: {:.0} % of simulated 1994 disk+net time\n\
             {:>8} {:>12} {:>10} {:>9}\n",
            self.side,
            self.items,
            self.latency_scale * 100.0,
            "threads",
            "wall (s)",
            "queries/s",
            "speedup",
        );
        for run in &self.runs {
            out.push_str(&format!(
                "{:>8} {:>12.3} {:>10.1} {:>8.2}x\n",
                run.threads,
                run.wall_seconds,
                run.qps,
                self.speedup(run),
            ));
        }
        out
    }

    /// Machine-readable report for `BENCH_parallel.json`.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"threads\": {}, \"wall_seconds\": {:.6}, \"qps\": {:.2}, \"speedup\": {:.3} }}",
                    r.threads,
                    r.wall_seconds,
                    r.qps,
                    self.speedup(r)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"parallel_engine\",\n  \
             \"workload\": \"EQ1 full_study + population_average mix, shared server\",\n  \
             \"design\": \"clients replay latency_scale x simulated 1994 disk+net seconds per query; speedup comes from overlapping simulated I/O waits, independent of host core count\",\n  \
             \"grid_side\": {},\n  \"items\": {},\n  \"latency_scale\": {},\n  \
             \"peak_speedup\": {:.3},\n  \"runs\": [\n{}\n  ]\n}}\n",
            self.side,
            self.items,
            self.latency_scale,
            self.peak_speedup(),
            runs,
        )
    }
}

/// Runs the sweep: installs one system, then drains the same mixed
/// workload with each thread count in `thread_counts` (the first is
/// the serial baseline).  Every answer is checked against the serial
/// reference — a wrong answer under concurrency fails loudly here.
pub fn measure(
    config: &QbismConfig,
    thread_counts: &[usize],
    items: usize,
    latency_scale: f64,
) -> ParallelReport {
    let mut sys = QbismSystem::install(config).expect("install");
    let studies = sys.pet_study_ids.clone();
    let workload: Vec<Item> = (0..items.max(1))
        .map(|i| if i % 4 == 3 { Item::Population } else { Item::Full(studies[i % studies.len()]) })
        .collect();

    // Serial reference answers (voxel counts are enough of a
    // fingerprint here; full bit-equality is the integration suite's
    // job and would dwarf the timing loop).
    let full_ref = sys.server.full_study(studies[0]).expect("q1").voxel_count();
    let pop_ref = sys.server.population_average(&studies, "ntal").expect("pop").voxel_count();

    let mut runs = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let threads = threads.max(1);
        sys.server.set_threads(threads);
        let server = &sys.server;
        let pool = Executor::new(threads);
        let studies = &studies;
        let start = Instant::now();
        pool.map(workload.clone(), |_, item| {
            let (sim_seconds, voxels) = match item {
                Item::Full(id) => {
                    let a = server.full_study(id).expect("EQ1 under load");
                    (a.cost.sim_db_seconds + a.cost.sim_net_seconds, a.voxel_count())
                }
                Item::Population => {
                    let a = server.population_average(studies, "ntal").expect("pop under load");
                    (a.cost.sim_db_seconds + a.cost.sim_net_seconds, a.voxel_count())
                }
            };
            let want = match item {
                Item::Full(_) => full_ref,
                Item::Population => pop_ref,
            };
            assert_eq!(voxels, want, "answer diverged under {threads} client threads");
            // Replay the client's share of the simulated 1994 latency.
            std::thread::sleep(std::time::Duration::from_secs_f64(sim_seconds * latency_scale));
        });
        let wall_seconds = start.elapsed().as_secs_f64();
        runs.push(ThreadRun {
            threads,
            wall_seconds,
            qps: workload.len() as f64 / wall_seconds.max(f64::EPSILON),
        });
    }
    ParallelReport { side: config.side(), items: workload.len(), latency_scale, runs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_overlaps_simulated_io() {
        // Tiny grid, few items, generous latency replay: two clients
        // must overlap their sleeps even on one host core.
        let report = measure(&QbismConfig::small_test(), &[1, 2], 8, 0.3);
        assert_eq!(report.runs.len(), 2);
        assert!(report.runs.iter().all(|r| r.qps > 0.0));
        assert!(
            report.peak_speedup() > 1.1,
            "two clients should overlap waits: {}",
            report.render()
        );
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"parallel_engine\""));
        assert!(json.contains("\"peak_speedup\""));
    }
}
