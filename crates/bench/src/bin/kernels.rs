//! `kernels` — seed-vs-kernel wall time for the run-native kernels
//! (n-way intersect, curve transcode, band extract, cold vectored
//! read) at 64³ and 128³, plus a cached+readahead server replay;
//! writes `BENCH_kernels.json`.
//!
//! ```text
//! kernels [--queries N] [--out PATH]
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin kernels`.
//! Exits non-zero if the n-way intersection or the curve transcode
//! kernel fails to reach 2× the seed path at 128³ — the perf gate CI
//! enforces.

use qbism::QbismConfig;
use qbism_bench::kernels;

const BITS: [u32; 2] = [6, 7];
const SPEEDUP_FLOOR: f64 = 2.0;
const GATED: [&str; 2] = ["nway_intersect", "curve_transcode"];

struct Args {
    queries: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { queries: 12, out: "BENCH_kernels.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--queries" => {
                args.queries = flag("--queries")?.parse().map_err(|e| format!("--queries: {e}"))?
            }
            "--out" => args.out = flag("--out")?,
            "--help" | "-h" => return Err("usage: kernels [--queries N] [--out PATH]".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.queries == 0 {
        return Err("--queries must be positive".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    // The replay runs the 64³ testbed: three PET studies, mixed
    // EQ1/EQ2/population workload, page cache + readahead on.
    let config = QbismConfig {
        atlas_bits: 6,
        pet_studies: 3,
        mri_studies: 0,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    };
    let report = kernels::measure(&BITS, &config, args.queries);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    let mut failed = false;
    for name in GATED {
        let speedup = report.speedup_of(name, 128);
        if speedup < SPEEDUP_FLOOR {
            eprintln!("FAIL: {name} reached only {speedup:.2}x at 128³ (floor {SPEEDUP_FLOOR}x)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
