//! `cluster` — sharded-warehouse scaling at 1/2/4/8 shards plus
//! mid-query failover recovery time; writes `BENCH_cluster.json`.
//!
//! ```text
//! cluster [--bits N] [--studies N] [--items N] [--scale F] [--out PATH]
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin cluster`.
//! Each shard replays `scale × sim_db` seconds of every sub-query's
//! simulated 1994 database latency inside its single service lane, so
//! the sweep is lane-bound and the speedup measures scatter/gather
//! over independent shards, not host cores.  Exits non-zero if 8
//! shards fail to reach 2.5× the one-shard throughput.

use qbism::QbismConfig;
use qbism_bench::cluster;

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const REPLICATION: usize = 2;
const SPEEDUP_FLOOR: f64 = 2.5;

struct Args {
    bits: u32,
    studies: usize,
    items: usize,
    scale: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    // Defaults keep the sweep under ~30 s: a 64³ grid, 16 studies
    // spread over up to 8 lanes, lane replay at 5 % (large enough that
    // a failover's rerouted replay is visible over scheduling noise).
    let mut args =
        Args { bits: 6, studies: 16, items: 6, scale: 0.05, out: "BENCH_cluster.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bits" => args.bits = flag("--bits")?.parse().map_err(|e| format!("--bits: {e}"))?,
            "--studies" => {
                args.studies = flag("--studies")?.parse().map_err(|e| format!("--studies: {e}"))?
            }
            "--items" => {
                args.items = flag("--items")?.parse().map_err(|e| format!("--items: {e}"))?
            }
            "--scale" => {
                args.scale = flag("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--out" => args.out = flag("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: cluster [--bits N] [--studies N] [--items N] [--scale F] [--out PATH]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(4..=8).contains(&args.bits) {
        return Err(format!("--bits {} out of supported range 4..=8", args.bits));
    }
    if args.studies < 2 {
        return Err(format!("--studies {} too few for a placement sweep", args.studies));
    }
    if args.scale <= 0.0 || !args.scale.is_finite() {
        return Err(format!("--scale {} must be a positive fraction", args.scale));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = QbismConfig {
        atlas_bits: args.bits,
        pet_studies: args.studies,
        mri_studies: 0,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    };
    let report = cluster::measure(&config, &SHARDS, REPLICATION, args.items, args.scale);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if report.peak_speedup() < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: {} shards reached only {:.2}x one-shard throughput (floor {SPEEDUP_FLOOR}x)",
            SHARDS[SHARDS.len() - 1],
            report.peak_speedup(),
        );
        std::process::exit(1);
    }
}
