//! `parallel` — throughput of the shared-read query engine at
//! 1/2/4/8 client threads; writes `BENCH_parallel.json`.
//!
//! ```text
//! parallel [--bits N] [--items N] [--scale F] [--out PATH]
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin parallel`.
//! Clients replay `scale × (sim_db + sim_net)` seconds of each query's
//! simulated 1994 latency as a real sleep, so the sweep is I/O-wait
//! bound and the speedup measures lock-free concurrency, not host
//! cores.  Exits non-zero if 8 clients fail to reach 2.5× the serial
//! throughput.

use qbism::QbismConfig;
use qbism_bench::parallel;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const SPEEDUP_FLOOR: f64 = 2.5;

struct Args {
    bits: u32,
    items: usize,
    scale: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    // Defaults keep the sweep under ~20 s: a 64³ grid where EQ1 costs a
    // few simulated seconds, replayed at 2 %.
    let mut args = Args { bits: 6, items: 48, scale: 0.02, out: "BENCH_parallel.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bits" => args.bits = flag("--bits")?.parse().map_err(|e| format!("--bits: {e}"))?,
            "--items" => {
                args.items = flag("--items")?.parse().map_err(|e| format!("--items: {e}"))?
            }
            "--scale" => {
                args.scale = flag("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--out" => args.out = flag("--out")?,
            "--help" | "-h" => {
                return Err("usage: parallel [--bits N] [--items N] [--scale F] [--out PATH]".into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(4..=8).contains(&args.bits) {
        return Err(format!("--bits {} out of supported range 4..=8", args.bits));
    }
    if args.scale <= 0.0 || !args.scale.is_finite() {
        return Err(format!("--scale {} must be a positive fraction", args.scale));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = QbismConfig {
        atlas_bits: args.bits,
        pet_studies: 3,
        mri_studies: 0,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    };
    let report = parallel::measure(&config, &THREADS, args.items, args.scale);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if report.peak_speedup() < SPEEDUP_FLOOR {
        eprintln!(
            "FAIL: {} clients reached only {:.2}x serial throughput (floor {SPEEDUP_FLOOR}x)",
            THREADS[THREADS.len() - 1],
            report.peak_speedup(),
        );
        std::process::exit(1);
    }
}
