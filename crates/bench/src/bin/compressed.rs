//! `compressed` — default vs compressed tablespace at 64³ and 128³:
//! REGION bytes on device, pages read, cold/cached/paced wall time;
//! writes `BENCH_compressed.json`.
//!
//! ```text
//! compressed [--scale F] [--out PATH]
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin compressed`.
//! Exits non-zero unless, at 128³, the region-dominated query class
//! (the multi-study band fold, 100 % REGION pages) reads at least 1.5×
//! fewer physical pages under the compressed tablespace and wins on
//! paced wall time — the compressed-gate CI enforces.

use qbism_bench::compressed;

const BITS: [u32; 2] = [6, 7];
const GATED_SIDE: u32 = 128;
const PAGES_FLOOR: f64 = 1.5;

struct Args {
    scale: f64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    // 2 % latency replay keeps the sweep interactive while still
    // letting the disk model dominate the paced wall numbers.
    let mut args = Args { scale: 0.02, out: "BENCH_compressed.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scale" => {
                args.scale = flag("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--out" => args.out = flag("--out")?,
            "--help" | "-h" => return Err("usage: compressed [--scale F] [--out PATH]".into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.scale < 0.0 || !args.scale.is_finite() {
        return Err(format!("--scale {} must be a non-negative fraction", args.scale));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let report = compressed::measure(&BITS, args.scale);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    let ratio = report.gated_pages_ratio(GATED_SIDE);
    if ratio < PAGES_FLOOR {
        eprintln!(
            "FAIL: region-dominated queries at {GATED_SIDE}³ read only {ratio:.2}x fewer \
             physical pages compressed (floor {PAGES_FLOOR}x)"
        );
        std::process::exit(1);
    }
    if !report.gated_wall_win(GATED_SIDE) {
        eprintln!(
            "FAIL: compressed tablespace lost on paced wall time for a region-dominated \
             query at {GATED_SIDE}³"
        );
        std::process::exit(1);
    }
}
