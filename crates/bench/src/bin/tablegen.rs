//! `tablegen` — regenerates every table and figure of the QBISM paper.
//!
//! ```text
//! tablegen [EXPERIMENT] [--bits N] [--pet N] [--mri N] [--seed N] [--repeats N]
//!
//! EXPERIMENT: all | table12 | fig-runs | eq1 | fig4 | table3 | table4 |
//!             scaling | rects | approx | obs    (default: all)
//! --bits N    grid is 2^N per axis    (default: 7, the paper's 128³;
//!                                      use 5 for quick debug runs)
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin tablegen`.

use qbism::QbismConfig;
use qbism_bench::{
    approx, eq1, fig4, obs_overhead, rects, run_counts, scaling, table3, table4, tables12,
};

struct Args {
    experiment: String,
    bits: u32,
    pet: usize,
    mri: usize,
    seed: u64,
    repeats: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { experiment: "all".into(), bits: 7, pet: 5, mri: 3, seed: 0x51B1_5A17, repeats: 3 };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bits" => args.bits = flag("--bits")?.parse().map_err(|e| format!("--bits: {e}"))?,
            "--pet" => args.pet = flag("--pet")?.parse().map_err(|e| format!("--pet: {e}"))?,
            "--mri" => args.mri = flag("--mri")?.parse().map_err(|e| format!("--mri: {e}"))?,
            "--seed" => args.seed = flag("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--repeats" => {
                args.repeats = flag("--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: tablegen [all|table12|fig-runs|eq1|fig4|table3|table4|scaling|rects|approx|obs] \
                            [--bits N] [--pet N] [--mri N] [--seed N] [--repeats N]"
                    .into())
            }
            exp if !exp.starts_with('-') => args.experiment = exp.to_string(),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(4..=8).contains(&args.bits) {
        return Err(format!("--bits {} out of supported range 4..=8", args.bits));
    }
    Ok(args)
}

fn config_for(a: &Args) -> QbismConfig {
    QbismConfig {
        atlas_bits: a.bits,
        pet_studies: a.pet,
        mri_studies: a.mri,
        seed: a.seed,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let run = |name: &str| args.experiment == "all" || args.experiment == name;
    let mut ran = false;
    let banner = |title: &str| println!("\n================ {title} ================");
    if run("table12") {
        ran = true;
        banner("Tables 1 & 2");
        println!("{}", tables12::report());
    }
    if run("fig-runs") {
        ran = true;
        banner("Section 4.2 run-count ratios");
        println!("{}", run_counts::measure(args.bits, args.pet, args.mri, args.seed).render());
    }
    if run("eq1") {
        ran = true;
        banner("EQ 1 delta-length power law");
        println!("{}", eq1::measure(args.bits, args.pet, args.mri, args.seed).render());
    }
    if run("fig4") {
        ran = true;
        banner("Figure 4 size vs entropy");
        println!("{}", fig4::measure(args.bits, args.pet, args.mri, args.seed).render());
    }
    if run("rects") {
        ran = true;
        banner("Faloutsos-Roseman rectangles");
        println!("{}", rects::measure(args.bits.min(6), 200, args.seed).render());
    }
    if run("table3") {
        ran = true;
        banner("Table 3 single-study queries");
        println!("{}", table3::report(&config_for(&args), args.repeats));
    }
    if run("table4") {
        ran = true;
        banner("Table 4 multi-study intersection");
        // Paper band 128-159 over all loaded PET studies.
        println!("{}", table4::report(&config_for(&args), 128, 159));
    }
    if run("approx") {
        ran = true;
        banner("Approximate REGIONs ablation");
        println!("{}", approx::report(args.bits, "ntal", args.seed));
    }
    if run("scaling") {
        ran = true;
        banner("Section 6.4 scaling");
        let cfg = config_for(&args);
        println!("{}", scaling::report(&cfg, "ntal", args.pet.max(2)));
    }
    if run("obs") {
        ran = true;
        banner("Observability overhead (EQ1 path)");
        let cfg = QbismConfig { pet_studies: 1, mri_studies: 0, ..config_for(&args) };
        println!("{}", obs_overhead::measure(&cfg, args.repeats.max(5), 4).render());
    }
    if !ran {
        eprintln!(
            "unknown experiment '{}'; try: all table12 fig-runs eq1 fig4 table3 table4 scaling rects approx obs",
            args.experiment
        );
        std::process::exit(2);
    }
}
