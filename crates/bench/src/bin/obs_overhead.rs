//! `obs_overhead` — measures observability overhead on the EQ1 (Q1)
//! query path and writes `BENCH_observability.json`.
//!
//! ```text
//! obs_overhead [--bits N] [--rounds N] [--reps N] [--out PATH]
//! ```
//!
//! Run in release: `cargo run -p qbism-bench --release --bin obs_overhead`.

use qbism::QbismConfig;
use qbism_bench::obs_overhead;

struct Args {
    bits: u32,
    rounds: usize,
    reps: usize,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    // Defaults measure EQ1 at the paper's own 128³ scale, where the
    // ~2 µs fixed per-query instrumentation cost is amortized over a
    // realistic extraction.  (Toy grids run microsecond queries, so the
    // same fixed cost shows up as tens of percent there.)
    let mut args = Args { bits: 7, rounds: 9, reps: 10, out: "BENCH_observability.json".into() };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bits" => args.bits = flag("--bits")?.parse().map_err(|e| format!("--bits: {e}"))?,
            "--rounds" => {
                args.rounds = flag("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--reps" => args.reps = flag("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--out" => args.out = flag("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: obs_overhead [--bits N] [--rounds N] [--reps N] [--out PATH]".into()
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(4..=8).contains(&args.bits) {
        return Err(format!("--bits {} out of supported range 4..=8", args.bits));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = QbismConfig {
        atlas_bits: args.bits,
        pet_studies: 1,
        mri_studies: 0,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    };
    let report = obs_overhead::measure(&config, args.rounds, args.reps);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if !report.within_budget() {
        std::process::exit(1);
    }
}
