//! `obs_overhead` — measures observability overhead on the EQ1 (Q1)
//! query path and writes `BENCH_observability.json`.
//!
//! ```text
//! obs_overhead [--bits N] [--rounds N] [--reps N] [--out PATH]
//!              [--trace-out PATH] [--events-out PATH]
//! ```
//!
//! `--trace-out` / `--events-out` additionally run an 8-client storm
//! with the flight recorder on and write the Chrome trace JSON
//! (`about:tracing`-loadable) and the JSONL event journal — the CI
//! `obs-gate` job uploads both as artifacts.
//!
//! Run in release: `cargo run -p qbism-bench --release --bin obs_overhead`.

use qbism::QbismConfig;
use qbism_bench::obs_overhead;

struct Args {
    bits: u32,
    rounds: usize,
    reps: usize,
    out: String,
    trace_out: Option<String>,
    events_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    // Defaults measure EQ1 at the paper's own 128³ scale, where the
    // ~2 µs fixed per-query instrumentation cost is amortized over a
    // realistic extraction.  (Toy grids run microsecond queries, so the
    // same fixed cost shows up as tens of percent there.)
    let mut args = Args {
        bits: 7,
        rounds: 9,
        reps: 10,
        out: "BENCH_observability.json".into(),
        trace_out: None,
        events_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut flag = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bits" => args.bits = flag("--bits")?.parse().map_err(|e| format!("--bits: {e}"))?,
            "--rounds" => {
                args.rounds = flag("--rounds")?.parse().map_err(|e| format!("--rounds: {e}"))?
            }
            "--reps" => args.reps = flag("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--out" => args.out = flag("--out")?,
            "--trace-out" => args.trace_out = Some(flag("--trace-out")?),
            "--events-out" => args.events_out = Some(flag("--events-out")?),
            "--help" | "-h" => {
                return Err("usage: obs_overhead [--bits N] [--rounds N] [--reps N] [--out PATH] \
                            [--trace-out PATH] [--events-out PATH]"
                    .into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !(4..=8).contains(&args.bits) {
        return Err(format!("--bits {} out of supported range 4..=8", args.bits));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let config = QbismConfig {
        atlas_bits: args.bits,
        pet_studies: 1,
        mri_studies: 0,
        device_capacity: 1u64 << 31,
        ..QbismConfig::paper_scale()
    };
    let report = obs_overhead::measure(&config, args.rounds, args.reps);
    println!("{}", report.render());
    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("wrote {}", args.out);
    if args.trace_out.is_some() || args.events_out.is_some() {
        // The artifact storm uses a small grid: the point is coherent
        // per-client traces, not wall time, and small trees stay
        // loadable in about:tracing.
        let storm_config = QbismConfig::small_test();
        let (trace_json, events) = obs_overhead::capture_storm_artifacts(&storm_config, 8);
        for (path, bytes) in [(&args.trace_out, &trace_json), (&args.events_out, &events)] {
            if let Some(path) = path {
                if let Err(e) = std::fs::write(path, bytes) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {path}");
            }
        }
    }
    if !report.within_budget() {
        std::process::exit(1);
    }
}
