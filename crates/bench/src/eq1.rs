//! EQ 1: the delta-length distribution.
//!
//! "Our measurements showed that the distribution roughly obeys
//! `count = (constant) * (length)^(-a)` where a is ~1.5-1.7 for several
//! atlas structure and intensity band REGIONs we tried."  This is the
//! observation that rules geometric-distribution codes out and selects
//! the Elias γ code.

use crate::population::region_population;
use qbism_region::DeltaStats;

/// Per-region power-law fit.
#[derive(Debug, Clone)]
pub struct Eq1Sample {
    /// Region label.
    pub name: String,
    /// Fitted exponent `a`.
    pub exponent: f64,
    /// Log-log correlation (negative: counts fall with length).
    pub correlation: f64,
    /// Number of deltas in the region.
    pub deltas: usize,
}

/// The measured EQ 1 report.
#[derive(Debug, Clone)]
pub struct Eq1Report {
    /// Per-region fits (regions with too few distinct lengths skipped).
    pub samples: Vec<Eq1Sample>,
}

/// The paper's reported exponent range.
pub const PAPER_EXPONENT_RANGE: (f64, f64) = (1.5, 1.7);

/// Fits EQ 1 over the population.
pub fn measure(bits: u32, pet: usize, mri: usize, seed: u64) -> Eq1Report {
    let pop = region_population(bits, pet, mri, seed);
    let samples = pop
        .iter()
        .filter_map(|r| {
            let stats = DeltaStats::measure(&r.region);
            let (exponent, correlation) = stats.histogram.power_law_fit_binned()?;
            Some(Eq1Sample {
                name: r.name.clone(),
                exponent,
                correlation,
                deltas: stats.delta_count,
            })
        })
        .collect();
    Eq1Report { samples }
}

impl Eq1Report {
    /// Median fitted exponent (robust against small outlier regions).
    pub fn median_exponent(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut es: Vec<f64> = self.samples.iter().map(|s| s.exponent).collect();
        es.sort_by(|a, b| a.partial_cmp(b).expect("no NaN exponents"));
        Some(es[es.len() / 2])
    }

    /// Renders the paper-vs-measured comparison.
    pub fn render(&self) -> String {
        let median = self.median_exponent().unwrap_or(f64::NAN);
        let (lo, hi) = PAPER_EXPONENT_RANGE;
        let mut out = format!(
            "EQ 1 power-law fit over {} REGIONs: median a = {median:.2} (paper: {lo}-{hi})\n",
            self.samples.len()
        );
        for s in self.samples.iter().take(8) {
            out.push_str(&format!(
                "  {:<22} a = {:.2}  r = {:+.3}  ({} deltas)\n",
                s.name, s.exponent, s.correlation, s.deltas
            ));
        }
        if self.samples.len() > 8 {
            out.push_str(&format!("  … {} more\n", self.samples.len() - 8));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_is_in_a_plausible_band() {
        let rep = measure(5, 2, 1, 7);
        let median = rep.median_exponent().expect("fits exist");
        // The paper saw 1.5-1.7 at 128³; smaller grids drift somewhat
        // but must stay in the same regime (clearly heavier than
        // geometric, clearly decaying).
        assert!((0.9..2.8).contains(&median), "median exponent {median}");
    }

    #[test]
    fn counts_decay_with_length() {
        let rep = measure(5, 2, 1, 7);
        let decaying = rep.samples.iter().filter(|s| s.correlation < -0.5).count();
        assert!(
            decaying * 2 > rep.samples.len(),
            "most regions should show decaying delta counts ({decaying}/{})",
            rep.samples.len()
        );
    }

    #[test]
    fn render_includes_median_and_paper_range() {
        let text = measure(5, 1, 0, 7).render();
        assert!(text.contains("median"));
        assert!(text.contains("1.5-1.7"));
    }
}
