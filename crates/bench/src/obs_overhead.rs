//! Observability overhead: instrumented vs uninstrumented EQ1 (Q1) runs.
//!
//! The `qbism-obs` layer records counters, histograms, and span trees on
//! every query.  Its contract is that this costs (almost) nothing: every
//! record site is gated on [`qbism_obs::enabled`], counters are relaxed
//! atomics, and spans only allocate while a trace is open.  This harness
//! checks the contract empirically by timing the paper's Q1 (`full_study`
//! — the EQ 1 workload, a full 2^3b-voxel extraction) with tracing and
//! metrics on versus off, interleaving the two arms so clock drift and
//! cache warmth cancel, and comparing medians.
//!
//! `tablegen obs` prints the report; the `obs_overhead` binary writes
//! `BENCH_observability.json` for CI regression tracking (< 5 % budget).

use std::time::Instant;

use qbism::{QbismConfig, QbismSystem};

/// Result of one interleaved overhead run.
#[derive(Debug, Clone)]
pub struct OverheadReport {
    /// Grid side (voxels per axis) of the measured system.
    pub side: u32,
    /// Number of interleaved rounds (one sample per arm per round).
    pub rounds: usize,
    /// Queries per sample (each sample times this many `full_study` calls).
    pub reps_per_round: usize,
    /// Per-round wall seconds with observability enabled.
    pub enabled_samples: Vec<f64>,
    /// Per-round wall seconds with observability disabled.
    pub disabled_samples: Vec<f64>,
}

fn median(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    match v.len() {
        0 => 0.0,
        n if n % 2 == 1 => v[n / 2],
        n => (v[n / 2 - 1] + v[n / 2]) / 2.0,
    }
}

impl OverheadReport {
    /// Median wall seconds per round with observability on.
    pub fn enabled_median(&self) -> f64 {
        median(&self.enabled_samples)
    }

    /// Median wall seconds per round with observability off.
    pub fn disabled_median(&self) -> f64 {
        median(&self.disabled_samples)
    }

    /// Fractional slowdown of the instrumented arm: `(on - off) / off`.
    /// Negative values mean the difference drowned in timing noise.
    pub fn overhead_fraction(&self) -> f64 {
        let off = self.disabled_median();
        if off <= 0.0 {
            return 0.0;
        }
        (self.enabled_median() - off) / off
    }

    /// Whether the run met the < 5 % regression budget.
    pub fn within_budget(&self) -> bool {
        self.overhead_fraction() < 0.05
    }

    /// Human-readable report for `tablegen obs`.
    pub fn render(&self) -> String {
        format!(
            "EQ1 (Q1 full_study) observability overhead, {}³ grid\n\
             {} rounds × {} queries, interleaved arms\n\
             enabled  median: {:>9.3} ms/round\n\
             disabled median: {:>9.3} ms/round\n\
             overhead: {:+.2} %  (budget < 5 %)  -> {}",
            self.side,
            self.rounds,
            self.reps_per_round,
            self.enabled_median() * 1e3,
            self.disabled_median() * 1e3,
            self.overhead_fraction() * 100.0,
            if self.within_budget() { "PASS" } else { "FAIL" },
        )
    }

    /// Machine-readable report for `BENCH_observability.json`.
    pub fn to_json(&self) -> String {
        let join = |v: &[f64]| v.iter().map(|s| format!("{s:.6}")).collect::<Vec<_>>().join(", ");
        format!(
            "{{\n  \"benchmark\": \"obs_overhead\",\n  \"workload\": \"EQ1 full_study (paper Q1)\",\n  \
             \"grid_side\": {},\n  \"rounds\": {},\n  \"reps_per_round\": {},\n  \
             \"enabled_seconds_median\": {:.6},\n  \"disabled_seconds_median\": {:.6},\n  \
             \"overhead_fraction\": {:.4},\n  \"budget_fraction\": 0.05,\n  \
             \"within_budget\": {},\n  \"enabled_samples\": [{}],\n  \"disabled_samples\": [{}]\n}}\n",
            self.side,
            self.rounds,
            self.reps_per_round,
            self.enabled_median(),
            self.disabled_median(),
            self.overhead_fraction(),
            self.within_budget(),
            join(&self.enabled_samples),
            join(&self.disabled_samples),
        )
    }
}

/// Times `reps_per_round` Q1 extractions once, returning wall seconds.
fn sample(sys: &mut QbismSystem, study: i64, reps_per_round: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..reps_per_round {
        let answer = sys.server.full_study(study).expect("Q1 runs");
        std::hint::black_box(answer.voxel_count());
    }
    start.elapsed().as_secs_f64()
}

/// Interleaves instrumented and uninstrumented Q1 rounds on one system.
///
/// Observability is re-enabled before returning regardless of outcome,
/// so callers never inherit a disabled global flag.
pub fn measure(config: &QbismConfig, rounds: usize, reps_per_round: usize) -> OverheadReport {
    let mut sys = QbismSystem::install(config).expect("install");
    let study = sys.pet_study_ids[0];
    // Warm both arms once so first-touch costs hit neither measurement.
    qbism_obs::set_enabled(true);
    sample(&mut sys, study, 1);
    qbism_obs::set_enabled(false);
    sample(&mut sys, study, 1);

    let mut enabled_samples = Vec::with_capacity(rounds);
    let mut disabled_samples = Vec::with_capacity(rounds);
    for round in 0..rounds.max(1) {
        // Alternate which arm goes first so slow drift cancels.
        let order = if round % 2 == 0 { [true, false] } else { [false, true] };
        for on in order {
            qbism_obs::set_enabled(on);
            let secs = sample(&mut sys, study, reps_per_round.max(1));
            if on {
                enabled_samples.push(secs);
            } else {
                disabled_samples.push(secs);
            }
        }
    }
    qbism_obs::set_enabled(true);
    OverheadReport {
        side: config.side(),
        rounds: rounds.max(1),
        reps_per_round: reps_per_round.max(1),
        enabled_samples,
        disabled_samples,
    }
}

/// Runs a `clients`-way query storm with the flight recorder on and
/// returns `(chrome_trace_json, events_jsonl)` — the CI artifacts that
/// prove an 8-client storm exports coherent per-trace timelines.
pub fn capture_storm_artifacts(config: &QbismConfig, clients: usize) -> (String, String) {
    let sys = QbismSystem::install(config).expect("install");
    let study = sys.pet_study_ids[0];
    qbism_obs::set_enabled(true);
    qbism_obs::trace::clear();
    qbism_obs::event::clear();
    let server = &sys.server;
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            scope.spawn(move || {
                let answer = server.full_study(study).expect("storm Q1 runs");
                std::hint::black_box(answer.voxel_count());
            });
        }
    });
    let trace_json = qbism_obs::export::chrome_trace(
        &qbism_obs::trace::recent_roots(),
        &qbism_obs::event::events(),
    );
    let events = qbism_obs::export::events_jsonl(&qbism_obs::event::events());
    (trace_json, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_artifacts_cover_every_client() {
        let (trace_json, events) = capture_storm_artifacts(&QbismConfig::small_test(), 3);
        assert_eq!(trace_json.matches('{').count(), trace_json.matches('}').count());
        assert!(trace_json.contains("\"ph\":\"X\""));
        assert!(
            trace_json.matches("\"name\":\"query.full_study\"").count() >= 3,
            "one root slice per client"
        );
        assert!(!events.is_empty());
        assert!(events.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn quick_run_produces_samples_and_restores_the_flag() {
        let report = measure(&QbismConfig::small_test(), 2, 1);
        assert_eq!(report.enabled_samples.len(), 2);
        assert_eq!(report.disabled_samples.len(), 2);
        assert!(report.enabled_median() > 0.0);
        assert!(qbism_obs::enabled(), "measure must leave observability on");
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"obs_overhead\""));
        assert!(json.contains("\"within_budget\""));
    }

    #[test]
    fn median_handles_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }
}
