//! The QBISM evaluation harness.
//!
//! One module per paper result; every module produces a printable report
//! carrying both the paper's published numbers and ours, so
//! `tablegen all` regenerates the entire evaluation section.
//!
//! | paper result | module |
//! |---|---|
//! | Tables 1 & 2 (encodings of the Figure 3 region) | [`tables12`] |
//! | §4.2 run/octant count ratios (1 : 1.27 : 1.61 : 2.42) | [`run_counts`] |
//! | EQ 1 delta-length power law (a ≈ 1.5–1.7) | [`eq1`] |
//! | Figure 4 size ratios (1 : 1.17 : 9.50 : 10.4 : 17.8) | [`fig4`] |
//! | Table 3 single-study queries Q1–Q6 | [`table3`] |
//! | Table 4 multi-study n-way intersection | [`table4`] |
//! | §6.4 multi-study traffic scaling | [`scaling`] |
//! | Faloutsos–Roseman 1 : 1.20 rectangle cross-check | [`rects`] |
//! | §4.2 approximate-REGION trade-off (ablation) | [`approx`] |
//! | observability overhead on the EQ1 query path | [`obs_overhead`] |
//! | parallel engine throughput at 1/2/4/8 clients | [`parallel`] |
//! | run-native kernels, seed vs kernel wall time | [`kernels`] |
//! | compressed tablespace, default vs compressed I/O | [`compressed`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod cluster;
pub mod compressed;
pub mod eq1;
pub mod fig4;
pub mod kernels;
pub mod obs_overhead;
pub mod parallel;
pub mod population;
pub mod rects;
pub mod run_counts;
pub mod scaling;
pub mod table3;
pub mod table4;
pub mod tables12;

/// Formats a ratio list like `1 : 1.27 : 1.61` from absolute values.
pub fn ratio_string(values: &[f64]) -> String {
    if values.is_empty() || values[0] == 0.0 {
        return "-".into();
    }
    values.iter().map(|v| format!("{:.2}", v / values[0])).collect::<Vec<_>>().join(" : ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_string_normalizes_to_first() {
        assert_eq!(ratio_string(&[2.0, 4.0, 5.0]), "1.00 : 2.00 : 2.50");
        assert_eq!(ratio_string(&[]), "-");
        assert_eq!(ratio_string(&[0.0, 1.0]), "-");
    }
}
