//! Table 3: full-system run-time measurements for single-study queries.

use qbism::{FullQueryReport, QbismConfig, QbismSystem, QuerySpec};

/// The paper's six queries, with grid-relative parameters so smaller
/// grids exercise the same shapes.
pub fn paper_queries(side: u32) -> Vec<(&'static str, QuerySpec)> {
    // Q2's box is corners (30,30,30)-(100,100,100) at side 128: scale
    // the fractions for other grids.
    let lo = (30 * side) / 128;
    let hi = (100 * side) / 128;
    vec![
        ("Q1", QuerySpec::FullStudy),
        ("Q2", QuerySpec::Box { min: [lo, lo, lo], max: [hi, hi, hi] }),
        ("Q3", QuerySpec::Structure("ntal".into())),
        ("Q4", QuerySpec::Structure("ntal1".into())),
        ("Q5", QuerySpec::Band { lo: 224, hi: 255 }),
        ("Q6", QuerySpec::BandInStructure { lo: 224, hi: 255, structure: "ntal1".into() }),
    ]
}

/// One published Table 3 row:
/// `(label, h_runs, voxels, ios, db_real, msgs, net_real, import_real,
/// render_real, other, total)`.
pub type PaperTable3Row = (&'static str, u64, u64, u64, f64, u64, f64, f64, f64, f64, f64);

/// The paper's published Table 3.
pub const PAPER_TABLE3: [PaperTable3Row; 6] = [
    ("Q1", 1, 2_097_152, 513, 3.4, 2103, 24.8, 10.7, 27.0, 3.1, 69.0),
    ("Q2", 5252, 357_911, 450, 3.5, 372, 4.4, 3.2, 13.0, 3.9, 28.0),
    ("Q3", 1088, 16_016, 29, 0.6, 22, 0.5, 0.2, 10.0, 3.7, 15.0),
    ("Q4", 14_364, 162_628, 265, 2.5, 195, 2.3, 1.5, 14.0, 3.7, 24.0),
    ("Q5", 508, 2_383, 32, 0.7, 7, 0.4, 0.1, 12.0, 3.8, 17.0),
    ("Q6", 150, 683, 72, 1.0, 4, 0.4, 0.1, 10.0, 4.5, 16.0),
];

/// Runs all six queries against a PET study.
///
/// Following the paper's protocol, each query runs `1 + repeats` times
/// and the *last* `repeats` runs are averaged (the LFM never buffers, so
/// variation is native-time jitter only; counts are identical across
/// runs).
pub fn measure(
    sys: &mut QbismSystem,
    study_id: i64,
    repeats: usize,
) -> Vec<(String, FullQueryReport)> {
    let side = sys.server.config().side();
    let mut out = Vec::new();
    for (label, spec) in paper_queries(side) {
        let mut reports = Vec::new();
        for _ in 0..=(repeats.max(1)) {
            reports.push(qbism::report::run_full_query(sys, study_id, &spec).expect("query runs"));
        }
        // Average native times over the warm runs; counts are identical.
        let warm = &reports[1..];
        let mut avg = warm[0].clone();
        let n = warm.len() as f64;
        avg.db_native_seconds = warm.iter().map(|r| r.db_native_seconds).sum::<f64>() / n;
        avg.import_native_seconds = warm.iter().map(|r| r.import_native_seconds).sum::<f64>() / n;
        avg.render_native_seconds = warm.iter().map(|r| r.render_native_seconds).sum::<f64>() / n;
        out.push((label.to_string(), avg));
    }
    out
}

/// Installs a system and renders the full paper-vs-measured table.
pub fn report(config: &QbismConfig, repeats: usize) -> String {
    let mut sys = QbismSystem::install(config).expect("install");
    let study = sys.pet_study_ids[0];
    let rows = measure(&mut sys, study, repeats);
    let mut out = format!(
        "TABLE 3 single-study queries (grid {}³, simulated-1994 times)\n{}\n",
        config.side(),
        FullQueryReport::table3_header()
    );
    for (label, r) in &rows {
        out.push_str(&format!("{label}: {}\n", r.table3_row()));
    }
    out.push_str("\npaper (128³, RS/6000-530):\n");
    out.push_str(&format!(
        "{:<4} {:>8} {:>9} {:>6} {:>8} {:>7} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
        "",
        "h-runs",
        "voxels",
        "I/Os",
        "db(s)",
        "msgs",
        "net(s)",
        "imp(s)",
        "rend(s)",
        "oth(s)",
        "tot(s)"
    ));
    for (label, h, v, io, db, m, net, imp, rend, oth, tot) in PAPER_TABLE3 {
        out.push_str(&format!(
            "{label:<4} {h:>8} {v:>9} {io:>6} {db:>8.1} {m:>7} {net:>8.1} {imp:>8.1} {rend:>8.1} {oth:>7.1} {tot:>7.1}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_queries_cover_the_paper_classes() {
        let qs = paper_queries(128);
        assert_eq!(qs.len(), 6);
        assert_eq!(qs[1].1, QuerySpec::Box { min: [30, 30, 30], max: [100, 100, 100] });
    }

    #[test]
    fn table3_shape_holds_at_small_scale() {
        let mut sys = QbismSystem::install(&QbismConfig::small_test()).unwrap();
        let rows = measure(&mut sys, 1, 1);
        assert_eq!(rows.len(), 6);
        let by_label = |l: &str| rows.iter().find(|(x, _)| x == l).unwrap().1.clone();
        let q1 = by_label("Q1");
        let q3 = by_label("Q3");
        let q5 = by_label("Q5");
        let q6 = by_label("Q6");
        // The paper's headline: the full-study query dominates everything.
        for (label, r) in &rows[1..] {
            assert!(r.total_sim_seconds <= q1.total_sim_seconds, "{label} slower than Q1");
            assert!(r.voxels <= q1.voxels);
        }
        // Mixed query returns no more voxels than its band.
        assert!(q6.voxels <= q5.voxels);
        // Selective queries read no more pages than the full scan plus
        // the answer REGION's own descriptor page (which dominates only
        // at toy grid sizes; at 128³ Q1 reads ~512 pages).
        assert!(q3.lfm_ios <= q1.lfm_ios + 2, "q3 {} vs q1 {}", q3.lfm_ios, q1.lfm_ios);
    }

    #[test]
    fn paper_constants_are_transcribed() {
        assert_eq!(PAPER_TABLE3[0].2, 2_097_152);
        assert_eq!(PAPER_TABLE3[3].1, 14_364);
        assert_eq!(PAPER_TABLE3[5].10, 16.0);
    }
}
