//! The Faloutsos–Roseman cross-check.
//!
//! Section 4.2 notes its measured brain-data ratio (1 : 1.27) is close
//! to the published all-3-d-rectangles result "(#h-runs):(#z-runs) =
//! 1 : 1.20" \[9\].  This module reproduces the rectangle experiment:
//! random axis-aligned boxes, run counts under both curves.

use qbism_region::{GridGeometry, Region};
use qbism_sfc::CurveKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the rectangle experiment.
#[derive(Debug, Clone, Copy)]
pub struct RectReport {
    /// Boxes sampled.
    pub samples: usize,
    /// Total h-runs.
    pub h_runs: u64,
    /// Total z-runs.
    pub z_runs: u64,
}

/// The paper's quoted ratio from \[9\].
pub const PAPER_RATIO: f64 = 1.20;

/// Samples random boxes in a `2^bits` grid and counts runs per curve.
pub fn measure(bits: u32, samples: usize, seed: u64) -> RectReport {
    let geom = GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let side = geom.side();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut h_runs, mut z_runs) = (0u64, 0u64);
    for _ in 0..samples {
        // Uniform over all rectangles: each corner pair is two uniform
        // draws, sorted — the distribution [9] averages over.
        let mut span = || {
            let a = rng.gen_range(0..side);
            let b = rng.gen_range(0..side);
            (a.min(b), a.max(b))
        };
        let (x0, x1) = span();
        let (y0, y1) = span();
        let (z0, z1) = span();
        let h = Region::from_box(geom, [x0, y0, z0], [x1, y1, z1]).expect("box in grid");
        h_runs += h.run_count() as u64;
        z_runs += h.to_curve(CurveKind::Morton).run_count() as u64;
    }
    RectReport { samples, h_runs, z_runs }
}

impl RectReport {
    /// Measured z:h ratio.
    pub fn ratio(&self) -> f64 {
        self.z_runs as f64 / self.h_runs.max(1) as f64
    }

    /// Renders the comparison.
    pub fn render(&self) -> String {
        format!(
            "Random 3-d rectangles ({} samples): (#h-runs):(#z-runs) = 1 : {:.2}  (paper [9]: 1 : {PAPER_RATIO:.2})\n\
             note: [9]'s exact sampling protocol is unpublished; uniform random\n\
             rectangles give a higher ratio than the brain REGIONs' 1.27, with the\n\
             same winner.  Hilbert always needs fewer runs.\n",
            self.samples,
            self.ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangle_ratio_is_near_one_point_two() {
        let rep = measure(5, 80, 42);
        let ratio = rep.ratio();
        // Uniform random rectangles land around 1.5-1.9 (the published
        // 1.20 used an unavailable enumeration protocol); the invariant
        // that matters is the winner and the magnitude band.
        assert!(
            (1.15..2.2).contains(&ratio),
            "rectangle z:h ratio {ratio} out of the plausible band"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = measure(4, 30, 9);
        let b = measure(4, 30, 9);
        assert_eq!(a.h_runs, b.h_runs);
        assert_eq!(a.z_runs, b.z_runs);
        assert!(a.render().contains("1.20"));
    }
}
