//! Table 4: multi-study n-way intersection under different REGION
//! encodings.
//!
//! "Compute the REGION in which all 5 PET studies consistently have
//! intensities in the range 128-159 … We used z- and h-runs with the
//! 'naive' scheme, as well as octants.  We found h-runs to be superior."

use qbism::{QbismConfig, QbismSystem};
use qbism_region::{OctantKind, RegionCodec};
use qbism_sfc::CurveKind;

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Encoding label.
    pub method: String,
    /// LFM 4 KiB page reads.
    pub lfm_ios: u64,
    /// Native database cpu seconds on this machine.
    pub native_seconds: f64,
    /// Simulated 1994 real seconds.
    pub sim_seconds: f64,
    /// Voxels in the intersection (identical across methods).
    pub voxels: u64,
}

/// The paper's published Table 4: (method, I/Os, cpu, real).
pub const PAPER_TABLE4: [(&str, u64, f64, f64); 3] = [
    ("h-runs, naive", 446, 1.02, 5.7),
    ("z-runs, naive", 593, 1.26, 7.3),
    ("octants (z order)", 664, 1.49, 8.1),
];

/// The three encoding configurations the paper compares.
pub fn methods() -> [(&'static str, CurveKind, RegionCodec); 3] {
    [
        ("h-runs, naive", CurveKind::Hilbert, RegionCodec::Naive),
        ("z-runs, naive", CurveKind::Morton, RegionCodec::Naive),
        ("octants (z order)", CurveKind::Morton, RegionCodec::Octant(OctantKind::Cubic)),
    ]
}

/// Runs the multi-study query once per encoding method.  Each method
/// gets its own installation (the encoding is a load-time physical
/// design choice), sharing the same seed so the *data* is identical.
pub fn measure(base: &QbismConfig, lo: u8, hi: u8) -> Vec<Table4Row> {
    methods()
        .into_iter()
        .map(|(label, curve, codec)| {
            let config = QbismConfig { curve, region_codec: codec, ..base.clone() };
            let sys = QbismSystem::install(&config).expect("install");
            let ids = sys.pet_study_ids.clone();
            let (region, cost) =
                sys.server.multi_study_band_region(&ids, lo, hi).expect("multi-study query");
            Table4Row {
                method: label.to_string(),
                lfm_ios: cost.lfm.pages_read,
                native_seconds: cost.native_db_seconds,
                sim_seconds: cost.sim_db_seconds,
                voxels: region.voxel_count(),
            }
        })
        .collect()
}

/// Renders the paper-vs-measured comparison.
pub fn report(base: &QbismConfig, lo: u8, hi: u8) -> String {
    let rows = measure(base, lo, hi);
    let mut out = format!(
        "TABLE 4 multi-study ({} PET studies, band {lo}-{hi}, grid {}³)\n\
         {:<20} {:>8} {:>12} {:>10} {:>10}\n",
        base.pet_studies,
        base.side(),
        "method",
        "I/Os",
        "native(s)",
        "sim(s)",
        "voxels"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<20} {:>8} {:>12.4} {:>10.2} {:>10}\n",
            r.method, r.lfm_ios, r.native_seconds, r.sim_seconds, r.voxels
        ));
    }
    out.push_str("\npaper (128³, 5 PET studies, band 128-159):\n");
    for (m, io, cpu, real) in PAPER_TABLE4 {
        out.push_str(&format!("{m:<20} {io:>8} {cpu:>12.2} {real:>10.1}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_runs_win_as_in_the_paper() {
        let base = QbismConfig { pet_studies: 3, ..QbismConfig::medium() };
        let rows = measure(&base, 64, 95);
        assert_eq!(rows.len(), 3);
        let h = &rows[0];
        let z = &rows[1];
        let o = &rows[2];
        // All three compute the same voxel set.
        assert_eq!(h.voxels, z.voxels);
        assert_eq!(h.voxels, o.voxels);
        // Paper ordering: h-runs win.  (The z-vs-octant order needs the
        // octant:run ratio above 2 — 4-byte octants vs 8-byte runs —
        // which holds at 128³ [see EXPERIMENTS.md] but is noise-level at
        // this grid size, so only Hilbert's win is asserted here.)
        assert!(h.lfm_ios <= z.lfm_ios, "h {} vs z {}", h.lfm_ios, z.lfm_ios);
        // Compare the deterministic simulated-disk component only: when
        // the I/O counts tie at this grid size, total sim_seconds is
        // decided by native wall-clock jitter and would flake.
        let sim_disk = |r: &Table4Row| r.sim_seconds - r.native_seconds;
        assert!(sim_disk(h) <= sim_disk(z) + 1e-9);
        // h vs octant needs regions big enough that per-region page
        // rounding (every REGION read costs >= 1 page) stops dominating;
        // the 128³ run in EXPERIMENTS.md shows the full paper ordering.
        assert!(o.lfm_ios >= 3, "each band REGION costs at least one page");
    }

    #[test]
    fn report_contains_all_methods() {
        let base = QbismConfig { pet_studies: 2, ..QbismConfig::small_test() };
        let text = report(&base, 64, 95);
        for m in ["h-runs, naive", "z-runs, naive", "octants (z order)", "paper"] {
            assert!(text.contains(m), "missing {m}");
        }
    }
}
