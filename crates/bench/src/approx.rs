//! Ablation: approximate REGIONs (Section 4.2's "mingap" / GxGxG
//! minimum-octant proposal).
//!
//! The paper describes the trade: approximation "effectively increases
//! the volume of a REGION … while simultaneously reducing the number of
//! octants or runs required to represent it", and queries over
//! approximate REGIONs "require post-processing with exact REGIONs".
//! This module measures that trade end to end: region storage bytes,
//! extraction page I/O, voxels read vs. voxels kept after refinement.

use qbism_lfm::LongFieldManager;
use qbism_phantom::{build_atlas, PetField};
use qbism_region::RegionCodec;
use qbism_sfc::CurveKind;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct ApproxRow {
    /// `mingap` used (1 = exact).
    pub mingap: u64,
    /// Runs in the stored region.
    pub runs: usize,
    /// Stored region bytes (naive codec).
    pub region_bytes: usize,
    /// 4 KiB pages read to extract the region's voxels from the volume.
    pub extraction_pages: u64,
    /// Voxels read (approximation reads extra).
    pub voxels_read: u64,
    /// Voxels surviving refinement (the exact answer, constant).
    pub voxels_kept: u64,
}

/// Measures the exact region and a sweep of mingap approximations for
/// one structure at grid `2^bits`.
pub fn measure(bits: u32, structure: &str, mingaps: &[u64], seed: u64) -> Vec<ApproxRow> {
    let geom = qbism_region::GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let atlas = build_atlas(geom);
    let field = PetField::new(&atlas, seed, 3);
    let volume = crate::population::sample_field(geom, &field);
    let exact = atlas.structure(structure).expect("known structure").region.clone();
    let mut lfm = LongFieldManager::new(1 << 28, 4096).expect("device");
    let volume_lf = lfm.create(volume.values()).expect("volume stored");
    let mut out = Vec::new();
    for &mingap in mingaps {
        let region = exact.approximate_mingap(mingap);
        let bytes = RegionCodec::Naive.encode(&region).expect("encodes");
        lfm.reset_stats();
        let pieces: Vec<(u64, u64)> = region.runs().iter().map(|r| (r.start, r.len())).collect();
        let mut values = Vec::new();
        lfm.read_pieces_into(volume_lf, &pieces, &mut values).expect("extract");
        // Post-processing with the exact region.
        let kept = region.refine_with_exact(&exact);
        out.push(ApproxRow {
            mingap,
            runs: region.run_count(),
            region_bytes: bytes.len(),
            extraction_pages: lfm.stats().pages_read,
            voxels_read: region.voxel_count(),
            voxels_kept: kept.voxel_count(),
        });
    }
    out
}

/// Renders the ablation table.
pub fn report(bits: u32, structure: &str, seed: u64) -> String {
    let rows = measure(bits, structure, &[1, 2, 4, 8, 16, 32], seed);
    let mut out = format!(
        "Approximate REGIONs ablation: '{structure}' at {}³ (mingap sweep)\n\
         {:>8} {:>8} {:>12} {:>8} {:>12} {:>12} {:>9}\n",
        1u32 << bits,
        "mingap",
        "runs",
        "bytes",
        "pages",
        "voxels read",
        "voxels kept",
        "overread"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>8} {:>12} {:>8} {:>12} {:>12} {:>8.2}x\n",
            r.mingap,
            r.runs,
            r.region_bytes,
            r.extraction_pages,
            r.voxels_read,
            r.voxels_kept,
            r.voxels_read as f64 / r.voxels_kept.max(1) as f64,
        ));
    }
    out.push_str(
        "paper: approximation shrinks the REGION representation at the cost of\n\
         reading outside voxels that exact post-processing then discards.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_the_papers_trade() {
        let rows = measure(5, "ntal", &[1, 4, 16], 7);
        assert_eq!(rows.len(), 3);
        let exact = &rows[0];
        assert_eq!(exact.mingap, 1);
        assert_eq!(exact.voxels_read, exact.voxels_kept, "exact region reads exactly the answer");
        for w in rows.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert!(b.runs <= a.runs, "coarser mingap cannot add runs");
            assert!(b.region_bytes <= a.region_bytes, "representation shrinks");
            assert!(b.voxels_read >= a.voxels_read, "overread grows");
            assert_eq!(b.voxels_kept, a.voxels_kept, "refined answer is invariant");
        }
        let coarsest = rows.last().expect("rows");
        assert!(coarsest.runs < exact.runs, "the sweep must actually coarsen");
    }

    #[test]
    fn report_renders_all_columns() {
        let text = report(5, "thalamus", 7);
        for needle in ["mingap", "runs", "bytes", "voxels kept", "overread"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
