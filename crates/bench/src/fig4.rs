//! Figure 4: REGION storage size versus the entropy bound.
//!
//! "The ratios of average REGION sizes were (entropy):(h-run-elias):
//! (h-run-naive):(oblong-octant):(octant) = 1 : 1.17 : 9.50 : 10.4 :
//! 17.8", with linear-fit correlations 0.968–0.985.  Conclusions: elias
//! achieves ~1.2x the entropy bound (an 8-fold gain over naive), and
//! naive beats octants roughly 2x.

use crate::population::region_population;
use qbism_region::{linear_fit_through_origin, DeltaStats};

/// Per-region sizes, in bytes.
#[derive(Debug, Clone)]
pub struct Fig4Sample {
    /// Region label.
    pub name: String,
    /// EQ 2 entropy bound.
    pub entropy_bytes: f64,
    /// h-run-elias payload.
    pub elias: usize,
    /// h-run-naive payload.
    pub naive: usize,
    /// Oblong-octant payload.
    pub oblong: usize,
    /// Octant payload.
    pub octant: usize,
}

/// The measured Figure 4 report.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// Per-region samples.
    pub samples: Vec<Fig4Sample>,
    /// Slope+correlation of each method vs the entropy bound, in the
    /// order elias, naive, oblong, octant.
    pub fits: [(f64, f64); 4],
}

/// The paper's published size ratios (entropy first).
pub const PAPER_RATIOS: [f64; 5] = [1.0, 1.17, 9.50, 10.4, 17.8];

/// Measures Figure 4 over the population.
pub fn measure(bits: u32, pet: usize, mri: usize, seed: u64) -> Fig4Report {
    let pop = region_population(bits, pet, mri, seed);
    let samples: Vec<Fig4Sample> = pop
        .iter()
        .map(|r| {
            let [elias, naive, oblong, octant] =
                r.region.encoding_sizes().expect("grid fits u32 codecs");
            Fig4Sample {
                name: r.name.clone(),
                entropy_bytes: DeltaStats::measure(&r.region).entropy_bound_bytes(),
                elias,
                naive,
                oblong,
                octant,
            }
        })
        .collect();
    let fit = |f: fn(&Fig4Sample) -> f64| -> (f64, f64) {
        let pts: Vec<(f64, f64)> = samples.iter().map(|s| (s.entropy_bytes, f(s))).collect();
        linear_fit_through_origin(&pts).unwrap_or((f64::NAN, 0.0))
    };
    let fits = [
        fit(|s| s.elias as f64),
        fit(|s| s.naive as f64),
        fit(|s| s.oblong as f64),
        fit(|s| s.octant as f64),
    ];
    Fig4Report { samples, fits }
}

impl Fig4Report {
    /// Measured ratio list `(entropy=1, elias, naive, oblong, octant)`.
    pub fn ratios(&self) -> [f64; 5] {
        [1.0, self.fits[0].0, self.fits[1].0, self.fits[2].0, self.fits[3].0]
    }

    /// Renders the paper-vs-measured comparison.
    pub fn render(&self) -> String {
        let r = self.ratios();
        let p = PAPER_RATIOS;
        let mut out =
            format!("Figure 4 REGION size vs entropy bound, {} REGIONs\n", self.samples.len());
        out.push_str(&format!(
            "  measured (entropy:elias:naive:oblong:octant) = 1 : {:.2} : {:.2} : {:.2} : {:.2}\n",
            r[1], r[2], r[3], r[4]
        ));
        out.push_str(&format!(
            "  paper                                        = 1 : {:.2} : {:.2} : {:.2} : {:.2}\n",
            p[1], p[2], p[3], p[4]
        ));
        out.push_str(&format!(
            "  fit correlations: elias {:.3}, naive {:.3}, oblong {:.3}, octant {:.3} (paper: 0.968-0.985)\n",
            self.fits[0].1, self.fits[1].1, self.fits[2].1, self.fits[3].1
        ));
        out.push_str(&format!(
            "  derived: naive/elias = {:.1}x (paper ~8x), octant/naive = {:.1}x (paper ~1.9x)\n",
            r[2] / r[1],
            r[4] / r[2]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_ordering_matches_the_paper() {
        let rep = measure(5, 2, 1, 7);
        let r = rep.ratios();
        assert!(r[1] >= 1.0, "elias cannot beat entropy: {r:?}");
        assert!(r[1] < 2.2, "elias should sit near the bound: {r:?}");
        assert!(r[2] > r[1] * 2.5, "naive much larger than elias: {r:?}");
        assert!(r[3] >= r[2] * 0.8, "oblong comparable to naive: {r:?}");
        assert!(r[4] > r[3], "octant largest: {r:?}");
    }

    #[test]
    fn fits_are_linear() {
        let rep = measure(5, 2, 1, 7);
        for (i, (_, corr)) in rep.fits.iter().enumerate() {
            assert!(*corr > 0.9, "method {i} correlation {corr}");
        }
    }

    #[test]
    fn every_sample_respects_the_entropy_bound() {
        let rep = measure(5, 1, 1, 3);
        for s in &rep.samples {
            // elias >= entropy, modulo the sub-byte rounding of tiny regions
            assert!(
                s.elias as f64 + 1.0 >= s.entropy_bytes,
                "{}: elias {} below entropy {}",
                s.name,
                s.elias,
                s.entropy_bytes
            );
        }
    }

    #[test]
    fn render_mentions_all_methods() {
        let text = measure(5, 1, 0, 7).render();
        for needle in ["elias", "naive", "oblong", "octant", "paper"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
