//! Compressed-tablespace benchmark: bytes-on-device and end-to-end
//! pages-read / wall time, default vs compressed mode, at 64³ and 128³.
//!
//! Two systems are installed per grid scale from the *same* seed — one
//! with the paper's default storage layout, one with
//! [`QbismConfig::with_compressed_tablespace`] — and the same query
//! workload runs against both: EQ 1 (`full_study`, volume-dominated —
//! the control that must not regress), EQ 2 (`band_data`), the mixed
//! band ∩ structure query, and Table 4's multi-study band fold (100 %
//! REGION pages — the query class compressed-domain execution targets).
//! Every answer is asserted bit-identical across modes before any
//! measurement is recorded.
//!
//! Per query the harness records logical pages read (the Table 3 "LFM
//! Disk I/Os" accounting), physical page transfers on a cold cache,
//! cold and cached native wall time, and a *paced* wall time —
//! `cold wall + latency_scale × simulated 1994 disk seconds` — the
//! same replay idiom as the parallel bench, so the wall-clock win
//! tracks the modelled disk on any host.  The `compressed` binary
//! writes `BENCH_compressed.json`; CI's compressed-gate enforces the
//! 1.5× pages floor on the region-dominated query at 128³.

use qbism::{QbismConfig, QbismSystem};
use qbism_lfm::CacheConfig;
use qbism_starburst::Value;
use std::time::Instant;

/// Measurements of one query in one storage mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sample {
    /// Logical 4 KiB pages read (the Table 3 I/O column).
    pub pages_read: u64,
    /// Physical pages staged off the device with a cold cache
    /// (transfer first pages + coalesced pages + readahead pages).
    pub phys_pages: u64,
    /// Native wall seconds, cold cache.
    pub cold_wall: f64,
    /// Native wall seconds, warm cache (second run).
    pub cached_wall: f64,
    /// Simulated 1994 database seconds (disk model + native cpu).
    pub sim_seconds: f64,
}

impl Sample {
    /// Cold wall plus the replayed share of simulated disk time.
    pub fn paced_wall(&self, latency_scale: f64) -> f64 {
        self.cold_wall + latency_scale * self.sim_seconds
    }
}

/// One query class compared across the two storage modes.
#[derive(Debug, Clone)]
pub struct QueryComparison {
    /// Query label.
    pub query: &'static str,
    /// True when the query reads (almost) only REGION pages — the
    /// class the CI pages floor gates on.
    pub region_dominated: bool,
    /// Default-tablespace measurements.
    pub default_mode: Sample,
    /// Compressed-tablespace measurements.
    pub compressed_mode: Sample,
}

impl QueryComparison {
    /// Physical pages-read reduction factor (default / compressed).
    pub fn pages_ratio(&self) -> f64 {
        if self.compressed_mode.phys_pages == 0 {
            return f64::INFINITY;
        }
        self.default_mode.phys_pages as f64 / self.compressed_mode.phys_pages as f64
    }
}

/// Both modes at one grid scale.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// Grid side (voxels per axis).
    pub side: u32,
    /// Stored REGION long-field bytes, default tablespace.
    pub default_region_bytes: u64,
    /// Stored REGION long-field bytes, compressed tablespace.
    pub compressed_region_bytes: u64,
    /// Per-query comparisons.
    pub queries: Vec<QueryComparison>,
}

impl ScaleRun {
    /// On-device compression factor for REGION storage.
    pub fn bytes_ratio(&self) -> f64 {
        if self.compressed_region_bytes == 0 {
            return f64::INFINITY;
        }
        self.default_region_bytes as f64 / self.compressed_region_bytes as f64
    }
}

/// The full report.
#[derive(Debug, Clone)]
pub struct CompressedReport {
    /// One entry per grid scale, in sweep order.
    pub scales: Vec<ScaleRun>,
    /// Fraction of simulated disk seconds replayed into paced wall.
    pub latency_scale: f64,
}

impl CompressedReport {
    /// Smallest physical pages-read reduction over the region-dominated
    /// queries at the given grid side (`f64::INFINITY` when absent).
    pub fn gated_pages_ratio(&self, side: u32) -> f64 {
        self.scales
            .iter()
            .filter(|s| s.side == side)
            .flat_map(|s| s.queries.iter())
            .filter(|q| q.region_dominated)
            .map(QueryComparison::pages_ratio)
            .fold(f64::INFINITY, f64::min)
    }

    /// True when every region-dominated query at the given side is at
    /// least as fast in paced wall time under the compressed tablespace.
    pub fn gated_wall_win(&self, side: u32) -> bool {
        self.scales.iter().filter(|s| s.side == side).flat_map(|s| s.queries.iter()).all(|q| {
            !q.region_dominated
                || q.compressed_mode.paced_wall(self.latency_scale)
                    < q.default_mode.paced_wall(self.latency_scale)
        })
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for scale in &self.scales {
            out.push_str(&format!(
                "Compressed tablespace, {}³ grid — REGION bytes on device: {} default, {} compressed ({:.2}x)\n\
                 {:<24} {:>9} {:>9} {:>7} {:>11} {:>11}\n",
                scale.side,
                scale.default_region_bytes,
                scale.compressed_region_bytes,
                scale.bytes_ratio(),
                "query",
                "pages(d)",
                "pages(c)",
                "ratio",
                "paced(d) s",
                "paced(c) s",
            ));
            for q in &scale.queries {
                out.push_str(&format!(
                    "{:<24} {:>9} {:>9} {:>6.2}x {:>11.4} {:>11.4}{}\n",
                    q.query,
                    q.default_mode.phys_pages,
                    q.compressed_mode.phys_pages,
                    q.pages_ratio(),
                    q.default_mode.paced_wall(self.latency_scale),
                    q.compressed_mode.paced_wall(self.latency_scale),
                    if q.region_dominated { "  [gated]" } else { "" },
                ));
            }
        }
        out
    }

    /// Machine-readable report for `BENCH_compressed.json`.
    pub fn to_json(&self) -> String {
        let scales = self
            .scales
            .iter()
            .map(|s| {
                let queries = s
                    .queries
                    .iter()
                    .map(|q| {
                        format!(
                            "        {{ \"query\": \"{}\", \"region_dominated\": {}, \
                             \"default_pages\": {}, \"compressed_pages\": {}, \
                             \"default_phys_pages\": {}, \"compressed_phys_pages\": {}, \
                             \"pages_ratio\": {:.3}, \
                             \"default_cold_wall_s\": {:.6}, \"compressed_cold_wall_s\": {:.6}, \
                             \"default_cached_wall_s\": {:.6}, \"compressed_cached_wall_s\": {:.6}, \
                             \"default_paced_s\": {:.6}, \"compressed_paced_s\": {:.6} }}",
                            q.query,
                            q.region_dominated,
                            q.default_mode.pages_read,
                            q.compressed_mode.pages_read,
                            q.default_mode.phys_pages,
                            q.compressed_mode.phys_pages,
                            q.pages_ratio(),
                            q.default_mode.cold_wall,
                            q.compressed_mode.cold_wall,
                            q.default_mode.cached_wall,
                            q.compressed_mode.cached_wall,
                            q.default_mode.paced_wall(self.latency_scale),
                            q.compressed_mode.paced_wall(self.latency_scale),
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    "    {{\n      \"grid_side\": {},\n      \
                     \"default_region_bytes\": {},\n      \
                     \"compressed_region_bytes\": {},\n      \
                     \"bytes_ratio\": {:.3},\n      \"queries\": [\n{}\n      ]\n    }}",
                    s.side,
                    s.default_region_bytes,
                    s.compressed_region_bytes,
                    s.bytes_ratio(),
                    queries,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"compressed_tablespace\",\n  \
             \"workload\": \"EQ1 + EQ2 + band-in-structure + multi-study band fold, default vs compressed tablespace\",\n  \
             \"design\": \"same seed both modes; answers asserted bit-identical before timing; paced wall replays latency_scale x simulated 1994 disk seconds so the win tracks the disk model on any host\",\n  \
             \"latency_scale\": {},\n  \"scales\": [\n{}\n  ]\n}}\n",
            self.latency_scale, scales,
        )
    }
}

fn config_for(bits: u32) -> QbismConfig {
    QbismConfig {
        atlas_bits: bits,
        pet_studies: 3,
        mri_studies: 0,
        device_capacity: if bits >= 6 { 1 << 30 } else { 1 << 24 },
        ..QbismConfig::paper_scale()
    }
}

/// Sums the stored REGION long-field bytes (atlas structures + bands).
fn region_bytes(sys: &mut QbismSystem) -> u64 {
    let db = sys.server.database();
    let mut total = 0u64;
    for sql in ["select ast.region from atlasStructure ast", "select b.region from intensityBand b"]
    {
        let rs = db.query(sql).expect("region scan");
        for row in rs.rows() {
            if let Value::Long(id) = &row[0] {
                total += db.read_long_field(*id).expect("read region field").len() as u64;
            }
        }
    }
    total
}

/// Runs `query` cold (cache just cleared) then cached, recording pages
/// and wall time.  Returns the cold run's cost-derived sample.
///
/// Physical pages are taken from the LFM's device-transfer meters: each
/// coalesced transfer charges its first page to
/// `qbism_lfm_extent_phys_reads_total` and the remainder to the
/// coalesced / readahead page counters, so the sum of the three deltas
/// is exactly the pages staged off the device during the cold run.
fn sample<F>(sys: &mut QbismSystem, mut query: F) -> Sample
where
    F: FnMut(&QbismSystem) -> qbism::QueryCost,
{
    let reg = sys.server.metrics();
    let transfers = reg.counter("qbism_lfm_extent_phys_reads_total");
    let coalesced = reg.counter("qbism_lfm_extent_coalesced_pages_total");
    let readahead = reg.counter("qbism_lfm_extent_readahead_pages_total");
    let staged = |t: &qbism_obs::Counter, c: &qbism_obs::Counter, r: &qbism_obs::Counter| {
        t.get() + c.get() + r.get()
    };
    let cache = sys.server.cache_config();
    sys.server.set_cache_config(cache); // clears the pool: cold run
    let staged0 = staged(&transfers, &coalesced, &readahead);
    let start = Instant::now();
    let cost = query(sys);
    let cold_wall = start.elapsed().as_secs_f64();
    let phys_pages = staged(&transfers, &coalesced, &readahead) - staged0;
    let start = Instant::now();
    let _ = query(sys);
    let cached_wall = start.elapsed().as_secs_f64();
    Sample {
        pages_read: cost.lfm.pages_read,
        phys_pages,
        cold_wall,
        cached_wall,
        sim_seconds: cost.sim_db_seconds,
    }
}

/// Measures both modes at every grid scale in `bits_list`.
pub fn measure(bits_list: &[u32], latency_scale: f64) -> CompressedReport {
    let mut scales = Vec::with_capacity(bits_list.len());
    for &bits in bits_list {
        let config = config_for(bits);
        let mut plain = QbismSystem::install(&config).expect("install default");
        let mut packed = QbismSystem::install(&config.clone().with_compressed_tablespace())
            .expect("install compressed");
        let cache = CacheConfig { capacity_pages: 512, enabled: true, readahead_pages: 8 };
        plain.server.set_cache_config(cache);
        packed.server.set_cache_config(cache);
        let study = plain.pet_study_ids[0];
        let studies = plain.pet_study_ids.clone();
        assert_eq!(studies, packed.pet_study_ids, "modes must load the same studies");

        // Answers must be bit-identical across modes before any clock
        // is trusted.
        assert_eq!(
            plain.server.full_study(study).expect("EQ1 default").data,
            packed.server.full_study(study).expect("EQ1 compressed").data,
        );
        assert_eq!(
            plain.server.band_data(study, 32, 63).expect("EQ2 default").data,
            packed.server.band_data(study, 32, 63).expect("EQ2 compressed").data,
        );
        assert_eq!(
            plain.server.band_in_structure(study, 64, 95, "thalamus").expect("Q6 default").data,
            packed.server.band_in_structure(study, 64, 95, "thalamus").expect("Q6 compressed").data,
        );
        assert_eq!(
            plain.server.multi_study_band_region(&studies, 32, 63).expect("T4 default").0,
            packed.server.multi_study_band_region(&studies, 32, 63).expect("T4 compressed").0,
        );

        let mut queries = Vec::new();
        let mut compare =
            |label: &'static str,
             region_dominated: bool,
             run: &mut dyn FnMut(&QbismSystem) -> qbism::QueryCost| {
                let default_mode = sample(&mut plain, &mut *run);
                let compressed_mode = sample(&mut packed, &mut *run);
                queries.push(QueryComparison {
                    query: label,
                    region_dominated,
                    default_mode,
                    compressed_mode,
                });
            };
        compare("full_study", false, &mut |sys| sys.server.full_study(study).expect("EQ1").cost);
        compare("band_data", false, &mut |sys| {
            sys.server.band_data(study, 32, 63).expect("EQ2").cost
        });
        compare("band_in_structure", false, &mut |sys| {
            sys.server.band_in_structure(study, 64, 95, "thalamus").expect("Q6").cost
        });
        compare("multi_study_band_region", true, &mut |sys| {
            sys.server.multi_study_band_region(&studies, 32, 63).expect("T4").1
        });

        scales.push(ScaleRun {
            side: config.side(),
            default_region_bytes: region_bytes(&mut plain),
            compressed_region_bytes: region_bytes(&mut packed),
            queries,
        });
    }
    CompressedReport { scales, latency_scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_compared_and_report_renders() {
        // Tiny grid: the answer-identity assertions inside measure()
        // are the point; ratios just need to be sane.
        let report = measure(&[4], 0.02);
        assert_eq!(report.scales.len(), 1);
        let scale = &report.scales[0];
        assert_eq!(scale.side, 16);
        assert!(
            scale.compressed_region_bytes < scale.default_region_bytes,
            "compressed tablespace must be smaller on device"
        );
        assert_eq!(scale.queries.len(), 4);
        for q in &scale.queries {
            assert!(
                q.compressed_mode.pages_read <= q.default_mode.pages_read,
                "{}: compressed mode must not read more pages",
                q.query
            );
        }
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"compressed_tablespace\""));
        assert!(json.contains("\"multi_study_band_region\""));
        assert!(json.contains("\"bytes_ratio\""));
        let text = report.render();
        assert!(text.contains("[gated]"));
    }
}
