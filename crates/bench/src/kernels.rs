//! Run-native kernel microbenchmarks: the seed's id-materializing
//! paths against the streaming kernels, at the paper's 64³ and 128³
//! scales.
//!
//! Four kernels are measured, seed vs kernel, with the answers checked
//! for equality every repetition:
//!
//! * **n-way intersect** — pairwise fold over materialized id vectors
//!   (`iter_ids` + `from_ids` per step) vs the k-way streaming run
//!   merge behind [`qbism_region::intersect_all`];
//! * **curve transcode** — per-voxel `coords_of`/`index_of` plus a
//!   full re-sort vs the octant-batched run transcoder behind
//!   [`qbism_region::Region::to_curve`];
//! * **band extract** — per-id `Field::at_id` gathering vs the
//!   run-native [`qbism_volume::Field::extract`];
//! * **cold read** — one `read_piece` call per run vs a single vectored
//!   [`qbism_lfm::LongFieldManager::read_pieces_into`] call.
//!
//! A final *server replay* runs a mixed EQ1/EQ2/population workload on
//! a real [`qbism::MedicalServer`] with the page cache and sequential
//! readahead on, reporting wall time, native DB seconds, and the
//! physical-extent counters (`qbism_lfm_extent_*`) so the kernel-level
//! wins are visible at server level.  Logical `IoStats` — and with it
//! every `tablegen` column — is unchanged by any of this.
//!
//! The `kernels` binary writes `BENCH_kernels.json` for CI's perf gate.

use qbism::{QbismConfig, QbismSystem};
use qbism_lfm::{CacheConfig, LongFieldManager};
use qbism_region::{GridGeometry, Region};
use qbism_sfc::CurveKind;
use qbism_volume::Field;
use std::hint::black_box;
use std::time::Instant;

/// One kernel measured at one grid scale.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Kernel name (stable key: `nway_intersect`, `curve_transcode`,
    /// `band_extract`, `cold_read`).
    pub name: &'static str,
    /// Grid side (voxels per axis).
    pub side: u32,
    /// Seconds per repetition on the seed (id-materializing) path.
    pub seed_seconds: f64,
    /// Seconds per repetition on the streaming kernel path.
    pub kernel_seconds: f64,
}

impl KernelRun {
    /// Seed time over kernel time.
    pub fn speedup(&self) -> f64 {
        if self.kernel_seconds > 0.0 {
            self.seed_seconds / self.kernel_seconds
        } else {
            0.0
        }
    }
}

/// The server-level replay: a mixed query workload with the page cache
/// and readahead on.
#[derive(Debug, Clone, Copy)]
pub struct ReplayRun {
    /// Grid side of the replayed system.
    pub side: u32,
    /// Queries executed.
    pub queries: usize,
    /// Wall seconds for the whole replay.
    pub wall_seconds: f64,
    /// Native (host CPU) DB seconds summed over the replay — the part
    /// the kernels accelerate.
    pub native_db_seconds: f64,
    /// Physical device transfers performed (coalesced extents).
    pub phys_reads: u64,
    /// Demanded pages that rode an existing transfer instead of costing
    /// their own simulated seek.
    pub coalesced_pages: u64,
    /// Pages staged by sequential readahead.
    pub readahead_pages: u64,
}

/// The full report: kernel sweeps plus the server replay.
#[derive(Debug, Clone)]
pub struct KernelsReport {
    /// One entry per (kernel, side).
    pub runs: Vec<KernelRun>,
    /// The server-level replay.
    pub replay: ReplayRun,
}

impl KernelsReport {
    /// Speedup of a named kernel at a given side (0.0 when absent).
    pub fn speedup_of(&self, name: &str, side: u32) -> f64 {
        self.runs
            .iter()
            .find(|r| r.name == name && r.side == side)
            .map(KernelRun::speedup)
            .unwrap_or(0.0)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Run-native kernels, seed vs kernel wall time\n\
             {:>16} {:>6} {:>12} {:>12} {:>9}\n",
            "kernel", "side", "seed (ms)", "kernel (ms)", "speedup",
        );
        for r in &self.runs {
            out.push_str(&format!(
                "{:>16} {:>5}³ {:>12.3} {:>12.3} {:>8.2}x\n",
                r.name,
                r.side,
                r.seed_seconds * 1e3,
                r.kernel_seconds * 1e3,
                r.speedup(),
            ));
        }
        out.push_str(&format!(
            "server replay: {} queries on the {}³ system in {:.3} s \
             ({:.3} s native DB); {} physical transfers, \
             {} pages coalesced, {} pages readahead\n",
            self.replay.queries,
            self.replay.side,
            self.replay.wall_seconds,
            self.replay.native_db_seconds,
            self.replay.phys_reads,
            self.replay.coalesced_pages,
            self.replay.readahead_pages,
        ));
        out
    }

    /// Machine-readable report for `BENCH_kernels.json`.
    pub fn to_json(&self) -> String {
        let runs = self
            .runs
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"kernel\": \"{}\", \"side\": {}, \"seed_seconds\": {:.6}, \
                     \"kernel_seconds\": {:.6}, \"speedup\": {:.3} }}",
                    r.name,
                    r.side,
                    r.seed_seconds,
                    r.kernel_seconds,
                    r.speedup(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"benchmark\": \"run_native_kernels\",\n  \
             \"design\": \"seed paths materialize voxel-id vectors per step; kernels stream \
             sorted run lists (k-way gallop merge, octant-batched transcode, run-native \
             extract, vectored coalesced reads); logical IoStats and every tablegen column \
             are unchanged\",\n  \"runs\": [\n{}\n  ],\n  \"server_replay\": {{\n    \
             \"side\": {},\n    \"queries\": {},\n    \"wall_seconds\": {:.6},\n    \
             \"native_db_seconds\": {:.6},\n    \"phys_reads\": {},\n    \
             \"coalesced_pages\": {},\n    \"readahead_pages\": {}\n  }}\n}}\n",
            runs,
            self.replay.side,
            self.replay.queries,
            self.replay.wall_seconds,
            self.replay.native_db_seconds,
            self.replay.phys_reads,
            self.replay.coalesced_pages,
            self.replay.readahead_pages,
        )
    }
}

fn time<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// The seed's n-way intersection: materialize each REGION's id vector
/// and fold pairwise, rebuilding a canonical Region per step.
fn seed_intersect_all(regions: &[&Region]) -> Region {
    let geom = regions[0].geometry();
    let mut acc: Vec<u64> = regions[0].iter_ids().collect();
    for r in &regions[1..] {
        let other: Vec<u64> = r.iter_ids().collect();
        let mut out = Vec::with_capacity(acc.len().min(other.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < acc.len() && j < other.len() {
            match acc[i].cmp(&other[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = out;
    }
    Region::from_ids(geom, acc)
}

/// The seed's curve change: re-map every voxel id and re-sort.
fn seed_to_curve(region: &Region, dst: CurveKind) -> Region {
    let src = region.geometry();
    let dst_geom = src.with_kind(dst);
    let mut coords = [0u32; 3];
    let ids: Vec<u64> = region
        .iter_ids()
        .map(|id| {
            src.coords_of(id, &mut coords);
            dst_geom.index_of(&coords)
        })
        .collect();
    Region::from_ids(dst_geom, ids)
}

/// `k` staggered, mutually overlapping boxes on a Hilbert grid.
fn nway_fixture(bits: u32, k: usize) -> Vec<Region> {
    let geom = GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let side = geom.side();
    let span = side * 3 / 4;
    (0..k as u32)
        .map(|i| {
            let lo = (i * side / 16).min(side - span);
            Region::from_box(geom, [lo; 3], [lo + span - 1; 3]).expect("fixture box")
        })
        .collect()
}

/// A centred ball — the structure-shaped workload for transcode,
/// extract and cold reads.
fn ball_fixture(bits: u32) -> Region {
    let geom = GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let side = geom.side() as i64;
    let c = side / 2;
    let r2 = (side * 3 / 8) * (side * 3 / 8);
    Region::rasterize(geom, |coords| {
        let dx = coords[0] as i64 - c;
        let dy = coords[1] as i64 - c;
        let dz = coords[2] as i64 - c;
        dx * dx + dy * dy + dz * dz <= r2
    })
}

fn bench_nway(bits: u32, reps: usize) -> KernelRun {
    let regions = nway_fixture(bits, 5);
    let refs: Vec<&Region> = regions.iter().collect();
    let seed = seed_intersect_all(&refs);
    let kernel = qbism_region::intersect_all(&refs).expect("non-empty input");
    assert_eq!(seed.runs(), kernel.runs(), "n-way kernel diverged from the seed fold");
    KernelRun {
        name: "nway_intersect",
        side: 1 << bits,
        seed_seconds: time(reps, || {
            black_box(seed_intersect_all(black_box(&refs)));
        }),
        kernel_seconds: time(reps, || {
            black_box(qbism_region::intersect_all(black_box(&refs)));
        }),
    }
}

fn bench_transcode(bits: u32, reps: usize) -> KernelRun {
    let ball = ball_fixture(bits);
    let seed = seed_to_curve(&ball, CurveKind::Morton);
    let kernel = ball.to_curve(CurveKind::Morton);
    assert_eq!(seed.runs(), kernel.runs(), "transcode kernel diverged from the seed re-sort");
    KernelRun {
        name: "curve_transcode",
        side: 1 << bits,
        seed_seconds: time(reps, || {
            black_box(seed_to_curve(black_box(&ball), CurveKind::Morton));
        }),
        kernel_seconds: time(reps, || {
            black_box(black_box(&ball).to_curve(CurveKind::Morton));
        }),
    }
}

fn bench_extract(bits: u32, reps: usize) -> KernelRun {
    let ball = ball_fixture(bits);
    let geom = ball.geometry();
    let field: Field<u8> = Field::from_fn3(geom, |x, y, z| ((x ^ y ^ z) & 0xff) as u8);
    let seed: Vec<u8> = ball.iter_ids().map(|id| field.at_id(id)).collect();
    let kernel = field.extract(&ball).expect("extract");
    assert_eq!(seed.as_slice(), kernel.values(), "extract kernel diverged from per-id gather");
    KernelRun {
        name: "band_extract",
        side: 1 << bits,
        seed_seconds: time(reps, || {
            let v: Vec<u8> = black_box(&ball).iter_ids().map(|id| field.at_id(id)).collect();
            black_box(v);
        }),
        kernel_seconds: time(reps, || {
            black_box(field.extract(black_box(&ball)).expect("extract"));
        }),
    }
}

fn bench_cold_read(bits: u32, reps: usize) -> KernelRun {
    let ball = ball_fixture(bits);
    let bytes = 1u64 << (3 * bits);
    let mut lfm = LongFieldManager::new(bytes * 2, 4096).expect("device");
    let data: Vec<u8> = (0..bytes).map(|i| (i % 253) as u8).collect();
    let id = lfm.create(&data).expect("create");
    // One byte per voxel: the ball's runs are the read plan, exactly the
    // extraction path's piece list.
    let pieces: Vec<(u64, u64)> = ball.runs().iter().map(|r| (r.start, r.len())).collect();
    let mut seed_out = Vec::new();
    for &(off, len) in &pieces {
        seed_out.extend_from_slice(&lfm.read_piece(id, off, len).expect("seed read"));
    }
    let mut kernel_out = Vec::new();
    lfm.read_pieces_into(id, &pieces, &mut kernel_out).expect("vectored read");
    assert_eq!(seed_out, kernel_out, "vectored read diverged from per-piece reads");
    KernelRun {
        name: "cold_read",
        side: 1 << bits,
        seed_seconds: time(reps, || {
            let mut out = Vec::with_capacity(seed_out.len());
            for &(off, len) in &pieces {
                out.extend_from_slice(&lfm.read_piece(id, off, len).expect("seed read"));
            }
            black_box(out);
        }),
        kernel_seconds: time(reps, || {
            let mut out = Vec::with_capacity(kernel_out.len());
            lfm.read_pieces_into(id, &pieces, &mut out).expect("vectored read");
            black_box(out);
        }),
    }
}

fn replay(config: &QbismConfig, queries: usize) -> ReplayRun {
    let mut sys = QbismSystem::install(config).expect("install");
    sys.server.set_cache_config(CacheConfig {
        capacity_pages: 512,
        enabled: true,
        readahead_pages: 8,
    });
    let studies = sys.pet_study_ids.clone();
    let reg = qbism_obs::global();
    let phys0 = reg.counter("qbism_lfm_extent_phys_reads_total").get();
    let coal0 = reg.counter("qbism_lfm_extent_coalesced_pages_total").get();
    let ra0 = reg.counter("qbism_lfm_extent_readahead_pages_total").get();
    let mut native = 0.0;
    let start = Instant::now();
    for i in 0..queries {
        let study = studies[i % studies.len()];
        match i % 3 {
            0 => {
                let a = sys.server.full_study(study).expect("EQ1");
                native += a.cost.native_db_seconds;
            }
            1 => {
                let a = sys.server.band_data(study, 32, 63).expect("EQ2");
                native += a.cost.native_db_seconds;
            }
            _ => {
                let a = sys.server.population_average(&studies, "ntal").expect("population");
                native += a.cost.native_db_seconds;
            }
        }
    }
    ReplayRun {
        side: config.side(),
        queries,
        wall_seconds: start.elapsed().as_secs_f64(),
        native_db_seconds: native,
        phys_reads: reg.counter("qbism_lfm_extent_phys_reads_total").get() - phys0,
        coalesced_pages: reg.counter("qbism_lfm_extent_coalesced_pages_total").get() - coal0,
        readahead_pages: reg.counter("qbism_lfm_extent_readahead_pages_total").get() - ra0,
    }
}

/// Runs every kernel at every grid scale in `bits_list`, then the
/// server replay on `replay_config`.  Every kernel repetition's answer
/// is asserted equal to the seed path's before any clock starts.
pub fn measure(
    bits_list: &[u32],
    replay_config: &QbismConfig,
    replay_queries: usize,
) -> KernelsReport {
    let mut runs = Vec::with_capacity(bits_list.len() * 4);
    for &bits in bits_list {
        let reps = if bits >= 7 { 3 } else { 10 };
        runs.push(bench_nway(bits, reps));
        runs.push(bench_transcode(bits, reps));
        runs.push(bench_extract(bits, reps));
        runs.push(bench_cold_read(bits, reps));
    }
    KernelsReport { runs, replay: replay(replay_config, replay_queries) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_with_seed_paths_and_report_renders() {
        // A tiny sweep: correctness assertions inside each bench are the
        // point; timings just need to be positive.
        let report = measure(&[4], &QbismConfig::small_test(), 4);
        assert_eq!(report.runs.len(), 4);
        for r in &report.runs {
            assert!(r.seed_seconds > 0.0 && r.kernel_seconds > 0.0, "{r:?}");
        }
        assert!(report.replay.queries == 4);
        assert!(report.replay.phys_reads > 0, "replay should issue physical transfers");
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"run_native_kernels\""));
        assert!(json.contains("\"server_replay\""));
        assert!(json.contains("\"kernel\": \"nway_intersect\""));
        let text = report.render();
        assert!(text.contains("cold_read"));
    }
}
