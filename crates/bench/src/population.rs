//! The REGION population Section 4 measures over: "the various anatomic
//! and intensity band REGIONs" — 11 atlas structures plus 8 bands from
//! each of 5 PET and 3 MRI studies.
//!
//! Volumes here are sampled directly from the atlas-space truth fields
//! (no misalignment/warp round trip): Section 4 studies representation
//! statistics of *warped* volumes, and the warp is identity-like by
//! construction, so sampling the truth preserves every measured
//! statistic while keeping the harness fast.

use qbism_phantom::{build_atlas, MriField, PetField, ScalarField3};
use qbism_region::{GridGeometry, Region};
use qbism_sfc::CurveKind;
use qbism_volume::Volume;

/// A named region sample.
pub struct NamedRegion {
    /// Where the region came from (structure name or `PET3 band 64-95`).
    pub name: String,
    /// The region, on the Hilbert curve.
    pub region: Region,
}

/// Builds the full Section 4 population at the given grid size.
///
/// `pet` and `mri` control the number of studies (paper: 5 and 3);
/// bands are 32 wide.  Empty bands are skipped (they carry no
/// representation statistics).
pub fn region_population(bits: u32, pet: usize, mri: usize, seed: u64) -> Vec<NamedRegion> {
    let geom = GridGeometry::new(CurveKind::Hilbert, 3, bits);
    let atlas = build_atlas(geom);
    let mut out: Vec<NamedRegion> = atlas
        .structures()
        .iter()
        .map(|s| NamedRegion { name: s.name.to_string(), region: s.region.clone() })
        .collect();
    let mut add_bands = |label: &str, volume: &Volume| {
        for (lo, hi, region) in volume.intensity_bands(32) {
            if !region.is_empty() {
                out.push(NamedRegion { name: format!("{label} band {lo}-{hi}"), region });
            }
        }
    };
    for i in 0..pet {
        let field = PetField::new(&atlas, seed.wrapping_add(100 + i as u64), 4);
        let vol = sample_field(geom, &field);
        add_bands(&format!("PET{}", i + 1), &vol);
    }
    for i in 0..mri {
        let field = MriField::new(&atlas, seed.wrapping_add(900 + i as u64));
        let vol = sample_field(geom, &field);
        add_bands(&format!("MRI{}", i + 1), &vol);
    }
    out
}

/// Samples a continuous field at voxel centres into a volume.
pub fn sample_field<F: ScalarField3>(geom: GridGeometry, field: &F) -> Volume {
    Volume::from_fn3(geom, |x, y, z| {
        field
            .value(qbism_geometry::Vec3::new(
                f64::from(x) + 0.5,
                f64::from(y) + 0.5,
                f64::from(z) + 0.5,
            ))
            .round()
            .clamp(0.0, 255.0) as u8
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_has_structures_and_bands() {
        let pop = region_population(5, 1, 1, 7);
        assert!(pop.len() > 11, "structures plus at least some bands");
        assert!(pop.iter().any(|r| r.name == "ntal1"));
        assert!(pop.iter().any(|r| r.name.starts_with("PET1 band")));
        assert!(pop.iter().any(|r| r.name.starts_with("MRI1 band")));
        for r in &pop {
            assert!(!r.region.is_empty(), "{} empty", r.name);
        }
    }

    #[test]
    fn population_is_deterministic() {
        let a = region_population(5, 1, 0, 3);
        let b = region_population(5, 1, 0, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.region, y.region, "{} differs", x.name);
        }
    }

    #[test]
    fn bands_of_one_study_partition_the_grid() {
        let geom = GridGeometry::new(CurveKind::Hilbert, 3, 5);
        let atlas = build_atlas(geom);
        let field = PetField::new(&atlas, 5, 3);
        let vol = sample_field(geom, &field);
        let total: u64 = vol.intensity_bands(32).iter().map(|(_, _, r)| r.voxel_count()).sum();
        assert_eq!(total, geom.cell_count());
    }
}
