//! Tables 1 and 2: the worked encodings of the Figure 3 example region.
//!
//! These are exact, not statistical — the harness recomputes them and
//! diffs against the paper's strings.

use qbism_region::{GridGeometry, OctantKind, Region};
use qbism_sfc::CurveKind;

/// The recomputed Tables 1 and 2.
#[derive(Debug, PartialEq, Eq)]
pub struct Tables12 {
    /// Table 1 rows: octants, oblong octants, runs — Z curve.
    pub z_octants: String,
    /// Z oblong octants.
    pub z_oblong: String,
    /// Z runs.
    pub z_runs: String,
    /// Table 2 rows — Hilbert curve.
    pub h_octants: String,
    /// Hilbert oblong octants.
    pub h_oblong: String,
    /// Hilbert runs.
    pub h_runs: String,
}

/// The paper's published Table 1 / Table 2 contents.
pub fn paper_expected() -> Tables12 {
    Tables12 {
        z_octants: "<0001,0> <0100,2> <1100,0> <1101,0>".into(),
        z_oblong: "<0001,0> <0100,2> <1100,1>".into(),
        z_runs: "<1,1> <4,7> <12,13>".into(),
        h_octants: "<0011,0> <0100,2> <1000,0> <1001,0>".into(),
        h_oblong: "<0011,0> <0100,2> <1000,1>".into(),
        h_runs: "<3,9>".into(),
    }
}

/// Recomputes both tables from the Figure 3 region.
pub fn compute() -> Tables12 {
    let z_geom = GridGeometry::new(CurveKind::Morton, 2, 2);
    let region_z = Region::from_ids(z_geom, vec![1, 4, 5, 6, 7, 12, 13]);
    let region_h = region_z.to_curve(CurveKind::Hilbert);
    let octs = |r: &Region, kind: OctantKind| -> String {
        r.octants(kind)
            .iter()
            .map(|o| format!("<{:04b},{}>", o.id, o.rank))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let runs = |r: &Region| -> String {
        r.runs()
            .iter()
            .map(|run| format!("<{},{}>", run.start, run.end))
            .collect::<Vec<_>>()
            .join(" ")
    };
    Tables12 {
        z_octants: octs(&region_z, OctantKind::Cubic),
        z_oblong: octs(&region_z, OctantKind::Oblong),
        z_runs: runs(&region_z),
        h_octants: octs(&region_h, OctantKind::Cubic),
        h_oblong: octs(&region_h, OctantKind::Oblong),
        h_runs: runs(&region_h),
    }
}

/// Renders the comparison for `tablegen`.
pub fn report() -> String {
    let got = compute();
    let want = paper_expected();
    let ok = if got == want { "MATCH" } else { "MISMATCH" };
    format!(
        "TABLE 1 (Z curve) and TABLE 2 (Hilbert curve): {ok}\n\
         {:<16} {:<40} {}\n\
         {:<16} {:<40} {}\n\
         {:<16} {:<40} {}\n\
         {:<16} {:<40} {}\n\
         {:<16} {:<40} {}\n\
         {:<16} {:<40} {}\n",
        "z octants",
        got.z_octants,
        want.z_octants,
        "z oblong",
        got.z_oblong,
        want.z_oblong,
        "z runs",
        got.z_runs,
        want.z_runs,
        "h octants",
        got.h_octants,
        want.h_octants,
        "h oblong",
        got.h_oblong,
        want.h_oblong,
        "h runs",
        got.h_runs,
        want.h_runs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recomputed_tables_match_the_paper_exactly() {
        assert_eq!(compute(), paper_expected());
    }

    #[test]
    fn report_declares_match() {
        assert!(report().contains("MATCH"));
        assert!(!report().contains("MISMATCH"));
    }
}
