//! Section 6.4's scaling claim.
//!
//! "The early filtering will be even more beneficial in multiple-study
//! queries, such as 'display the voxel-wise average intensity inside
//! ntal for these 1,000 PET studies' … the database need only read the
//! relevant disk pages of each study … The reduction in data traffic
//! will be linear in the number of studies involved."

use qbism::{QbismConfig, QbismSystem};

/// One scaling sample.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of studies aggregated.
    pub studies: usize,
    /// Pages read with early filtering (structure pages per study).
    pub filtered_ios: u64,
    /// Pages a flat-file system would read (full volume per study).
    pub flat_ios: u64,
    /// Bytes shipped with early filtering (one structure-sized answer).
    pub filtered_wire: u64,
    /// Bytes a flat-file system would ship (every study in full).
    pub flat_wire: u64,
}

/// Measures the aggregate query at 1..=max_studies.
pub fn measure(config: &QbismConfig, structure: &str, max_studies: usize) -> Vec<ScalingRow> {
    let config = QbismConfig { pet_studies: max_studies, ..config.clone() };
    let sys = QbismSystem::install(&config).expect("install");
    let all_ids = sys.pet_study_ids.clone();
    let full_pages = config.geometry().cell_count().div_ceil(4096);
    let full_bytes = config.geometry().cell_count();
    (1..=max_studies)
        .map(|n| {
            let ids = &all_ids[..n];
            let answer = sys.server.population_average(ids, structure).expect("aggregate");
            ScalingRow {
                studies: n,
                filtered_ios: answer.cost.lfm.pages_read,
                flat_ios: full_pages * n as u64,
                filtered_wire: answer.cost.wire_bytes,
                flat_wire: full_bytes * n as u64,
            }
        })
        .collect()
}

/// Renders the scaling table.
pub fn report(config: &QbismConfig, structure: &str, max_studies: usize) -> String {
    let rows = measure(config, structure, max_studies);
    let mut out = format!(
        "Section 6.4 scaling: voxel-wise average inside '{structure}' (grid {}³)\n\
         {:>8} {:>14} {:>12} {:>14} {:>12} {:>9}\n",
        config.side(),
        "studies",
        "filtered I/Os",
        "flat I/Os",
        "filtered wire",
        "flat wire",
        "saving"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:>8} {:>14} {:>12} {:>14} {:>12} {:>8.1}x\n",
            r.studies,
            r.filtered_ios,
            r.flat_ios,
            r.filtered_wire,
            r.flat_wire,
            r.flat_wire as f64 / r.filtered_wire.max(1) as f64,
        ));
    }
    out.push_str("paper: the traffic reduction grows linearly with the number of studies.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filtered_io_grows_linearly_and_stays_far_below_flat() {
        let rows = measure(&QbismConfig::medium(), "ntal", 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Per-study REGION descriptor reads add pages of overhead
            // that only amortize on real grids (a 32³ study is 8 pages
            // total; at 128³ it is 512).  Require filtering to be within
            // the descriptor overhead here; the release-scale run in
            // EXPERIMENTS.md shows the order-of-magnitude win.
            assert!(
                r.filtered_ios <= r.flat_ios + 2 * r.studies as u64,
                "filtered {} vs flat {}",
                r.filtered_ios,
                r.flat_ios
            );
            // The answer wire size is ONE structure, not n studies.
            assert!(r.filtered_wire < r.flat_wire / r.studies.max(1) as u64 + 4096);
        }
        // Roughly linear filtered I/O growth: doubling studies less than
        // triples the page count (per-study structure pages + fixed).
        let r1 = rows[0].filtered_ios.max(1);
        let r3 = rows[2].filtered_ios;
        assert!(r3 <= r1 * 4, "superlinear I/O growth: {r1} -> {r3}");
        // Saving factor grows with n (the paper's linear-reduction claim).
        let s1 = rows[0].flat_wire as f64 / rows[0].filtered_wire as f64;
        let s3 = rows[2].flat_wire as f64 / rows[2].filtered_wire as f64;
        assert!(s3 > s1 * 1.5, "saving should grow with studies: {s1} -> {s3}");
    }

    #[test]
    fn report_renders() {
        let text = report(&QbismConfig::small_test(), "ntal", 2);
        assert!(text.contains("studies"));
        assert!(text.contains("saving"));
    }
}
