//! Section 4.2's representation-count comparison.
//!
//! "For each of the various anatomic and intensity band REGIONs, we
//! plotted the number of z-runs, octants, and oblong octants against the
//! number of h-runs … the scatter-plots were well approximated by lines:
//! the correlation coefficients were 0.998, 0.974, 0.991 … the numbers
//! are in constant ratios (#h-runs):(#z-runs):(#oblong):(#octants)
//! = 1 : 1.27 : 1.61 : 2.42."

use crate::population::region_population;
use qbism_region::{linear_fit_through_origin, RepresentationCounts};

/// The measured Section 4.2 statistics.
#[derive(Debug, Clone)]
pub struct RunCountReport {
    /// Per-region counts, labelled.
    pub samples: Vec<(String, RepresentationCounts)>,
    /// Slope and correlation of z-runs vs h-runs.
    pub z_fit: (f64, f64),
    /// Slope and correlation of oblong octants vs h-runs.
    pub oblong_fit: (f64, f64),
    /// Slope and correlation of octants vs h-runs.
    pub octant_fit: (f64, f64),
}

/// The paper's published ratios and correlations.
pub const PAPER_RATIOS: [f64; 4] = [1.0, 1.27, 1.61, 2.42];
/// The paper's published linear-fit correlation coefficients.
pub const PAPER_CORRELATIONS: [f64; 3] = [0.998, 0.974, 0.991];

/// Measures the whole population at the given grid size.
pub fn measure(bits: u32, pet: usize, mri: usize, seed: u64) -> RunCountReport {
    let pop = region_population(bits, pet, mri, seed);
    let samples: Vec<(String, RepresentationCounts)> =
        pop.iter().map(|r| (r.name.clone(), RepresentationCounts::measure(&r.region))).collect();
    let pts = |f: fn(&RepresentationCounts) -> usize| -> Vec<(f64, f64)> {
        samples.iter().map(|(_, c)| (c.h_runs as f64, f(c) as f64)).collect()
    };
    let z_fit = linear_fit_through_origin(&pts(|c| c.z_runs)).unwrap_or((f64::NAN, 0.0));
    let oblong_fit =
        linear_fit_through_origin(&pts(|c| c.oblong_octants)).unwrap_or((f64::NAN, 0.0));
    let octant_fit = linear_fit_through_origin(&pts(|c| c.octants)).unwrap_or((f64::NAN, 0.0));
    RunCountReport { samples, z_fit, oblong_fit, octant_fit }
}

impl RunCountReport {
    /// Measured ratio list `(1, z, oblong, octant)`.
    pub fn ratios(&self) -> [f64; 4] {
        [1.0, self.z_fit.0, self.oblong_fit.0, self.octant_fit.0]
    }

    /// Renders the paper-vs-measured comparison.
    pub fn render(&self) -> String {
        let r = self.ratios();
        let mut out = String::new();
        out.push_str(&format!(
            "Section 4.2 run/octant count ratios over {} REGIONs\n",
            self.samples.len()
        ));
        out.push_str(&format!(
            "  measured  (h : z : oblong : octant) = 1 : {:.2} : {:.2} : {:.2}\n",
            r[1], r[2], r[3]
        ));
        out.push_str(&format!(
            "  paper                               = 1 : {:.2} : {:.2} : {:.2}\n",
            PAPER_RATIOS[1], PAPER_RATIOS[2], PAPER_RATIOS[3]
        ));
        out.push_str(&format!(
            "  correlations measured r = {:.3} / {:.3} / {:.3}   paper r = {:.3} / {:.3} / {:.3}\n",
            self.z_fit.1,
            self.oblong_fit.1,
            self.octant_fit.1,
            PAPER_CORRELATIONS[0],
            PAPER_CORRELATIONS[1],
            PAPER_CORRELATIONS[2]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_have_the_paper_ordering_and_ballpark() {
        // Small grid for test speed; the ordering and rough magnitudes
        // are scale-stable (full scale runs in the bench harness).
        let rep = measure(5, 2, 1, 7);
        let r = rep.ratios();
        assert!(r[1] > 1.0, "z-runs must exceed h-runs: {r:?}");
        assert!(r[2] > r[1], "oblong octants exceed z-runs: {r:?}");
        assert!(r[3] > r[2], "octants exceed oblong octants: {r:?}");
        // The paper found 1.27 / 1.61 / 2.42 on brain data; allow a wide
        // band at small scale.
        assert!((1.05..1.8).contains(&r[1]), "z ratio {}", r[1]);
        assert!((1.2..2.6).contains(&r[2]), "oblong ratio {}", r[2]);
        assert!((1.7..3.6).contains(&r[3]), "octant ratio {}", r[3]);
    }

    #[test]
    fn scatter_is_nearly_linear() {
        let rep = measure(5, 2, 1, 7);
        assert!(rep.z_fit.1 > 0.95, "z correlation {}", rep.z_fit.1);
        assert!(rep.oblong_fit.1 > 0.93, "oblong correlation {}", rep.oblong_fit.1);
        assert!(rep.octant_fit.1 > 0.93, "octant correlation {}", rep.octant_fit.1);
    }

    #[test]
    fn render_mentions_both_sources() {
        let rep = measure(5, 1, 0, 7);
        let text = rep.render();
        assert!(text.contains("measured"));
        assert!(text.contains("paper"));
    }
}
