//! The paper's Section 7 future directions, implemented.
//!
//! * **Spatial indexing** — an R-tree over the atlas structures'
//!   bounding boxes answers "which structures does this point/beam/box
//!   touch" without scanning every REGION (the paper's "efficiently
//!   locating spatial objects" direction, after [3, 23]).
//! * **Similarity search** — per-study feature vectors (intensity
//!   histogram statistics inside a structure) indexed in a k-d tree
//!   answer the paper's closing example: "find all the PET studies …
//!   with intensities inside the cerebellum similar to Ms. Smith's
//!   latest PET study" (after [3, 10, 17]).

use crate::server::MedicalServer;
use crate::{QbismError, Result};
use qbism_geometry::Vec3;
use qbism_index::{Aabb, KdTree, RTree};
use qbism_volume::DataRegion;

/// Dimension of the study feature vectors: 8 normalized intensity-band
/// frequencies + normalized mean + normalized standard deviation.
pub const FEATURE_DIMS: usize = 10;

/// Extracts the feature vector of one answer (data inside a structure).
///
/// Features are scale-free (frequencies and 0-1 normalized moments) so
/// studies of different acquisition gain remain comparable.
pub fn feature_vector(data: &DataRegion<u8>) -> Option<Vec<f64>> {
    if data.is_empty() {
        return None;
    }
    let n = data.voxel_count() as f64;
    let mut hist = [0f64; 8];
    let mut sum = 0f64;
    let mut sum2 = 0f64;
    for &v in data.values() {
        hist[(v / 32) as usize] += 1.0;
        let x = f64::from(v);
        sum += x;
        sum2 += x * x;
    }
    let mean = sum / n;
    let var = (sum2 / n - mean * mean).max(0.0);
    let mut out: Vec<f64> = hist.iter().map(|c| c / n).collect();
    out.push(mean / 255.0);
    out.push(var.sqrt() / 255.0);
    Some(out)
}

/// A structure-membership index over the atlas.
pub struct StructureIndex {
    tree: RTree<String>,
}

impl std::fmt::Debug for StructureIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StructureIndex").field("structures", &self.tree.len()).finish()
    }
}

impl StructureIndex {
    /// Candidate structure names whose bounding boxes contain `p`
    /// (grid coordinates).  Bounding boxes over-approximate; exact
    /// membership still goes through the REGION — the classic
    /// filter-and-refine split.
    pub fn candidates_at(&self, p: Vec3) -> Vec<&String> {
        self.tree.search_point(p)
    }

    /// Candidate structures overlapping an inclusive voxel box.
    pub fn candidates_in_box(&self, min: [u32; 3], max: [u32; 3]) -> Vec<&String> {
        let q = Aabb::new(
            Vec3::new(f64::from(min[0]), f64::from(min[1]), f64::from(min[2])),
            Vec3::new(f64::from(max[0]) + 1.0, f64::from(max[1]) + 1.0, f64::from(max[2]) + 1.0),
        );
        self.tree.search_box(&q)
    }

    /// Number of indexed structures.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }
}

impl MedicalServer {
    /// Builds the R-tree over all atlas structures' REGION bounding
    /// boxes (reads each stored REGION once).
    pub fn build_structure_index(&mut self) -> Result<StructureIndex> {
        let names: Vec<String> = {
            let rs = self
                .database()
                .query("select ns.structureName from neuralStructure ns order by ns.structureId")?;
            rs.rows().iter().filter_map(|r| r[0].as_str().map(str::to_owned)).collect()
        };
        let mut items = Vec::with_capacity(names.len());
        for name in names {
            let region = self.structure_region(&name)?;
            let Some(bb) = region.bounding_box3() else { continue };
            let aabb = Aabb::new(
                Vec3::new(f64::from(bb.min.x), f64::from(bb.min.y), f64::from(bb.min.z)),
                Vec3::new(
                    f64::from(bb.max.x) + 1.0,
                    f64::from(bb.max.y) + 1.0,
                    f64::from(bb.max.z) + 1.0,
                ),
            );
            items.push((aabb, name));
        }
        Ok(StructureIndex { tree: RTree::bulk_load(items) })
    }

    /// The paper's similarity query: among `candidate_studies`, the `k`
    /// whose intensity pattern inside `structure` is most similar to
    /// `reference_study`'s.  Returns `(study_id, distance)` pairs,
    /// closest first; the reference itself is excluded.
    pub fn similar_studies(
        &mut self,
        reference_study: i64,
        candidate_studies: &[i64],
        structure: &str,
        k: usize,
    ) -> Result<Vec<(i64, f64)>> {
        let reference = self.structure_data(reference_study, structure)?;
        let ref_features = feature_vector(&reference.data)
            .ok_or_else(|| QbismError::NotFound(format!("structure {structure} is empty")))?;
        let mut items = Vec::new();
        for &id in candidate_studies {
            if id == reference_study {
                continue;
            }
            let answer = self.structure_data(id, structure)?;
            if let Some(f) = feature_vector(&answer.data) {
                items.push((f, id));
            }
        }
        let tree = KdTree::build(FEATURE_DIMS, items);
        Ok(tree.nearest(&ref_features, k).into_iter().map(|(d, id)| (*id, d)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QbismConfig, QbismSystem};
    use qbism_region::Region;

    fn system() -> QbismSystem {
        QbismSystem::install(&QbismConfig { pet_studies: 4, ..QbismConfig::small_test() })
            .expect("install")
    }

    #[test]
    fn feature_vectors_are_normalized() {
        let sys = system();
        let a = sys.server.structure_data(1, "ntal").unwrap();
        let f = feature_vector(&a.data).unwrap();
        assert_eq!(f.len(), FEATURE_DIMS);
        let hist_sum: f64 = f[..8].iter().sum();
        assert!((hist_sum - 1.0).abs() < 1e-9, "histogram sums to 1");
        assert!((0.0..=1.0).contains(&f[8]), "mean normalized");
        assert!((0.0..=1.0).contains(&f[9]), "stddev normalized");
        // empty data has no features
        let empty = DataRegion::new(Region::empty(sys.server.config().geometry()), Vec::new());
        assert!(feature_vector(&empty).is_none());
    }

    #[test]
    fn structure_index_filter_and_refine() {
        let mut sys = system();
        let index = sys.server.build_structure_index().unwrap();
        // Every non-empty structure gets an entry (at 16³ the thinnest
        // structures can rasterize to nothing and are rightly skipped).
        let non_empty = sys.atlas.structures().iter().filter(|s| !s.region.is_empty()).count();
        assert_eq!(index.len(), non_empty);
        assert!(index.len() >= 10, "almost all structures survive even at 16³");
        assert!(!index.is_empty());
        // The brain centre must at least produce candidates containing
        // the structures whose regions actually hold the voxel.
        let p = Vec3::new(8.5, 8.5, 8.5);
        let candidates: Vec<String> = index.candidates_at(p).into_iter().cloned().collect();
        for s in sys.atlas.structures() {
            let inside = s.region.contains_voxel(&[8, 8, 8]);
            if inside {
                assert!(
                    candidates.contains(&s.name.to_string()),
                    "{} contains the point but was not a candidate",
                    s.name
                );
            }
        }
        // A corner voxel box should produce no candidates.
        assert!(index.candidates_in_box([0, 0, 0], [0, 0, 0]).is_empty());
    }

    #[test]
    fn similar_studies_orders_by_distance_and_excludes_reference() {
        let mut sys = system();
        let ids = sys.pet_study_ids.clone();
        let got = sys.server.similar_studies(ids[0], &ids, "ntal", 10).unwrap();
        assert_eq!(got.len(), ids.len() - 1, "reference excluded");
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1, "sorted by distance");
        }
        // Self-similarity sanity: querying with the reference's own data
        // as a candidate gives distance ~0.
        let same = sys.server.similar_studies(ids[0], &[ids[0], ids[1]], "ntal", 1).unwrap();
        assert_eq!(same.len(), 1);
        assert_eq!(same[0].0, ids[1]);
    }

    #[test]
    fn missing_structure_is_not_found() {
        let mut sys = system();
        assert!(matches!(
            sys.server.similar_studies(1, &[1, 2], "amygdala", 1),
            Err(QbismError::NotFound(_))
        ));
    }
}
