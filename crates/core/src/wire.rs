//! Long-field layouts and wire formats.
//!
//! Three large-object layouts exist in the system:
//!
//! * **VOLUME long field** — exactly `cell_count` intensity bytes "in a
//!   linearized form in an implied order" (the configured curve).  No
//!   header: the atlas row carries the geometry, as in the paper.
//! * **REGION long field** — the self-describing [`RegionCodec`] bytes.
//! * **DATA_REGION wire value** — what `extractVoxels` returns and the
//!   MedicalServer ships to DX: a naive-coded REGION followed by one
//!   intensity byte per voxel.

use crate::{QbismError, Result};
use qbism_region::{GridGeometry, RegionCodec};
use qbism_volume::{DataRegion, Volume};

/// Serializes a volume into its long-field layout (pure intensity bytes
/// in curve order).
pub fn volume_to_long_field(volume: &Volume) -> Vec<u8> {
    volume.values().to_vec()
}

/// Reconstructs a volume from its long-field bytes and the geometry the
/// atlas row implies.
pub fn volume_from_long_field(geom: GridGeometry, bytes: &[u8]) -> Result<Volume> {
    if bytes.len() as u64 != geom.cell_count() {
        return Err(QbismError::Wire(format!(
            "volume long field holds {} bytes, geometry needs {}",
            bytes.len(),
            geom.cell_count()
        )));
    }
    let mut v = Volume::filled(geom, 0);
    v.values_mut().copy_from_slice(bytes);
    Ok(v)
}

/// Magic prefix of a DATA_REGION wire value ("QD").
const DATA_REGION_MAGIC: [u8; 2] = *b"QD";

/// Serializes a DATA_REGION: magic, naive-coded region, then values.
///
/// The region part uses the naive codec regardless of the on-disk
/// configuration — this is the *wire* form whose size drives the
/// network column of Table 3 (runs at 8 bytes plus one byte per voxel).
pub fn encode_data_region(data: &DataRegion<u8>) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(2 + data.voxel_count() + data.region().run_count() * 8 + 16);
    out.extend_from_slice(&DATA_REGION_MAGIC);
    let region_bytes = RegionCodec::Naive.encode(data.region())?;
    out.extend_from_slice(&(region_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&region_bytes);
    out.extend_from_slice(data.values());
    Ok(out)
}

/// Parses a DATA_REGION wire value.
pub fn decode_data_region(bytes: &[u8]) -> Result<DataRegion<u8>> {
    if bytes.len() < 6 || bytes[..2] != DATA_REGION_MAGIC {
        return Err(QbismError::Wire("not a DATA_REGION payload".into()));
    }
    let rlen = le_u32(&bytes[2..]) as usize;
    let region_end = 6 + rlen;
    if bytes.len() < region_end {
        return Err(QbismError::Wire("truncated DATA_REGION region part".into()));
    }
    let region = RegionCodec::decode(&bytes[6..region_end])?;
    let values = bytes[region_end..].to_vec();
    if values.len() as u64 != region.voxel_count() {
        return Err(QbismError::Wire(format!(
            "DATA_REGION carries {} values for {} voxels",
            values.len(),
            region.voxel_count()
        )));
    }
    Ok(DataRegion::new(region, values))
}

/// The payload size DX receives for an answer — the quantity the network
/// model charges.
pub fn data_region_wire_size(data: &DataRegion<u8>) -> u64 {
    (2 + 4 + 10 + data.region().run_count() * 8 + data.voxel_count()) as u64
}

/// Serializes a triangle mesh into its long-field layout: vertex and
/// triangle counts, then positions, normals (f32 triples) and index
/// triples (u32) — the second long-field column of *Atlas Structure*.
pub fn mesh_to_long_field(mesh: &qbism_geometry::TriMesh) -> Vec<u8> {
    let mut out = Vec::with_capacity(mesh.encoded_len());
    out.extend_from_slice(&(mesh.vertex_count() as u32).to_le_bytes());
    out.extend_from_slice(&(mesh.triangle_count() as u32).to_le_bytes());
    for v in &mesh.vertices {
        for c in [v.x, v.y, v.z] {
            out.extend_from_slice(&(c as f32).to_le_bytes());
        }
    }
    for n in &mesh.normals {
        for c in [n.x, n.y, n.z] {
            out.extend_from_slice(&(c as f32).to_le_bytes());
        }
    }
    for t in &mesh.triangles {
        for &i in t {
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
    out
}

/// Parses a mesh long field.
pub fn mesh_from_long_field(bytes: &[u8]) -> Result<qbism_geometry::TriMesh> {
    let fail = |m: &str| QbismError::Wire(format!("mesh long field: {m}"));
    if bytes.len() < 8 {
        return Err(fail("missing header"));
    }
    let nv = le_u32(bytes) as usize;
    let nt = le_u32(&bytes[4..]) as usize;
    let need = 8 + nv * 24 + nt * 12;
    if bytes.len() != need {
        return Err(fail("length mismatch"));
    }
    let f32_at = |off: usize| -> f64 {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&bytes[off..off + 4]);
        f32::from_le_bytes(buf) as f64
    };
    let mut mesh = qbism_geometry::TriMesh::new();
    for i in 0..nv {
        let off = 8 + i * 12;
        mesh.push_vertex(qbism_geometry::Vec3::new(f32_at(off), f32_at(off + 4), f32_at(off + 8)));
    }
    for i in 0..nv {
        let off = 8 + nv * 12 + i * 12;
        mesh.normals[i] = qbism_geometry::Vec3::new(f32_at(off), f32_at(off + 4), f32_at(off + 8));
    }
    for i in 0..nt {
        let off = 8 + nv * 24 + i * 12;
        let idx = |k: usize| le_u32(&bytes[off + k * 4..]);
        let tri = [idx(0), idx(1), idx(2)];
        if tri.iter().any(|&t| t as usize >= nv) {
            return Err(fail("triangle index out of range"));
        }
        mesh.push_triangle(tri);
    }
    Ok(mesh)
}

/// Little-endian u32 at the head of `bytes`; callers bounds-check
/// before slicing (slicing still panics loudly if they did not).
fn le_u32(bytes: &[u8]) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qbism_region::Region;
    use qbism_sfc::CurveKind;

    fn geom() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 3)
    }

    #[test]
    fn volume_long_field_roundtrip() {
        let v = Volume::from_fn3(geom(), |x, y, z| (x * 9 + y * 3 + z) as u8);
        let bytes = volume_to_long_field(&v);
        assert_eq!(bytes.len(), 512);
        let back = volume_from_long_field(geom(), &bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn volume_wrong_length_rejected() {
        assert!(matches!(volume_from_long_field(geom(), &[0u8; 100]), Err(QbismError::Wire(_))));
    }

    #[test]
    fn data_region_roundtrip() {
        let region = Region::from_ids(geom(), vec![3, 4, 5, 100, 101, 300]);
        let values = vec![10u8, 20, 30, 40, 50, 60];
        let dr = DataRegion::new(region, values);
        let bytes = encode_data_region(&dr).unwrap();
        let back = decode_data_region(&bytes).unwrap();
        assert_eq!(back, dr);
    }

    #[test]
    fn empty_data_region_roundtrip() {
        let dr = DataRegion::new(Region::empty(geom()), Vec::new());
        let bytes = encode_data_region(&dr).unwrap();
        assert_eq!(decode_data_region(&bytes).unwrap(), dr);
    }

    #[test]
    fn corrupt_payloads_rejected() {
        assert!(decode_data_region(&[]).is_err());
        assert!(decode_data_region(b"XX123456").is_err());
        let region = Region::from_ids(geom(), vec![1, 2]);
        let dr = DataRegion::new(region, vec![9, 9]);
        let mut bytes = encode_data_region(&dr).unwrap();
        bytes.pop(); // drop one value byte
        assert!(decode_data_region(&bytes).is_err());
        let mut cut = encode_data_region(&dr).unwrap();
        cut.truncate(8);
        assert!(decode_data_region(&cut).is_err());
    }

    #[test]
    fn mesh_long_field_roundtrip() {
        use qbism_geometry::{TriMesh, Vec3};
        let mut m = TriMesh::new();
        let a = m.push_vertex(Vec3::new(0.0, 0.0, 0.0));
        let b = m.push_vertex(Vec3::new(1.0, 0.0, 0.0));
        let c = m.push_vertex(Vec3::new(0.0, 1.0, 0.0));
        m.push_triangle([a, b, c]);
        m.recompute_normals();
        let bytes = mesh_to_long_field(&m);
        let back = mesh_from_long_field(&bytes).unwrap();
        assert_eq!(back.vertex_count(), 3);
        assert_eq!(back.triangle_count(), 1);
        assert_eq!(back.triangles, m.triangles);
        assert!(back.normals[0].distance(m.normals[0]) < 1e-6);
        // corrupt inputs
        assert!(mesh_from_long_field(&bytes[..7]).is_err());
        assert!(mesh_from_long_field(&bytes[..bytes.len() - 1]).is_err());
        let mut bad = bytes.clone();
        let off = bad.len() - 12;
        bad[off..off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(mesh_from_long_field(&bad).is_err(), "index out of range");
    }

    #[test]
    fn wire_size_matches_encoded_length() {
        let region = Region::from_ids(geom(), vec![3, 4, 5, 90, 91, 200, 201, 202]);
        let dr = DataRegion::new(region, vec![1u8; 8]);
        let bytes = encode_data_region(&dr).unwrap();
        assert_eq!(bytes.len() as u64, data_region_wire_size(&dr));
    }
}
