//! System configuration.

use qbism_region::RegionCodec;
use qbism_sfc::CurveKind;

/// Configuration of one QBISM installation.
///
/// The defaults reproduce the paper's physical design choices: Hilbert
/// order for VOLUMEs and REGION ids, the "naive" 8-bytes-per-run REGION
/// encoding on disk (Section 6 measured with naive encoding), 32-wide
/// intensity bands, 5 PET + 3 MRI studies.
#[derive(Debug, Clone)]
pub struct QbismConfig {
    /// Atlas grid is `2^atlas_bits` per axis (paper: 7 → 128³).
    pub atlas_bits: u32,
    /// Linearization for VOLUMEs and REGIONs (paper: Hilbert; Table 4
    /// compares Morton).
    pub curve: CurveKind,
    /// On-disk REGION encoding (paper Section 6 default: naive runs).
    pub region_codec: RegionCodec,
    /// Master seed for all synthetic data.
    pub seed: u64,
    /// Number of PET studies to load (paper: 5).
    pub pet_studies: usize,
    /// Number of MRI studies to load (paper: 3).
    pub mri_studies: usize,
    /// Intensity band width (paper: 32 → 8 bands over 0-255).
    pub band_width: u16,
    /// Number of patients in the demographic table.
    pub patients: usize,
    /// Activation blobs per PET study.
    pub pet_blobs: usize,
    /// Long-field device capacity in bytes.
    pub device_capacity: u64,
    /// Compressed tablespace: when `true`, atlas-structure and band
    /// REGIONs persist in the smaller of the queryable compressed
    /// codecs ([`RegionCodec::COMPRESSED`]) and the server merges them
    /// in the compressed domain.  `false` (the default everywhere)
    /// keeps the paper's storage layout and every deterministic
    /// tablegen column byte-identical.
    pub compressed_tablespace: bool,
}

impl QbismConfig {
    /// The paper's full-scale installation: 128³ atlas, 5 PET + 3 MRI.
    /// This is release-build work (tens of seconds); tests use
    /// [`QbismConfig::small_test`].
    pub fn paper_scale() -> Self {
        QbismConfig {
            atlas_bits: 7,
            curve: CurveKind::Hilbert,
            region_codec: RegionCodec::Naive,
            seed: 0x51B1_5A17,
            pet_studies: 5,
            mri_studies: 3,
            band_width: 32,
            patients: 8,
            pet_blobs: 4,
            // volumes: (5+3) warped x 2 MiB + raws + regions; 1 GiB is roomy.
            device_capacity: 1 << 30,
            compressed_tablespace: false,
        }
    }

    /// A small deterministic installation for unit and integration tests
    /// (16³ atlas, 2 PET + 1 MRI).
    pub fn small_test() -> Self {
        QbismConfig {
            atlas_bits: 4,
            curve: CurveKind::Hilbert,
            region_codec: RegionCodec::Naive,
            seed: 7,
            pet_studies: 2,
            mri_studies: 1,
            band_width: 32,
            patients: 4,
            pet_blobs: 2,
            device_capacity: 1 << 24,
            compressed_tablespace: false,
        }
    }

    /// A mid-size installation (32³) — large enough for meaningful
    /// statistics, small enough for debug builds.
    pub fn medium() -> Self {
        QbismConfig {
            atlas_bits: 5,
            pet_studies: 3,
            mri_studies: 1,
            device_capacity: 1 << 26,
            ..QbismConfig::small_test()
        }
    }

    /// The same installation with the compressed tablespace switched
    /// on: REGIONs persist compact and merge in the compressed domain.
    pub fn with_compressed_tablespace(mut self) -> Self {
        self.compressed_tablespace = true;
        self
    }

    /// Atlas grid side.
    pub fn side(&self) -> u32 {
        1 << self.atlas_bits
    }

    /// The grid geometry implied by this configuration.
    pub fn geometry(&self) -> qbism_region::GridGeometry {
        qbism_region::GridGeometry::new(self.curve, 3, self.atlas_bits)
    }
}

impl Default for QbismConfig {
    fn default() -> Self {
        QbismConfig::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let c = QbismConfig::paper_scale();
        assert_eq!(c.side(), 128);
        assert_eq!(c.pet_studies, 5);
        assert_eq!(c.mri_studies, 3);
        assert_eq!(c.band_width, 32);
        assert_eq!(c.curve, CurveKind::Hilbert);
        assert_eq!(c.geometry().cell_count(), 2_097_152);
    }

    #[test]
    fn small_test_is_small() {
        let c = QbismConfig::small_test();
        assert!(c.geometry().cell_count() <= 4096);
        assert_eq!(QbismConfig::default().side(), 128);
    }
}
