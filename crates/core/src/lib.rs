//! QBISM: querying and visualizing 3-D medical images on an extensible
//! DBMS — the paper's integrated system.
//!
//! This crate wires the substrates together exactly along the paper's
//! architecture (Figure 7):
//!
//! ```text
//!  DX UI  ──▶  DX executive (qbism-render)
//!                 ▲   ImportVolume
//!                 │ RPC (qbism-netsim)
//!  MedicalServer (this crate) ──▶ Starburst (qbism-starburst)
//!                                    │ spatial UDFs (this crate)
//!                                    ▼
//!                            Long Field Manager (qbism-lfm)
//! ```
//!
//! * [`schema`] — the Figure 1 medical schema as SQL DDL;
//! * [`wire`] — the long-field layouts of VOLUMEs and the wire layout of
//!   `DATA_REGION` answers;
//! * [`ops`] — the Section 3.2 spatial operators registered as
//!   user-defined SQL functions (`intersection`, `contains`,
//!   `extractVoxels`, plus the future-work `runion`/`rdifference`);
//! * [`loader`] — database population: synthesize phantom data, register
//!   and warp studies *at load time*, compute intensity bands;
//! * [`server`] — MedicalServer: high-level query specs translated to
//!   SQL (the two queries of Section 3.4 and their variants), with
//!   per-query I/O and time accounting;
//! * [`report`] — the full-system measured pipeline that regenerates
//!   Table 3 and Table 4 rows (database → network → ImportVolume →
//!   rendering).
//!
//! # Quickstart
//!
//! ```
//! use qbism::{QbismConfig, QbismSystem};
//!
//! // A small deterministic installation (16^3 atlas, 2 PET studies).
//! let config = QbismConfig::small_test();
//! let mut sys = QbismSystem::install(&config).unwrap();
//! let answer = sys.server.structure_data(1, "ntal").unwrap();
//! assert!(answer.data.voxel_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod future;
pub mod loader;
pub mod mining;
pub mod ops;
pub mod report;
pub mod schema;
pub mod server;
pub mod wire;

pub use config::QbismConfig;
pub use future::{feature_vector, StructureIndex, FEATURE_DIMS};
pub use loader::QbismSystem;
pub use report::{FullQueryReport, QuerySpec};
pub use server::{
    MedicalServer, PopulationAnswer, QueryAnswer, QueryCost, StudyExtract, StudyFetch,
};

/// Errors from the integrated system.
#[derive(Debug)]
pub enum QbismError {
    /// Database-layer failure.
    Db(qbism_starburst::DbError),
    /// REGION encode/decode failure.
    Region(qbism_region::RegionEncodeError),
    /// Volume-layer failure.
    Volume(qbism_volume::VolumeError),
    /// Registration failure.
    Registration(qbism_warp::RegistrationError),
    /// Malformed wire payload or long-field contents.
    Wire(String),
    /// Query addressed something that does not exist.
    NotFound(String),
    /// Simulated network failure: the answer could not be shipped even
    /// after the RPC channel's bounded retries.
    Net(qbism_netsim::NetError),
}

impl std::fmt::Display for QbismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QbismError::Db(e) => write!(f, "database: {e}"),
            QbismError::Region(e) => write!(f, "region: {e}"),
            QbismError::Volume(e) => write!(f, "volume: {e}"),
            QbismError::Registration(e) => write!(f, "registration: {e}"),
            QbismError::Wire(m) => write!(f, "wire format: {m}"),
            QbismError::NotFound(m) => write!(f, "not found: {m}"),
            QbismError::Net(e) => write!(f, "network: {e}"),
        }
    }
}

impl std::error::Error for QbismError {}

impl From<qbism_starburst::DbError> for QbismError {
    fn from(e: qbism_starburst::DbError) -> Self {
        QbismError::Db(e)
    }
}

impl From<qbism_netsim::NetError> for QbismError {
    fn from(e: qbism_netsim::NetError) -> Self {
        QbismError::Net(e)
    }
}

impl From<qbism_region::RegionEncodeError> for QbismError {
    fn from(e: qbism_region::RegionEncodeError) -> Self {
        QbismError::Region(e)
    }
}

impl From<qbism_volume::VolumeError> for QbismError {
    fn from(e: qbism_volume::VolumeError) -> Self {
        QbismError::Volume(e)
    }
}

impl From<qbism_warp::RegistrationError> for QbismError {
    fn from(e: qbism_warp::RegistrationError) -> Self {
        QbismError::Registration(e)
    }
}

impl From<qbism_lfm::LfmError> for QbismError {
    fn from(e: qbism_lfm::LfmError) -> Self {
        QbismError::Db(qbism_starburst::DbError::Storage(e))
    }
}

/// Result alias for the integrated system.
pub type Result<T> = std::result::Result<T, QbismError>;
