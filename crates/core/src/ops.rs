//! The Section 3.2 spatial operators as user-defined SQL functions.
//!
//! Registered functions (argument types in brackets; `region` arguments
//! accept either a REGION long field or an immediate byte string, so
//! operators nest: `extractVoxels(wv.data, intersection(ib.region,
//! ast.region))`):
//!
//! * `intersection(region, region) -> bytes` — spatial intersection;
//! * `runion(region, region) -> bytes` and
//!   `rdifference(region, region) -> bytes` — the "straightforward to
//!   implement" future-work operators;
//! * `contains(region, region) -> bool` — spatial superset test;
//! * `extractVoxels(volume long, region) -> bytes` — `EXTRACT_DATA`,
//!   returning a DATA_REGION wire value;
//! * `regionVoxels(region) -> int` — voxel count (handy in predicates).
//!
//! Reading a long-field argument costs device I/O through the LFM (that
//! is the point: Table 3/4's I/O column counts these reads); immediate
//! byte arguments cost none.

use crate::wire::encode_data_region;
use qbism_lfm::LongFieldId;
use qbism_region::compressed::{compressed_cursor, is_compressed, CompressedCursor};
use qbism_region::kernel_compressed as kc;
use qbism_region::{Region, RegionCodec, RegionEncodeError, Run};
use qbism_starburst::{Database, DbError, UdfContext, Value};
use qbism_volume::DataRegion;

/// A fetched REGION operand: its raw encoded bytes plus the long field
/// it came from (None for immediate byte-string arguments).
type RegionArg = (Vec<u8>, Option<LongFieldId>);

/// Fetches a region argument's raw bytes: a long field (read through
/// the LFM, counting I/O) or an immediate byte string.
fn fetch_region_arg(ctx: &mut UdfContext<'_>, v: &Value) -> Result<RegionArg, DbError> {
    match v {
        Value::Long(id) => Ok((ctx.lfm.read(*id)?, Some(*id))),
        Value::Bytes(b) => Ok((b.clone(), None)),
        other => {
            Err(DbError::Type(format!("expected a REGION (long field or bytes), got {other}")))
        }
    }
}

fn decode_arg(bytes: &[u8]) -> Result<Region, DbError> {
    RegionCodec::decode(bytes).map_err(|e| DbError::Exec(format!("malformed REGION operand: {e}")))
}

/// Decodes a region argument: a long field (read through the LFM,
/// counting I/O) or an immediate byte string.
fn fetch_region(ctx: &mut UdfContext<'_>, v: &Value) -> Result<Region, DbError> {
    let (bytes, _) = fetch_region_arg(ctx, v)?;
    decode_arg(&bytes)
}

/// Compressed-domain fast path for a binary region operator: when both
/// operands are queryable compressed byte strings on the same grid,
/// stream-merge the payloads with `op` (no full decompression), credit
/// the galloping skips to the LFM metrics, and re-encode the answer
/// compactly so nested operators stay in the compressed domain.
/// Returns `None` when either operand is not compressed — the caller
/// falls back to the decoded kernels.
fn compressed_pair(
    ctx: &mut UdfContext<'_>,
    a: &RegionArg,
    b: &RegionArg,
    op: impl FnOnce(
        &mut CompressedCursor<'_>,
        &mut CompressedCursor<'_>,
    ) -> Result<Vec<Run>, RegionEncodeError>,
) -> Option<Result<Value, DbError>> {
    if !is_compressed(&a.0) || !is_compressed(&b.0) {
        return None;
    }
    let opened = match (compressed_cursor(&a.0), compressed_cursor(&b.0)) {
        (Ok(ca), Ok(cb)) => (ca, cb),
        (Err(e), _) | (_, Err(e)) => {
            return Some(Err(DbError::Exec(format!("malformed REGION operand: {e}"))))
        }
    };
    let ((geom_a, mut ca), (geom_b, mut cb)) = opened;
    if geom_a != geom_b {
        return None; // mixed grids take the decoded transcoding path
    }
    let runs = match op(&mut ca, &mut cb) {
        Ok(runs) => runs,
        Err(e) => return Some(Err(DbError::Exec(format!("compressed merge failed: {e}")))),
    };
    if let Some(id) = a.1 {
        ctx.lfm.note_decode_skips(id, ca.skip_count());
    }
    if let Some(id) = b.1 {
        ctx.lfm.note_decode_skips(id, cb.skip_count());
    }
    let region = Region::from_runs(geom_a, runs);
    Some(
        qbism_region::encode_compressed(&region)
            .map(Value::Bytes)
            .map_err(|e| DbError::Exec(format!("cannot encode result REGION: {e}"))),
    )
}

fn region_result(region: &Region, codec: RegionCodec) -> Result<Value, DbError> {
    let bytes = codec
        .encode(region)
        .map_err(|e| DbError::Exec(format!("cannot encode result REGION: {e}")))?;
    Ok(Value::Bytes(bytes))
}

/// Registers all spatial operators on `db`.
///
/// `codec` is the encoding used for intermediate REGION values (the
/// configured on-disk codec, so nested operators round-trip bit-exact).
pub fn register_spatial_ops(db: &mut Database, codec: RegionCodec) {
    db.register_udf("intersection", move |ctx, args| {
        expect_arity("intersection", args, 2)?;
        let a = fetch_region_arg(ctx, &args[0])?;
        let b = fetch_region_arg(ctx, &args[1])?;
        if let Some(res) = compressed_pair(ctx, &a, &b, |ca, cb| kc::intersect_stream(ca, cb)) {
            return res;
        }
        region_result(&decode_arg(&a.0)?.intersect(&decode_arg(&b.0)?), codec)
    });
    db.register_udf("runion", move |ctx, args| {
        expect_arity("runion", args, 2)?;
        let a = fetch_region_arg(ctx, &args[0])?;
        let b = fetch_region_arg(ctx, &args[1])?;
        if let Some(res) = compressed_pair(ctx, &a, &b, |ca, cb| kc::union_stream(ca, cb)) {
            return res;
        }
        region_result(&decode_arg(&a.0)?.union(&decode_arg(&b.0)?), codec)
    });
    db.register_udf("rdifference", move |ctx, args| {
        expect_arity("rdifference", args, 2)?;
        let a = fetch_region_arg(ctx, &args[0])?;
        let b = fetch_region_arg(ctx, &args[1])?;
        if let Some(res) = compressed_pair(ctx, &a, &b, |ca, cb| kc::difference_stream(ca, cb)) {
            return res;
        }
        region_result(&decode_arg(&a.0)?.difference(&decode_arg(&b.0)?), codec)
    });
    db.register_udf("contains", |ctx, args| {
        expect_arity("contains", args, 2)?;
        let a = fetch_region(ctx, &args[0])?;
        let b = fetch_region(ctx, &args[1])?;
        Ok(Value::Bool(a.contains_region(&b)))
    });
    db.register_udf("regionvoxels", |ctx, args| {
        expect_arity("regionVoxels", args, 1)?;
        let a = fetch_region(ctx, &args[0])?;
        Ok(Value::Int(a.voxel_count() as i64))
    });
    db.register_udf("extractvoxels", |ctx, args| {
        expect_arity("extractVoxels", args, 2)?;
        let volume_id = args[0].as_long().ok_or_else(|| {
            DbError::Type("extractVoxels expects a VOLUME long field first".into())
        })?;
        let region = fetch_region(ctx, &args[1])?;
        let geom = region.geometry();
        let vol_len = ctx.lfm.len(volume_id)?;
        if vol_len != geom.cell_count() {
            return Err(DbError::Exec(format!(
                "VOLUME long field holds {vol_len} bytes; the REGION's grid has {} cells",
                geom.cell_count()
            )));
        }
        // The run-aligned piece read: one contiguous byte extent per run
        // because the volume shares the region's curve order.  This is
        // the I/O path whose page counts Table 3 reports.
        let pieces: Vec<(u64, u64)> = region.runs().iter().map(|r| (r.start, r.len())).collect();
        let mut values = Vec::with_capacity(region.voxel_count() as usize);
        ctx.lfm.read_pieces_into(volume_id, &pieces, &mut values)?;
        let dr = DataRegion::new(region, values);
        encode_data_region(&dr)
            .map(Value::Bytes)
            .map_err(|e| DbError::Exec(format!("cannot encode DATA_REGION: {e}")))
    });
}

fn expect_arity(name: &str, args: &[Value], want: usize) -> Result<(), DbError> {
    if args.len() == want {
        Ok(())
    } else {
        Err(DbError::Binding(format!("{name} takes {want} arguments, got {}", args.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_data_region, volume_to_long_field};
    use qbism_region::GridGeometry;
    use qbism_sfc::CurveKind;
    use qbism_volume::Volume;

    fn geom() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 3)
    }

    /// A database with one table holding two REGION long fields and a
    /// VOLUME long field.
    fn setup() -> (Database, Region, Region, Volume) {
        let mut db = Database::new(1 << 22).unwrap();
        register_spatial_ops(&mut db, RegionCodec::Naive);
        db.execute("create table t (id int, r1 long, r2 long, vol long)").unwrap();
        let a = Region::from_box(geom(), [0, 0, 0], [3, 3, 3]).unwrap();
        let b = Region::from_box(geom(), [2, 2, 2], [5, 5, 5]).unwrap();
        let vol = Volume::from_fn3(geom(), |x, y, z| (x * 30 + y * 8 + z) as u8);
        let ra = db.create_long_field(&RegionCodec::Naive.encode(&a).unwrap()).unwrap();
        let rb = db.create_long_field(&RegionCodec::Naive.encode(&b).unwrap()).unwrap();
        let v = db.create_long_field(&volume_to_long_field(&vol)).unwrap();
        db.insert_row("t", vec![Value::Int(1), ra, rb, v]).unwrap();
        (db, a, b, vol)
    }

    #[test]
    fn intersection_through_sql() {
        let (db, a, b, _) = setup();
        let rs = db.query("select intersection(t.r1, t.r2) from t").unwrap();
        let bytes = rs.rows()[0][0].as_bytes().unwrap();
        let got = RegionCodec::decode(bytes).unwrap();
        assert_eq!(got, a.intersect(&b));
        assert_eq!(got.voxel_count(), 8); // 2x2x2 overlap corner
    }

    #[test]
    fn union_difference_contains_voxels() {
        let (db, a, b, _) = setup();
        let rs = db
            .query(
                "select regionVoxels(runion(t.r1, t.r2)),
                        regionVoxels(rdifference(t.r1, t.r2)),
                        contains(t.r1, t.r2),
                        contains(t.r1, intersection(t.r1, t.r2))
                 from t",
            )
            .unwrap();
        let row = &rs.rows()[0];
        assert_eq!(row[0], Value::Int(a.union(&b).voxel_count() as i64));
        assert_eq!(row[1], Value::Int(a.difference(&b).voxel_count() as i64));
        assert_eq!(row[2], Value::Bool(false));
        assert_eq!(row[3], Value::Bool(true));
    }

    #[test]
    fn extract_voxels_matches_direct_extraction() {
        let (db, a, _, vol) = setup();
        let rs = db.query("select extractVoxels(t.vol, t.r1) from t").unwrap();
        let bytes = rs.rows()[0][0].as_bytes().unwrap();
        let dr = decode_data_region(bytes).unwrap();
        let direct = vol.extract(&a).unwrap();
        assert_eq!(dr, direct);
    }

    #[test]
    fn nested_operators_compose() {
        // The paper's mixed-query shape: extract inside an intersection.
        let (db, a, b, vol) = setup();
        let rs = db.query("select extractVoxels(t.vol, intersection(t.r1, t.r2)) from t").unwrap();
        let dr = decode_data_region(rs.rows()[0][0].as_bytes().unwrap()).unwrap();
        assert_eq!(dr, vol.extract(&a.intersect(&b)).unwrap());
    }

    #[test]
    fn extraction_io_counts_pages_not_voxels() {
        let (mut db, _, _, _) = setup();
        db.lfm().reset_stats();
        let _ = db.query("select extractVoxels(t.vol, t.r1) from t").unwrap();
        let stats = db.lfm_stats();
        // 512-byte volume and a tiny region: everything fits in a couple
        // of 4 KiB pages, regardless of voxel count.
        assert!(stats.pages_read <= 3, "pages {}", stats.pages_read);
        assert!(stats.pages_read >= 1);
        assert_eq!(stats.pages_written, 0, "answers must not write to the device");
    }

    #[test]
    fn type_errors_are_reported() {
        let (db, _, _, _) = setup();
        assert!(matches!(
            db.query("select intersection(t.id, t.r1) from t"),
            Err(DbError::Type(_))
        ));
        assert!(matches!(db.query("select extractVoxels(t.r1) from t"), Err(DbError::Binding(_))));
        assert!(matches!(
            db.query("select extractVoxels(t.r1, t.r1) from t"),
            Err(DbError::Exec(_)) // r1 is a region, not a full volume
        ));
    }

    #[test]
    fn corrupt_region_operand_is_an_exec_error() {
        let mut db = Database::new(1 << 20).unwrap();
        register_spatial_ops(&mut db, RegionCodec::Naive);
        db.execute("create table t (r long)").unwrap();
        let junk = db.create_long_field(&[1, 2, 3]).unwrap();
        db.insert_row("t", vec![junk]).unwrap();
        assert!(matches!(db.query("select regionVoxels(t.r) from t"), Err(DbError::Exec(_))));
    }
}
