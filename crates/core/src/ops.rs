//! The Section 3.2 spatial operators as user-defined SQL functions.
//!
//! Registered functions (argument types in brackets; `region` arguments
//! accept either a REGION long field or an immediate byte string, so
//! operators nest: `extractVoxels(wv.data, intersection(ib.region,
//! ast.region))`):
//!
//! * `intersection(region, region) -> bytes` — spatial intersection;
//! * `runion(region, region) -> bytes` and
//!   `rdifference(region, region) -> bytes` — the "straightforward to
//!   implement" future-work operators;
//! * `contains(region, region) -> bool` — spatial superset test;
//! * `extractVoxels(volume long, region) -> bytes` — `EXTRACT_DATA`,
//!   returning a DATA_REGION wire value;
//! * `regionVoxels(region) -> int` — voxel count (handy in predicates).
//!
//! Reading a long-field argument costs device I/O through the LFM (that
//! is the point: Table 3/4's I/O column counts these reads); immediate
//! byte arguments cost none.

use crate::wire::encode_data_region;
use qbism_region::{Region, RegionCodec};
use qbism_starburst::{Database, DbError, UdfContext, Value};
use qbism_volume::DataRegion;

/// Decodes a region argument: a long field (read through the LFM,
/// counting I/O) or an immediate byte string.
fn fetch_region(ctx: &mut UdfContext<'_>, v: &Value) -> Result<Region, DbError> {
    let bytes: Vec<u8> = match v {
        Value::Long(id) => ctx.lfm.read(*id)?,
        Value::Bytes(b) => b.clone(),
        other => {
            return Err(DbError::Type(format!(
                "expected a REGION (long field or bytes), got {other}"
            )))
        }
    };
    RegionCodec::decode(&bytes).map_err(|e| DbError::Exec(format!("malformed REGION operand: {e}")))
}

fn region_result(region: &Region, codec: RegionCodec) -> Result<Value, DbError> {
    let bytes = codec
        .encode(region)
        .map_err(|e| DbError::Exec(format!("cannot encode result REGION: {e}")))?;
    Ok(Value::Bytes(bytes))
}

/// Registers all spatial operators on `db`.
///
/// `codec` is the encoding used for intermediate REGION values (the
/// configured on-disk codec, so nested operators round-trip bit-exact).
pub fn register_spatial_ops(db: &mut Database, codec: RegionCodec) {
    db.register_udf("intersection", move |ctx, args| {
        expect_arity("intersection", args, 2)?;
        let a = fetch_region(ctx, &args[0])?;
        let b = fetch_region(ctx, &args[1])?;
        region_result(&a.intersect(&b), codec)
    });
    db.register_udf("runion", move |ctx, args| {
        expect_arity("runion", args, 2)?;
        let a = fetch_region(ctx, &args[0])?;
        let b = fetch_region(ctx, &args[1])?;
        region_result(&a.union(&b), codec)
    });
    db.register_udf("rdifference", move |ctx, args| {
        expect_arity("rdifference", args, 2)?;
        let a = fetch_region(ctx, &args[0])?;
        let b = fetch_region(ctx, &args[1])?;
        region_result(&a.difference(&b), codec)
    });
    db.register_udf("contains", |ctx, args| {
        expect_arity("contains", args, 2)?;
        let a = fetch_region(ctx, &args[0])?;
        let b = fetch_region(ctx, &args[1])?;
        Ok(Value::Bool(a.contains_region(&b)))
    });
    db.register_udf("regionvoxels", |ctx, args| {
        expect_arity("regionVoxels", args, 1)?;
        let a = fetch_region(ctx, &args[0])?;
        Ok(Value::Int(a.voxel_count() as i64))
    });
    db.register_udf("extractvoxels", |ctx, args| {
        expect_arity("extractVoxels", args, 2)?;
        let volume_id = args[0].as_long().ok_or_else(|| {
            DbError::Type("extractVoxels expects a VOLUME long field first".into())
        })?;
        let region = fetch_region(ctx, &args[1])?;
        let geom = region.geometry();
        let vol_len = ctx.lfm.len(volume_id)?;
        if vol_len != geom.cell_count() {
            return Err(DbError::Exec(format!(
                "VOLUME long field holds {vol_len} bytes; the REGION's grid has {} cells",
                geom.cell_count()
            )));
        }
        // The run-aligned piece read: one contiguous byte extent per run
        // because the volume shares the region's curve order.  This is
        // the I/O path whose page counts Table 3 reports.
        let pieces: Vec<(u64, u64)> = region.runs().iter().map(|r| (r.start, r.len())).collect();
        let mut values = Vec::with_capacity(region.voxel_count() as usize);
        ctx.lfm.read_pieces_into(volume_id, &pieces, &mut values)?;
        let dr = DataRegion::new(region, values);
        encode_data_region(&dr)
            .map(Value::Bytes)
            .map_err(|e| DbError::Exec(format!("cannot encode DATA_REGION: {e}")))
    });
}

fn expect_arity(name: &str, args: &[Value], want: usize) -> Result<(), DbError> {
    if args.len() == want {
        Ok(())
    } else {
        Err(DbError::Binding(format!("{name} takes {want} arguments, got {}", args.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode_data_region, volume_to_long_field};
    use qbism_region::GridGeometry;
    use qbism_sfc::CurveKind;
    use qbism_volume::Volume;

    fn geom() -> GridGeometry {
        GridGeometry::new(CurveKind::Hilbert, 3, 3)
    }

    /// A database with one table holding two REGION long fields and a
    /// VOLUME long field.
    fn setup() -> (Database, Region, Region, Volume) {
        let mut db = Database::new(1 << 22).unwrap();
        register_spatial_ops(&mut db, RegionCodec::Naive);
        db.execute("create table t (id int, r1 long, r2 long, vol long)").unwrap();
        let a = Region::from_box(geom(), [0, 0, 0], [3, 3, 3]).unwrap();
        let b = Region::from_box(geom(), [2, 2, 2], [5, 5, 5]).unwrap();
        let vol = Volume::from_fn3(geom(), |x, y, z| (x * 30 + y * 8 + z) as u8);
        let ra = db.create_long_field(&RegionCodec::Naive.encode(&a).unwrap()).unwrap();
        let rb = db.create_long_field(&RegionCodec::Naive.encode(&b).unwrap()).unwrap();
        let v = db.create_long_field(&volume_to_long_field(&vol)).unwrap();
        db.insert_row("t", vec![Value::Int(1), ra, rb, v]).unwrap();
        (db, a, b, vol)
    }

    #[test]
    fn intersection_through_sql() {
        let (db, a, b, _) = setup();
        let rs = db.query("select intersection(t.r1, t.r2) from t").unwrap();
        let bytes = rs.rows()[0][0].as_bytes().unwrap();
        let got = RegionCodec::decode(bytes).unwrap();
        assert_eq!(got, a.intersect(&b));
        assert_eq!(got.voxel_count(), 8); // 2x2x2 overlap corner
    }

    #[test]
    fn union_difference_contains_voxels() {
        let (db, a, b, _) = setup();
        let rs = db
            .query(
                "select regionVoxels(runion(t.r1, t.r2)),
                        regionVoxels(rdifference(t.r1, t.r2)),
                        contains(t.r1, t.r2),
                        contains(t.r1, intersection(t.r1, t.r2))
                 from t",
            )
            .unwrap();
        let row = &rs.rows()[0];
        assert_eq!(row[0], Value::Int(a.union(&b).voxel_count() as i64));
        assert_eq!(row[1], Value::Int(a.difference(&b).voxel_count() as i64));
        assert_eq!(row[2], Value::Bool(false));
        assert_eq!(row[3], Value::Bool(true));
    }

    #[test]
    fn extract_voxels_matches_direct_extraction() {
        let (db, a, _, vol) = setup();
        let rs = db.query("select extractVoxels(t.vol, t.r1) from t").unwrap();
        let bytes = rs.rows()[0][0].as_bytes().unwrap();
        let dr = decode_data_region(bytes).unwrap();
        let direct = vol.extract(&a).unwrap();
        assert_eq!(dr, direct);
    }

    #[test]
    fn nested_operators_compose() {
        // The paper's mixed-query shape: extract inside an intersection.
        let (db, a, b, vol) = setup();
        let rs = db.query("select extractVoxels(t.vol, intersection(t.r1, t.r2)) from t").unwrap();
        let dr = decode_data_region(rs.rows()[0][0].as_bytes().unwrap()).unwrap();
        assert_eq!(dr, vol.extract(&a.intersect(&b)).unwrap());
    }

    #[test]
    fn extraction_io_counts_pages_not_voxels() {
        let (mut db, _, _, _) = setup();
        db.lfm().reset_stats();
        let _ = db.query("select extractVoxels(t.vol, t.r1) from t").unwrap();
        let stats = db.lfm_stats();
        // 512-byte volume and a tiny region: everything fits in a couple
        // of 4 KiB pages, regardless of voxel count.
        assert!(stats.pages_read <= 3, "pages {}", stats.pages_read);
        assert!(stats.pages_read >= 1);
        assert_eq!(stats.pages_written, 0, "answers must not write to the device");
    }

    #[test]
    fn type_errors_are_reported() {
        let (db, _, _, _) = setup();
        assert!(matches!(
            db.query("select intersection(t.id, t.r1) from t"),
            Err(DbError::Type(_))
        ));
        assert!(matches!(db.query("select extractVoxels(t.r1) from t"), Err(DbError::Binding(_))));
        assert!(matches!(
            db.query("select extractVoxels(t.r1, t.r1) from t"),
            Err(DbError::Exec(_)) // r1 is a region, not a full volume
        ));
    }

    #[test]
    fn corrupt_region_operand_is_an_exec_error() {
        let mut db = Database::new(1 << 20).unwrap();
        register_spatial_ops(&mut db, RegionCodec::Naive);
        db.execute("create table t (r long)").unwrap();
        let junk = db.create_long_field(&[1, 2, 3]).unwrap();
        db.insert_row("t", vec![junk]).unwrap();
        assert!(matches!(db.query("select regionVoxels(t.r) from t"), Err(DbError::Exec(_))));
    }
}
