//! Data-mining queries — the paper's second future direction.
//!
//! "The integration of data mining \[1\] and hypothesis testing
//! techniques to support investigative queries like 'find PET study
//! intensity patterns that are associated with any neurological
//! condition in any subpopulation'."
//!
//! Following the cited framework (Agrawal, Imieliński & Swami: support /
//! confidence over boolean item sets), each study becomes a transaction
//! of boolean items — demographic facts (`age>=40`, `sex=F`) and imaging
//! facts (`hot:putamen-l`, high mean activity inside a structure) — and
//! [`mine_associations`] finds all rules `antecedent → consequent`
//! meeting minimum support and confidence.

use crate::server::MedicalServer;
use crate::Result;
use std::collections::BTreeSet;

/// One boolean observation about a study.
pub type Item = String;

/// A mined rule `antecedent → consequent` with its statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand items (all present).
    pub antecedent: Vec<Item>,
    /// Right-hand item.
    pub consequent: Item,
    /// Fraction of studies containing antecedent ∪ consequent.
    pub support: f64,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

/// Extracts the transaction (item set) of one study: demographics plus
/// per-structure activity flags.
///
/// A structure is "hot" when the study's mean intensity inside it
/// exceeds `hot_threshold`.
pub fn study_items(
    server: &mut MedicalServer,
    study_id: i64,
    structures: &[&str],
    hot_threshold: f64,
) -> Result<BTreeSet<Item>> {
    let mut items = BTreeSet::new();
    let rs = server.database().query(&format!(
        "select p.age, p.sex from patient p, rawVolume rv
         where p.patientId = rv.patientId and rv.studyId = {study_id}"
    ))?;
    if let Some(row) = rs.rows().first() {
        if let Some(age) = row[0].as_i64() {
            items.insert(if age >= 40 { "age>=40".into() } else { "age<40".into() });
        }
        if let Some(sex) = row[1].as_str() {
            items.insert(format!("sex={sex}"));
        }
    }
    for s in structures {
        let answer = server.structure_data(study_id, s)?;
        if answer.data.mean().unwrap_or(0.0) > hot_threshold {
            items.insert(format!("hot:{s}"));
        }
    }
    Ok(items)
}

/// Mines single-consequent association rules over the studies'
/// transactions (antecedents up to 2 items — plenty at clinical-cohort
/// scale, and keeps the search exact).
pub fn mine_associations(
    transactions: &[BTreeSet<Item>],
    min_support: f64,
    min_confidence: f64,
) -> Vec<AssociationRule> {
    assert!((0.0..=1.0).contains(&min_support), "support is a fraction");
    assert!((0.0..=1.0).contains(&min_confidence), "confidence is a fraction");
    let n = transactions.len();
    if n == 0 {
        return Vec::new();
    }
    let all_items: Vec<Item> = transactions
        .iter()
        .flat_map(|t| t.iter().cloned())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let count = |items: &[&Item]| -> usize {
        transactions.iter().filter(|t| items.iter().all(|i| t.contains(*i))).count()
    };
    let mut rules = Vec::new();
    // Antecedent size 1 and 2, single consequent, all distinct.
    for (i, a1) in all_items.iter().enumerate() {
        for c in &all_items {
            if c == a1 {
                continue;
            }
            push_rule(
                &mut rules,
                vec![a1.clone()],
                c.clone(),
                count(&[a1]),
                count(&[a1, c]),
                n,
                min_support,
                min_confidence,
            );
        }
        for a2 in all_items.iter().skip(i + 1) {
            for c in &all_items {
                if c == a1 || c == a2 {
                    continue;
                }
                push_rule(
                    &mut rules,
                    vec![a1.clone(), a2.clone()],
                    c.clone(),
                    count(&[a1, a2]),
                    count(&[a1, a2, c]),
                    n,
                    min_support,
                    min_confidence,
                );
            }
        }
    }
    // Strongest first: confidence, then support, then shorter antecedent.
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.total_cmp(&a.support))
            .then(a.antecedent.len().cmp(&b.antecedent.len()))
    });
    rules
}

#[allow(clippy::too_many_arguments)]
fn push_rule(
    rules: &mut Vec<AssociationRule>,
    antecedent: Vec<Item>,
    consequent: Item,
    antecedent_count: usize,
    both_count: usize,
    n: usize,
    min_support: f64,
    min_confidence: f64,
) {
    if antecedent_count == 0 {
        return;
    }
    let support = both_count as f64 / n as f64;
    let confidence = both_count as f64 / antecedent_count as f64;
    if support >= min_support && confidence >= min_confidence {
        rules.push(AssociationRule { antecedent, consequent, support, confidence });
    }
}

impl AssociationRule {
    /// Renders like `hot:putamen-l & sex=F => age>=40 (sup 0.40, conf 0.80)`.
    pub fn render(&self) -> String {
        format!(
            "{} => {} (sup {:.2}, conf {:.2})",
            self.antecedent.join(" & "),
            self.consequent,
            self.support,
            self.confidence
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QbismConfig, QbismSystem};

    fn tx(items: &[&str]) -> BTreeSet<Item> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_implication_has_full_confidence() {
        // Every F is hot; only half the Ms are.
        let txs = vec![
            tx(&["sex=F", "hot:x"]),
            tx(&["sex=F", "hot:x"]),
            tx(&["sex=M", "hot:x"]),
            tx(&["sex=M"]),
        ];
        let rules = mine_associations(&txs, 0.25, 0.9);
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec!["sex=F".to_string()] && r.consequent == "hot:x")
            .expect("F => hot rule");
        assert_eq!(rule.confidence, 1.0);
        assert_eq!(rule.support, 0.5);
        // The reverse direction has lower confidence (3/4 hot are not all F).
        assert!(!rules.iter().any(|r| r.antecedent == vec!["hot:x".to_string()]
            && r.consequent == "sex=F"
            && r.confidence >= 0.9));
    }

    #[test]
    fn thresholds_filter_rules() {
        let txs = vec![tx(&["a", "b"]), tx(&["a"]), tx(&["b"]), tx(&["c"])];
        assert!(mine_associations(&txs, 0.9, 0.1).is_empty(), "support bar too high");
        assert!(!mine_associations(&txs, 0.25, 0.5).is_empty());
        assert!(mine_associations(&[], 0.1, 0.1).is_empty());
    }

    #[test]
    fn two_item_antecedents_found() {
        let txs = vec![
            tx(&["a", "b", "c"]),
            tx(&["a", "b", "c"]),
            tx(&["a", "c"]),
            tx(&["b", "c"]),
            tx(&["a", "b"]),
        ];
        let rules = mine_associations(&txs, 0.3, 0.5);
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec!["a".to_string(), "b".to_string()])
            .expect("a & b => c");
        assert_eq!(rule.consequent, "c");
        // a&b in 3 of 5 transactions, a&b&c in 2: conf 2/3, support 2/5.
        assert!((rule.confidence - 2.0 / 3.0).abs() < 1e-12);
        assert!((rule.support - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rules_sorted_strongest_first() {
        let txs = vec![tx(&["a", "b"]), tx(&["a", "b"]), tx(&["a", "c"]), tx(&["c", "b"])];
        let rules = mine_associations(&txs, 0.1, 0.1);
        for w in rules.windows(2) {
            assert!(w[0].confidence >= w[1].confidence - 1e-12);
        }
    }

    #[test]
    fn study_transactions_from_the_live_system() {
        let mut sys =
            QbismSystem::install(&QbismConfig { pet_studies: 3, ..QbismConfig::small_test() })
                .expect("install");
        let ids = sys.pet_study_ids.clone();
        let mut txs = Vec::new();
        for &id in &ids {
            let items =
                study_items(&mut sys.server, id, &["ntal", "thalamus"], 60.0).expect("items");
            // Demographics always present.
            assert!(items.iter().any(|i| i.starts_with("sex=")));
            assert!(items.iter().any(|i| i.starts_with("age")));
            txs.push(items);
        }
        // Mining runs without error on live transactions.
        let _ = mine_associations(&txs, 0.3, 0.5);
    }

    #[test]
    fn render_is_readable() {
        let r = AssociationRule {
            antecedent: vec!["sex=F".into(), "hot:putamen-l".into()],
            consequent: "age>=40".into(),
            support: 0.4,
            confidence: 0.8,
        };
        assert_eq!(r.render(), "sex=F & hot:putamen-l => age>=40 (sup 0.40, conf 0.80)");
    }

    #[test]
    #[should_panic(expected = "support is a fraction")]
    fn bad_threshold_panics() {
        let _ = mine_associations(&[], 1.5, 0.5);
    }
}
