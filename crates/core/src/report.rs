//! The full-system measured pipeline — Table 3's row generator.
//!
//! For one query this runs every stage of Figure 7 and accounts it the
//! way the paper does: database (I/Os + time), network (messages +
//! time), DX (ImportVolume + rendering), plus the "other" column (the
//! atlas catalog query and SQL compilation).  Native times are measured
//! on this machine; simulated times replay the exact counts through the
//! calibrated 1994 models, so the *shape* of the paper's table
//! reproduces on modern hardware.

use crate::server::QueryAnswer;
use crate::{QbismSystem, Result};
use qbism_render::{import_data_region, Camera, DxTimeModel, Rasterizer};

/// A single-study query specification (the Table 3 rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuerySpec {
    /// Q1: the entire study.
    FullStudy,
    /// Q2: a rectangular solid.
    Box {
        /// Inclusive minimum corner.
        min: [u32; 3],
        /// Inclusive maximum corner.
        max: [u32; 3],
    },
    /// Q3/Q4: a named anatomic structure.
    Structure(String),
    /// Q5: an intensity band.
    Band {
        /// Band low end.
        lo: u8,
        /// Band high end.
        hi: u8,
    },
    /// Q6: band restricted to a structure.
    BandInStructure {
        /// Band low end.
        lo: u8,
        /// Band high end.
        hi: u8,
        /// Structure name.
        structure: String,
    },
}

impl QuerySpec {
    /// Short label used in printed tables.
    pub fn label(&self) -> String {
        match self {
            QuerySpec::FullStudy => "entire study".into(),
            QuerySpec::Box { min, max } => {
                format!("box ({},{},{})-({},{},{})", min[0], min[1], min[2], max[0], max[1], max[2])
            }
            QuerySpec::Structure(s) => s.clone(),
            QuerySpec::Band { lo, hi } => format!("band {lo}-{hi}"),
            QuerySpec::BandInStructure { lo, hi, structure } => {
                format!("band {lo}-{hi} in {structure}")
            }
        }
    }
}

/// One measured Table 3 row.
#[derive(Debug, Clone)]
pub struct FullQueryReport {
    /// Query label.
    pub label: String,
    /// Runs in the answer REGION.
    pub h_runs: usize,
    /// Voxels in the answer.
    pub voxels: u64,
    /// LFM 4 KiB page reads.
    pub lfm_ios: u64,
    /// Native database seconds on this machine.
    pub db_native_seconds: f64,
    /// Simulated 1994 database real seconds.
    pub db_sim_seconds: f64,
    /// RPC messages.
    pub messages: u64,
    /// Simulated network seconds.
    pub net_sim_seconds: f64,
    /// Native ImportVolume seconds on this machine.
    pub import_native_seconds: f64,
    /// Simulated ImportVolume seconds.
    pub import_sim_seconds: f64,
    /// Native rendering seconds on this machine.
    pub render_native_seconds: f64,
    /// Simulated "rendering +" seconds.
    pub render_sim_seconds: f64,
    /// Simulated "other" seconds (atlas query + SQL compilation).
    pub other_sim_seconds: f64,
    /// Simulated total execution seconds (sum of the bold components).
    pub total_sim_seconds: f64,
}

/// The fixed "other" time: the paper attributes ~3-4.5 s per query to
/// the atlas catalog query and SQL compilation on the 1994 machine.
const OTHER_SIM_SECONDS: f64 = 3.7;

/// Pixel size of the measurement render (native cost only; the
/// simulated render time comes from the calibrated model).
const FRAME: usize = 256;

/// Executes one query through the entire pipeline.
pub fn run_full_query(
    sys: &mut QbismSystem,
    study_id: i64,
    spec: &QuerySpec,
) -> Result<FullQueryReport> {
    // "Other": the atlas/patient catalog query that precedes every
    // spatial query (its native cost is folded into the constant).
    let _info = sys.server.atlas_info(study_id)?;
    let answer: QueryAnswer = match spec {
        QuerySpec::FullStudy => sys.server.full_study(study_id)?,
        QuerySpec::Box { min, max } => sys.server.box_data(study_id, *min, *max)?,
        QuerySpec::Structure(name) => sys.server.structure_data(study_id, name)?,
        QuerySpec::Band { lo, hi } => sys.server.band_data(study_id, *lo, *hi)?,
        QuerySpec::BandInStructure { lo, hi, structure } => {
            sys.server.band_in_structure(study_id, *lo, *hi, structure)?
        }
    };
    // DX: ImportVolume.
    let t0 = std::time::Instant::now();
    let field = import_data_region(&answer.data);
    let import_native = t0.elapsed().as_secs_f64();
    // DX: render the intensity cloud.
    let t1 = std::time::Instant::now();
    let camera = Camera::default_for_grid(sys.server.config().side());
    let mut raster = Rasterizer::new(FRAME, FRAME, camera);
    raster.draw_field(&field);
    let _fb = raster.finish();
    let render_native = t1.elapsed().as_secs_f64();

    let dx = DxTimeModel::RS6000_1994;
    let voxels = answer.voxel_count();
    let cost = answer.cost;
    let import_sim = dx.import_seconds(voxels);
    let render_sim = dx.render_seconds(voxels);
    let total =
        cost.sim_db_seconds + cost.sim_net_seconds + import_sim + render_sim + OTHER_SIM_SECONDS;
    Ok(FullQueryReport {
        label: spec.label(),
        h_runs: answer.run_count(),
        voxels,
        lfm_ios: cost.lfm.pages_read,
        db_native_seconds: cost.native_db_seconds,
        db_sim_seconds: cost.sim_db_seconds,
        messages: cost.messages,
        net_sim_seconds: cost.sim_net_seconds,
        import_native_seconds: import_native,
        import_sim_seconds: import_sim,
        render_native_seconds: render_native,
        render_sim_seconds: render_sim,
        other_sim_seconds: OTHER_SIM_SECONDS,
        total_sim_seconds: total,
    })
}

impl FullQueryReport {
    /// Formats the row in the paper's Table 3 column order.
    pub fn table3_row(&self) -> String {
        format!(
            "{:<28} {:>8} {:>9} {:>6} {:>8.2} {:>7} {:>8.1} {:>8.2} {:>8.1} {:>7.1} {:>7.1}",
            self.label,
            self.h_runs,
            self.voxels,
            self.lfm_ios,
            self.db_sim_seconds,
            self.messages,
            self.net_sim_seconds,
            self.import_sim_seconds,
            self.render_sim_seconds,
            self.other_sim_seconds,
            self.total_sim_seconds,
        )
    }

    /// The table header matching [`FullQueryReport::table3_row`].
    pub fn table3_header() -> String {
        format!(
            "{:<28} {:>8} {:>9} {:>6} {:>8} {:>7} {:>8} {:>8} {:>8} {:>7} {:>7}",
            "query",
            "h-runs",
            "voxels",
            "I/Os",
            "db(s)",
            "msgs",
            "net(s)",
            "imp(s)",
            "rend(s)",
            "oth(s)",
            "tot(s)"
        )
    }
}

/// Interactive-session variant: consult the DX cache first.  A hit costs
/// only rendering (the paper's "review and manipulate the results of
/// several recently issued queries without necessitating a database
/// reaccess"); a miss runs the full pipeline and fills the cache.
///
/// Returns the report plus whether the cache served the data.
pub fn run_with_cache(
    sys: &mut QbismSystem,
    cache: &mut qbism_render::DxCache,
    study_id: i64,
    spec: &QuerySpec,
) -> Result<(FullQueryReport, bool)> {
    let key = format!("{study_id}/{spec:?}");
    if let Some(field) = cache.get(&key) {
        let voxels = field.len() as u64;
        let t = std::time::Instant::now();
        let camera = Camera::default_for_grid(sys.server.config().side());
        let mut raster = Rasterizer::new(FRAME, FRAME, camera);
        raster.draw_field(field);
        let render_native = t.elapsed().as_secs_f64();
        let dx = DxTimeModel::RS6000_1994;
        let render_sim = dx.render_seconds(voxels);
        return Ok((
            FullQueryReport {
                label: format!("{} [cached]", spec.label()),
                h_runs: 0,
                voxels,
                lfm_ios: 0,
                db_native_seconds: 0.0,
                db_sim_seconds: 0.0,
                messages: 0,
                net_sim_seconds: 0.0,
                import_native_seconds: 0.0,
                import_sim_seconds: 0.0,
                render_native_seconds: render_native,
                render_sim_seconds: render_sim,
                other_sim_seconds: 0.0,
                total_sim_seconds: render_sim,
            },
            true,
        ));
    }
    let report = run_full_query(sys, study_id, spec)?;
    // Re-import for the cache (the measured import above was consumed by
    // the render; caching a fresh copy mirrors DX keeping the object).
    let answer = match spec {
        QuerySpec::FullStudy => sys.server.full_study(study_id)?,
        QuerySpec::Box { min, max } => sys.server.box_data(study_id, *min, *max)?,
        QuerySpec::Structure(name) => sys.server.structure_data(study_id, name)?,
        QuerySpec::Band { lo, hi } => sys.server.band_data(study_id, *lo, *hi)?,
        QuerySpec::BandInStructure { lo, hi, structure } => {
            sys.server.band_in_structure(study_id, *lo, *hi, structure)?
        }
    };
    cache.put(key, import_data_region(&answer.data));
    Ok((report, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QbismConfig;

    fn system() -> QbismSystem {
        QbismSystem::install(&QbismConfig::small_test()).unwrap()
    }

    #[test]
    fn full_pipeline_produces_consistent_report() {
        let mut sys = system();
        let r = run_full_query(&mut sys, 1, &QuerySpec::FullStudy).unwrap();
        assert_eq!(r.voxels, 4096);
        assert_eq!(r.h_runs, 1);
        assert!(r.lfm_ios >= 1);
        assert!(r.messages > 2);
        let parts = r.db_sim_seconds
            + r.net_sim_seconds
            + r.import_sim_seconds
            + r.render_sim_seconds
            + r.other_sim_seconds;
        assert!((r.total_sim_seconds - parts).abs() < 1e-12);
    }

    #[test]
    fn early_filtering_shows_in_totals() {
        // Table 3's conclusion: without spatial filtering every response
        // would look like Q1; with it, selective queries are much faster.
        let mut sys = system();
        let full = run_full_query(&mut sys, 1, &QuerySpec::FullStudy).unwrap();
        let sel = run_full_query(&mut sys, 1, &QuerySpec::Structure("thalamus".into())).unwrap();
        assert!(sel.total_sim_seconds < full.total_sim_seconds);
        assert!(sel.voxels < full.voxels);
        assert!(sel.messages < full.messages);
    }

    #[test]
    fn mixed_query_filters_finest() {
        let mut sys = system();
        let band = run_full_query(&mut sys, 1, &QuerySpec::Band { lo: 64, hi: 95 }).unwrap();
        let mixed = run_full_query(
            &mut sys,
            1,
            &QuerySpec::BandInStructure { lo: 64, hi: 95, structure: "ntal1".into() },
        )
        .unwrap();
        assert!(mixed.voxels <= band.voxels);
    }

    #[test]
    fn dx_cache_skips_the_database_on_review() {
        let mut sys = system();
        let mut cache = qbism_render::DxCache::new(4);
        let spec = QuerySpec::Structure("ntal".into());
        let (first, was_cached) = run_with_cache(&mut sys, &mut cache, 1, &spec).unwrap();
        assert!(!was_cached);
        assert!(first.lfm_ios > 0);
        let before = sys.server.lfm_stats();
        let (second, was_cached) = run_with_cache(&mut sys, &mut cache, 1, &spec).unwrap();
        assert!(was_cached, "second run must hit the cache");
        assert_eq!(second.lfm_ios, 0);
        assert_eq!(second.messages, 0);
        assert_eq!(
            sys.server.lfm_stats().pages_read,
            before.pages_read,
            "no device I/O on a cache hit"
        );
        assert_eq!(second.voxels, first.voxels);
        assert!(second.total_sim_seconds < first.total_sim_seconds);
        // Flushing restores the measured-run protocol.
        cache.flush();
        let (_, was_cached) = run_with_cache(&mut sys, &mut cache, 1, &spec).unwrap();
        assert!(!was_cached);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QuerySpec::FullStudy.label(), "entire study");
        assert_eq!(
            QuerySpec::Box { min: [30; 3], max: [100; 3] }.label(),
            "box (30,30,30)-(100,100,100)"
        );
        assert_eq!(QuerySpec::Band { lo: 224, hi: 255 }.label(), "band 224-255");
        let header = FullQueryReport::table3_header();
        assert!(header.contains("h-runs") && header.contains("I/Os"));
    }
}
