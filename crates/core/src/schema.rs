//! The Figure 1 medical schema as SQL DDL.
//!
//! Every entity of the E-R diagram becomes a table; the darker boxes
//! (Warped Volume, Atlas Structure, Intensity Band) carry the long-field
//! columns that the spatial operators work on.

use crate::Result;
use qbism_starburst::Database;

/// All tables of the medical schema, in creation order.
pub const TABLES: [&str; 9] = [
    "atlas",
    "neuralsystem",
    "neuralstructure",
    "systemstructure",
    "patient",
    "rawvolume",
    "warpedvolume",
    "atlasstructure",
    "intensityband",
];

/// Creates the medical schema in `db`.
pub fn create_schema(db: &mut Database) -> Result<()> {
    // Atlas: the coordinate system it defines (origin, voxel size,
    // resolution n) plus reference-population metadata.
    db.execute(
        "create table atlas (
            atlasId int, atlasName string, n int,
            x0 float, y0 float, z0 float,
            dx float, dy float, dz float,
            population string
        )",
    )?;
    db.execute("create table neuralSystem (systemId int, systemName string)")?;
    db.execute("create table neuralStructure (structureId int, structureName string)")?;
    // m:n relationship "comprises" between systems and structures.
    db.execute("create table systemStructure (systemId int, structureId int)")?;
    db.execute("create table patient (patientId int, name string, age int, sex string)")?;
    // Raw Volume: the study in scanline order at native resolution.
    db.execute(
        "create table rawVolume (
            studyId int, patientId int, modality string, date string,
            nx int, ny int, nz int,
            sx float, sy float, sz float,
            data long
        )",
    )?;
    // Warped Volume: the study resampled to atlas space, plus the
    // warping matrix (12 affine coefficients) stored alongside.
    db.execute(
        "create table warpedVolume (
            studyId int, atlasId int, data long,
            m00 float, m01 float, m02 float,
            m10 float, m11 float, m12 float,
            m20 float, m21 float, m22 float,
            t0 float, t1 float, t2 float
        )",
    )?;
    // Atlas Structure: volumetric REGION plus the surface mesh.
    db.execute(
        "create table atlasStructure (
            structureId int, atlasId int, region long, surface long
        )",
    )?;
    // Intensity Band: the redundant index entity.
    db.execute(
        "create table intensityBand (
            studyId int, atlasId int, lo int, hi int, region long
        )",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_creates_all_tables() {
        let mut db = Database::new(1 << 20).unwrap();
        create_schema(&mut db).unwrap();
        for t in TABLES {
            assert_eq!(db.table_len(t).unwrap(), 0, "table {t} missing or non-empty");
        }
    }

    #[test]
    fn schema_is_not_reentrant() {
        let mut db = Database::new(1 << 20).unwrap();
        create_schema(&mut db).unwrap();
        assert!(create_schema(&mut db).is_err(), "duplicate creation must fail");
    }

    #[test]
    fn paper_queries_parse_against_schema() {
        // The two Section 3.4 queries (aliases adjusted: `as` is reserved).
        let mut db = Database::new(1 << 20).unwrap();
        create_schema(&mut db).unwrap();
        let q1 = "select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz,
                         a.atlasId, p.name, p.patientId, rv.date
                  from atlas a, rawVolume rv, warpedVolume wv, patient p
                  where a.atlasId = wv.atlasId and wv.studyId = rv.studyId and
                        rv.patientId = p.patientId and rv.studyId = 53 and
                        a.atlasName = 'Talairach'";
        let rs = db.query(q1).unwrap();
        assert_eq!(rs.columns().len(), 11);
        assert!(rs.is_empty(), "no data loaded yet");
    }
}
