//! Database population — everything QBISM computes "at database load
//! time (rather than query time) since the computation is expensive".
//!
//! For each synthesized study the loader performs the paper's full data
//! path: store the raw scanline volume, register it to the atlas from
//! landmark pairs, resample it into a warped VOLUME stored in curve
//! order, and band it into intensity-band REGIONs.  Atlas structures are
//! rasterized into REGION long fields with their surface meshes.

use crate::config::QbismConfig;
use crate::ops::register_spatial_ops;
use crate::schema::create_schema;
use crate::server::MedicalServer;
use crate::wire::{mesh_to_long_field, volume_to_long_field};
use crate::Result;
use qbism_phantom::{
    build_atlas, demographics, AtlasStructure, Modality, MriField, PetField, PhantomAtlas,
    StudyGenerator,
};
use qbism_region::Region;

use qbism_render::extract_surface;
use qbism_starburst::{Database, Value};
use qbism_warp::{register_landmarks, warp_to_atlas};

/// Identifier of the single atlas the loader installs.
pub const ATLAS_ID: i64 = 1;

/// A fully installed QBISM system: populated database plus the phantom
/// ground truth the benchmarks compare against.
pub struct QbismSystem {
    /// The MedicalServer wrapping the populated database.
    pub server: MedicalServer,
    /// The synthetic atlas (ground truth for experiments).
    pub atlas: PhantomAtlas,
    /// Study ids of the loaded PET studies, in load order.
    pub pet_study_ids: Vec<i64>,
    /// Study ids of the loaded MRI studies, in load order.
    pub mri_study_ids: Vec<i64>,
}

impl QbismSystem {
    /// Installs a complete system from a configuration: schema, UDFs,
    /// atlas, patients, studies (raw → registered → warped → banded).
    pub fn install(config: &QbismConfig) -> Result<QbismSystem> {
        let mut db = Database::new(config.device_capacity)?;
        register_spatial_ops(&mut db, config.region_codec);
        register_geometry_ops(&mut db, config);
        create_schema(&mut db)?;
        let geom = config.geometry();
        let side = config.side();
        // Ground truth (atlas, fields, blob placement) is generated on a
        // canonical Hilbert geometry so the *data* is bit-identical across
        // storage-curve configurations — Table 4 compares encodings of
        // the same voxel sets, not different phantoms.
        let truth_geom =
            qbism_region::GridGeometry::new(qbism_sfc::CurveKind::Hilbert, 3, config.atlas_bits);

        // ------------------------------------------------------------------
        // Atlas and structures.
        // ------------------------------------------------------------------
        db.insert_row(
            "atlas",
            vec![
                Value::Int(ATLAS_ID),
                Value::from("Talairach"),
                Value::Int(i64::from(side)),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(1.0),
                Value::Float(1.0),
                Value::Float(1.0),
                Value::from("adult reference"),
            ],
        )?;
        let atlas = build_atlas(truth_geom);
        load_neuro_catalog(&mut db, &atlas)?;
        for (idx, s) in atlas.structures().iter().enumerate() {
            let structure_id = (idx + 1) as i64;
            let stored = s.region.to_curve(config.curve);
            let region_lf = store_region(&mut db, config, &stored)?;
            let mesh = extract_surface(&s.region);
            let mesh_lf = db.create_long_field(&mesh_to_long_field(&mesh))?;
            db.insert_row(
                "atlasstructure",
                vec![Value::Int(structure_id), Value::Int(ATLAS_ID), region_lf, mesh_lf],
            )?;
        }

        // ------------------------------------------------------------------
        // Patients.
        // ------------------------------------------------------------------
        let patients = demographics::generate_patients(config.seed, config.patients.max(1));
        for p in &patients {
            db.insert_row(
                "patient",
                vec![
                    Value::Int(p.patient_id),
                    Value::from(p.name.clone()),
                    Value::Int(p.age),
                    Value::from(p.sex.code()),
                ],
            )?;
        }

        // ------------------------------------------------------------------
        // Studies: acquire, register, warp, band.
        // ------------------------------------------------------------------
        let generator = StudyGenerator::new(side);
        let mut pet_study_ids = Vec::new();
        let mut mri_study_ids = Vec::new();
        let mut next_study = 1i64;
        for i in 0..config.pet_studies {
            let field =
                PetField::new(&atlas, config.seed.wrapping_add(100 + i as u64), config.pet_blobs);
            let study_id = next_study;
            next_study += 1;
            load_study(
                &mut db,
                config,
                &generator,
                &field,
                Modality::Pet,
                study_id,
                patients[i % patients.len()].patient_id,
                config.seed.wrapping_add(500 + i as u64),
            )?;
            pet_study_ids.push(study_id);
        }
        for i in 0..config.mri_studies {
            let field = MriField::new(&atlas, config.seed.wrapping_add(900 + i as u64));
            let study_id = next_study;
            next_study += 1;
            load_study(
                &mut db,
                config,
                &generator,
                &field,
                Modality::Mri,
                study_id,
                patients[(config.pet_studies + i) % patients.len()].patient_id,
                config.seed.wrapping_add(1300 + i as u64),
            )?;
            mri_study_ids.push(study_id);
        }

        // Loading I/O (volume/region writes) is not part of any measured
        // query; start every session with clean counters.
        let _ = geom; // storage geometry is carried by config
        db.lfm().reset_stats();
        Ok(QbismSystem {
            server: MedicalServer::new(db, config.clone()),
            atlas,
            pet_study_ids,
            mri_study_ids,
        })
    }
}

/// Persists a REGION long field per the configured tablespace: the
/// paper's configured codec by default, the smaller queryable
/// compressed codec (run-vskip or k³-tree) when the compressed
/// tablespace is on.
fn store_region(db: &mut Database, config: &QbismConfig, region: &Region) -> Result<Value> {
    if config.compressed_tablespace {
        Ok(db.create_long_field_compressed(&qbism_region::encode_compressed(region)?)?)
    } else {
        Ok(db.create_long_field(&config.region_codec.encode(region)?)?)
    }
}

/// Registers the geometry-literal helpers the MedicalServer's generated
/// SQL uses: `fullRegion()` and `boxRegion(x0,y0,z0,x1,y1,z1)` build
/// immediate REGION values (costing no device I/O, like any literal).
fn register_geometry_ops(db: &mut Database, config: &QbismConfig) {
    let geom = config.geometry();
    let codec = config.region_codec;
    db.register_udf("fullregion", move |_, args| {
        if !args.is_empty() {
            return Err(qbism_starburst::DbError::Binding("fullRegion takes no arguments".into()));
        }
        codec
            .encode(&Region::full(geom))
            .map(Value::Bytes)
            .map_err(|e| qbism_starburst::DbError::Exec(e.to_string()))
    });
    db.register_udf("boxregion", move |_, args| {
        if args.len() != 6 {
            return Err(qbism_starburst::DbError::Binding(
                "boxRegion takes 6 integer corner coordinates".into(),
            ));
        }
        let mut c = [0u32; 6];
        for (slot, a) in c.iter_mut().zip(args) {
            *slot = a.as_i64().filter(|v| *v >= 0).map(|v| v as u32).ok_or_else(|| {
                qbism_starburst::DbError::Type("boxRegion wants non-negative ints".into())
            })?;
        }
        let region =
            Region::from_box(geom, [c[0], c[1], c[2]], [c[3], c[4], c[5]]).ok_or_else(|| {
                qbism_starburst::DbError::Exec("boxRegion corners outside the grid".into())
            })?;
        codec
            .encode(&region)
            .map(Value::Bytes)
            .map_err(|e| qbism_starburst::DbError::Exec(e.to_string()))
    });
}

/// Inserts neural systems, structures, and their m:n links.
fn load_neuro_catalog(db: &mut Database, atlas: &PhantomAtlas) -> Result<()> {
    let systems = [(1i64, "limbic"), (2, "motor"), (3, "visual")];
    for (id, name) in systems {
        db.insert_row("neuralsystem", vec![Value::Int(id), Value::from(name)])?;
    }
    for (idx, s) in atlas.structures().iter().enumerate() {
        let structure_id = (idx + 1) as i64;
        db.insert_row("neuralstructure", vec![Value::Int(structure_id), Value::from(s.name)])?;
        // Membership: hippocampi in limbic, putamina+caudate in motor,
        // hemispheres in visual (coarse but queryable).
        let system = match s.name {
            n if n.starts_with("hippocampus") || n == "ventricle" => 1,
            n if n.starts_with("putamen") || n == "caudate" || n == "thalamus" => 2,
            _ => 3,
        };
        db.insert_row("systemstructure", vec![Value::Int(system), Value::Int(structure_id)])?;
    }
    Ok(())
}

/// Loads one study end to end.
#[allow(clippy::too_many_arguments)]
fn load_study<F: qbism_phantom::ScalarField3>(
    db: &mut Database,
    config: &QbismConfig,
    generator: &StudyGenerator,
    field: &F,
    modality: Modality,
    study_id: i64,
    patient_id: i64,
    seed: u64,
) -> Result<()> {
    let acquired = generator.acquire(field, modality, seed);
    let dims = acquired.raw.dims();
    let spacing = acquired.raw.spacing();
    let raw_lf = db.create_long_field(acquired.raw.data())?;
    db.insert_row(
        "rawvolume",
        vec![
            Value::Int(study_id),
            Value::Int(patient_id),
            Value::from(modality.name()),
            Value::from(format!("1993-0{}-15", 1 + (study_id as usize % 9))),
            Value::Int(i64::from(dims[0])),
            Value::Int(i64::from(dims[1])),
            Value::Int(i64::from(dims[2])),
            Value::Float(spacing.x),
            Value::Float(spacing.y),
            Value::Float(spacing.z),
            raw_lf,
        ],
    )?;
    // Register from landmarks (the warping-matrix computation).
    let (patient_pts, atlas_pts): (Vec<_>, Vec<_>) = acquired.landmarks.iter().copied().unzip();
    let warp = register_landmarks(&patient_pts, &atlas_pts)?;
    let warped = warp_to_atlas(&acquired.raw, &warp, config.geometry(), 1.0);
    let warped_lf = db.create_long_field(&volume_to_long_field(&warped))?;
    let m = warp.m;
    db.insert_row(
        "warpedvolume",
        vec![
            Value::Int(study_id),
            Value::Int(ATLAS_ID),
            warped_lf,
            Value::Float(m[0][0]),
            Value::Float(m[0][1]),
            Value::Float(m[0][2]),
            Value::Float(m[1][0]),
            Value::Float(m[1][1]),
            Value::Float(m[1][2]),
            Value::Float(m[2][0]),
            Value::Float(m[2][1]),
            Value::Float(m[2][2]),
            Value::Float(warp.t.x),
            Value::Float(warp.t.y),
            Value::Float(warp.t.z),
        ],
    )?;
    // Banding: the Intensity Band index entity, computed at load time.
    for (lo, hi, region) in warped.intensity_bands(config.band_width) {
        let band_lf = store_region(db, config, &region)?;
        db.insert_row(
            "intensityband",
            vec![
                Value::Int(study_id),
                Value::Int(ATLAS_ID),
                Value::Int(i64::from(lo)),
                Value::Int(i64::from(hi)),
                band_lf,
            ],
        )?;
    }
    Ok(())
}

/// Looks up a structure's 1-based id by name in the phantom atlas order.
pub fn structure_id_by_name(atlas: &PhantomAtlas, name: &str) -> Option<i64> {
    atlas.structures().iter().position(|s: &AtlasStructure| s.name == name).map(|i| (i + 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> QbismSystem {
        QbismSystem::install(&QbismConfig::small_test()).unwrap()
    }

    #[test]
    fn install_populates_all_tables() {
        let mut sys = system();
        let db = sys.server.database();
        assert_eq!(db.table_len("atlas").unwrap(), 1);
        assert_eq!(db.table_len("atlasstructure").unwrap(), 11);
        assert_eq!(db.table_len("neuralstructure").unwrap(), 11);
        assert_eq!(db.table_len("patient").unwrap(), 4);
        assert_eq!(db.table_len("rawvolume").unwrap(), 3);
        assert_eq!(db.table_len("warpedvolume").unwrap(), 3);
        // 8 bands per study (width 32).
        assert_eq!(db.table_len("intensityband").unwrap(), 3 * 8);
        assert_eq!(sys.pet_study_ids, vec![1, 2]);
        assert_eq!(sys.mri_study_ids, vec![3]);
    }

    #[test]
    fn stats_start_clean_after_install() {
        let sys = system();
        let stats = sys.server.lfm_stats();
        assert_eq!(stats.pages_read, 0);
        assert_eq!(stats.pages_written, 0);
    }

    #[test]
    fn bands_partition_each_study() {
        let mut sys = system();
        let rs = sys
            .server
            .database()
            .query("select sum(regionVoxels(b.region)) from intensityBand b where b.studyId = 1")
            .unwrap();
        let total = rs.single_value().unwrap().as_i64().unwrap();
        assert_eq!(total, 16 * 16 * 16, "bands must cover the whole grid once");
    }

    #[test]
    fn warped_volume_row_stores_the_matrix() {
        let mut sys = system();
        let rs = sys
            .server
            .database()
            .query("select wv.m00, wv.m11, wv.m22 from warpedVolume wv where wv.studyId = 1")
            .unwrap();
        let row = &rs.rows()[0];
        // A small misalignment: diagonal elements near 1.
        for v in row {
            let x = v.as_f64().unwrap();
            assert!((0.8..1.2).contains(&x), "diagonal {x} not near identity");
        }
    }

    #[test]
    fn structure_ids_follow_atlas_order() {
        let sys = system();
        assert_eq!(structure_id_by_name(&sys.atlas, "ntal0"), Some(1));
        assert_eq!(structure_id_by_name(&sys.atlas, "ntal1"), Some(2));
        assert_eq!(structure_id_by_name(&sys.atlas, "hippocampus-r"), Some(11));
        assert_eq!(structure_id_by_name(&sys.atlas, "nope"), None);
    }

    #[test]
    fn install_is_deterministic() {
        let mut a = system();
        let mut b = system();
        let q =
            "select extractVoxels(wv.data, fullRegion()) from warpedVolume wv where wv.studyId = 1";
        let ra = a.server.database().query(q).unwrap();
        let rb = b.server.database().query(q).unwrap();
        assert_eq!(ra.rows(), rb.rows());
    }
}
