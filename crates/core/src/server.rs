//! MedicalServer: high-level query specifications → SQL → answers.
//!
//! "MedicalServer translates high-level query specifications it receives
//! from DX into SQL, sends the query strings to Starburst, and then
//! returns the results to DX."  Each public method is one of the query
//! classes of Sections 2.1 and 6: simple (full study), spatial
//! (box / structure), attribute (band), mixed (band ∩ structure),
//! multi-study (n-way intersection), and the population aggregate.
//!
//! Every answer carries a [`QueryCost`]: exact LFM I/O counts, tuple
//! scans, native elapsed time, and simulated 1994 times from the disk
//! and network models — the raw material of Tables 3 and 4.

use crate::config::QbismConfig;
use crate::loader::ATLAS_ID;
use crate::wire::{data_region_wire_size, decode_data_region};
use crate::{QbismError, Result};
use qbism_lfm::{DiskModel, IoStats};
use qbism_netsim::NetworkModel;
use qbism_obs::trace;
use qbism_region::{Region, RegionCodec};
use qbism_starburst::{Database, Value};
use qbism_volume::{DataRegion, Volume};

/// Cost accounting for one executed query.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCost {
    /// LFM I/O performed by the query (the "LFM Disk I/Os (4KB)" column).
    pub lfm: IoStats,
    /// Base-table tuples examined.
    pub rows_scanned: u64,
    /// Native wall-clock seconds of the database phase on this machine.
    pub native_db_seconds: f64,
    /// Simulated 1994 database real time: disk model + native cpu.
    pub sim_db_seconds: f64,
    /// Answer payload bytes shipped to DX.
    pub wire_bytes: u64,
    /// RPC messages for the answer.
    pub messages: u64,
    /// Simulated network real time.
    pub sim_net_seconds: f64,
}

impl QueryCost {
    /// Field-wise accumulation: folds `other`'s costs into `self`.
    /// Multi-statement query classes (the population aggregate, the
    /// intensity-range union) sum their per-statement brackets with this.
    pub fn accumulate(&mut self, other: &QueryCost) {
        self.lfm = self.lfm.plus(&other.lfm);
        self.rows_scanned += other.rows_scanned;
        self.native_db_seconds += other.native_db_seconds;
        self.sim_db_seconds += other.sim_db_seconds;
        self.wire_bytes += other.wire_bytes;
        self.messages += other.messages;
        self.sim_net_seconds += other.sim_net_seconds;
    }
}

/// A spatially restricted answer plus its costs.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// The extracted data (REGION + intensities).
    pub data: DataRegion<u8>,
    /// Cost accounting.
    pub cost: QueryCost,
}

impl QueryAnswer {
    /// Number of h-runs in the answer's REGION (a Table 3 column).
    pub fn run_count(&self) -> usize {
        self.data.region().run_count()
    }

    /// Number of voxels in the answer (a Table 3 column).
    pub fn voxel_count(&self) -> u64 {
        self.data.voxel_count() as u64
    }
}

/// Pre-resolved observability handles for one query class, so the
/// per-query cost is a histogram observe and a counter add rather than
/// four registry-map lookups.
struct QueryClassMetrics {
    seconds: qbism_obs::Histogram,
    total: qbism_obs::Counter,
}

/// Handles shared by every query class.
struct ServerMetrics {
    wire_bytes: qbism_obs::Counter,
    rows_scanned: qbism_obs::Counter,
    classes: std::collections::HashMap<&'static str, QueryClassMetrics>,
}

/// The Section 3.4 query classes `finish_query` reports under.
const QUERY_CLASSES: [&str; 8] = [
    "full_study",
    "box",
    "structure",
    "band",
    "intensity_range",
    "band_in_structure",
    "multi_study_band",
    "population_average",
];

impl ServerMetrics {
    fn new() -> Self {
        let reg = qbism_obs::global();
        reg.describe("qbism_query_seconds", "Native database seconds per query, by class.");
        reg.describe("qbism_query_total", "Queries answered, by class.");
        reg.describe("qbism_query_wire_bytes_total", "Answer payload bytes shipped to DX.");
        reg.describe("qbism_query_rows_scanned_total", "Base tuples scanned by server queries.");
        let classes = QUERY_CLASSES
            .iter()
            .map(|&class| {
                let labels = [("class", class)];
                (
                    class,
                    QueryClassMetrics {
                        seconds: reg.histogram_with("qbism_query_seconds", &labels),
                        total: reg.counter_with("qbism_query_total", &labels),
                    },
                )
            })
            .collect();
        ServerMetrics {
            wire_bytes: reg.counter("qbism_query_wire_bytes_total"),
            rows_scanned: reg.counter("qbism_query_rows_scanned_total"),
            classes,
        }
    }
}

/// The query front end over a populated database.
pub struct MedicalServer {
    db: Database,
    config: QbismConfig,
    disk: DiskModel,
    net: NetworkModel,
    metrics: ServerMetrics,
}

impl MedicalServer {
    /// Wraps a populated database.
    pub fn new(db: Database, config: QbismConfig) -> Self {
        MedicalServer {
            db,
            config,
            disk: DiskModel::RS6000_1994,
            net: NetworkModel::TESTBED_1994,
            metrics: ServerMetrics::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &QbismConfig {
        &self.config
    }

    /// The process-wide metrics registry (scrape with
    /// `render_prometheus()` / `snapshot_json()`).
    pub fn metrics(&self) -> &'static qbism_obs::Registry {
        qbism_obs::global()
    }

    /// The EXPLAIN ANALYZE-style span tree of the most recent query on
    /// this process, if tracing is enabled.
    pub fn last_query_trace(&self) -> Option<qbism_obs::SpanNode> {
        qbism_obs::trace::last_root()
    }

    /// Direct database access (examples, tests, ad-hoc SQL).
    pub fn database(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Current LFM counters.
    pub fn lfm_stats(&self) -> IoStats {
        self.db.lfm_stats()
    }

    // ----------------------------------------------------------------
    // Query classes
    // ----------------------------------------------------------------

    /// Q1: "show a full PET study" — the flat-file reference point.
    pub fn full_study(&mut self, study_id: i64) -> Result<QueryAnswer> {
        let span = Self::query_span("full_study");
        span.record_i64("study_id", study_id);
        let answer = self.extract_with_sql(&format!(
            "select extractVoxels(wv.data, fullRegion())
             from warpedVolume wv
             where wv.studyId = {study_id} and wv.atlasId = {ATLAS_ID}"
        ))?;
        self.finish_query(&span, "full_study", &answer.cost);
        Ok(answer)
    }

    /// Q2-style spatial query: data inside a rectangular solid.
    pub fn box_data(&mut self, study_id: i64, min: [u32; 3], max: [u32; 3]) -> Result<QueryAnswer> {
        let span = Self::query_span("box");
        span.record_i64("study_id", study_id);
        let answer = self.extract_with_sql(&format!(
            "select extractVoxels(wv.data, boxRegion({}, {}, {}, {}, {}, {}))
             from warpedVolume wv
             where wv.studyId = {study_id} and wv.atlasId = {ATLAS_ID}",
            min[0], min[1], min[2], max[0], max[1], max[2]
        ))?;
        self.finish_query(&span, "box", &answer.cost);
        Ok(answer)
    }

    /// Q3/Q4-style spatial query: data inside a named structure — the
    /// exact Section 3.4 query pair.
    pub fn structure_data(&mut self, study_id: i64, structure: &str) -> Result<QueryAnswer> {
        let span = Self::query_span("structure");
        span.record_i64("study_id", study_id);
        span.record_str("structure", structure);
        let answer = self.extract_with_sql(&format!(
            "select extractVoxels(wv.data, ast.region)
             from warpedVolume wv, atlasStructure ast, neuralStructure ns
             where wv.studyId = {study_id} and wv.atlasId = {ATLAS_ID} and
                   ast.atlasId = {ATLAS_ID} and
                   ast.structureId = ns.structureId and
                   ns.structureName = '{structure}'"
        ))?;
        self.finish_query(&span, "structure", &answer.cost);
        Ok(answer)
    }

    /// Q5-style attribute query: data within a stored intensity band.
    pub fn band_data(&mut self, study_id: i64, lo: u8, hi: u8) -> Result<QueryAnswer> {
        let span = Self::query_span("band");
        span.record_i64("study_id", study_id);
        span.record_u64("lo", u64::from(lo));
        span.record_u64("hi", u64::from(hi));
        let answer = self.extract_with_sql(&format!(
            "select extractVoxels(wv.data, b.region)
             from warpedVolume wv, intensityBand b
             where wv.studyId = {study_id} and b.studyId = {study_id} and
                   wv.atlasId = {ATLAS_ID} and
                   b.lo = {lo} and b.hi = {hi}"
        ))?;
        self.finish_query(&span, "band", &answer.cost);
        Ok(answer)
    }

    /// Attribute query over an *arbitrary* intensity range — an
    /// extension beyond the paper, which "queried intensity ranges that
    /// exactly matched intensity bands stored in the database".
    ///
    /// The stored bands act as the index the paper intended: the bands
    /// overlapping `lo..=hi` are UNIONed inside the DBMS (reading only
    /// band REGIONs, never the full volume), the union is extracted, and
    /// the boundary bands' excess voxels are filtered out of the answer
    /// — the same candidate-then-refine pattern as approximate REGIONs.
    pub fn intensity_range_data(&mut self, study_id: i64, lo: u8, hi: u8) -> Result<QueryAnswer> {
        if lo > hi {
            return Err(QbismError::NotFound(format!("empty intensity range {lo}-{hi}")));
        }
        let span = Self::query_span("intensity_range");
        span.record_i64("study_id", study_id);
        span.record_u64("lo", u64::from(lo));
        span.record_u64("hi", u64::from(hi));
        let width = self.config.band_width;
        let first_band = u16::from(lo) / width;
        let last_band = u16::from(hi) / width;
        let n = (last_band - first_band + 1) as usize;
        // select extractVoxels(wv.data, runion(b1.region, runion(...)))
        let mut region_expr = String::new();
        for i in 0..n {
            if i + 1 < n {
                region_expr.push_str(&format!("runion(b{}.region, ", i + 1));
            } else {
                region_expr.push_str(&format!("b{}.region", i + 1));
            }
        }
        region_expr.push_str(&")".repeat(n.saturating_sub(1)));
        let mut from = vec!["warpedVolume wv".to_string()];
        let mut preds =
            vec![format!("wv.studyId = {study_id}"), format!("wv.atlasId = {ATLAS_ID}")];
        for (i, band) in (first_band..=last_band).enumerate() {
            from.push(format!("intensityBand b{}", i + 1));
            preds.push(format!("b{}.studyId = {study_id}", i + 1));
            preds.push(format!("b{}.lo = {}", i + 1, band * width));
        }
        let sql = format!(
            "select extractVoxels(wv.data, {region_expr}) from {} where {}",
            from.join(", "),
            preds.join(" and ")
        );
        let mut answer = self.extract_with_sql(&sql)?;
        // Post-filter the boundary bands' spill (candidate refinement).
        let exact = answer.data.filter_intensity(lo, hi);
        answer.cost.wire_bytes = crate::wire::data_region_wire_size(&exact);
        answer.cost.messages = self.net.messages_for(answer.cost.wire_bytes);
        answer.cost.sim_net_seconds = self.net.seconds_for(answer.cost.wire_bytes);
        answer.data = exact;
        self.finish_query(&span, "intensity_range", &answer.cost);
        Ok(answer)
    }

    /// Q6-style mixed query: band ∩ structure, intersected inside the
    /// DBMS ("includes a call to intersection() in the select list and
    /// additional joins").
    pub fn band_in_structure(
        &mut self,
        study_id: i64,
        lo: u8,
        hi: u8,
        structure: &str,
    ) -> Result<QueryAnswer> {
        let span = Self::query_span("band_in_structure");
        span.record_i64("study_id", study_id);
        span.record_u64("lo", u64::from(lo));
        span.record_u64("hi", u64::from(hi));
        span.record_str("structure", structure);
        let answer = self.extract_with_sql(&format!(
            "select extractVoxels(wv.data, intersection(b.region, ast.region))
             from warpedVolume wv, intensityBand b, atlasStructure ast, neuralStructure ns
             where wv.studyId = {study_id} and b.studyId = {study_id} and
                   wv.atlasId = {ATLAS_ID} and ast.atlasId = {ATLAS_ID} and
                   b.lo = {lo} and b.hi = {hi} and
                   ast.structureId = ns.structureId and
                   ns.structureName = '{structure}'"
        ))?;
        self.finish_query(&span, "band_in_structure", &answer.cost);
        Ok(answer)
    }

    /// Table 4's multi-study query: the REGION where *all* the given
    /// studies have intensities in `lo..=hi`, computed as an n-way
    /// intersection of stored band REGIONs inside the DBMS.
    pub fn multi_study_band_region(
        &mut self,
        study_ids: &[i64],
        lo: u8,
        hi: u8,
    ) -> Result<(Region, QueryCost)> {
        if study_ids.is_empty() {
            return Err(QbismError::NotFound("no studies given".into()));
        }
        let span = Self::query_span("multi_study_band");
        span.record_u64("studies", study_ids.len() as u64);
        span.record_u64("lo", u64::from(lo));
        span.record_u64("hi", u64::from(hi));
        // Build: select intersection(b1.region, intersection(..)) from
        // intensityBand b1, ... where bi.studyId = .. and bi.lo = ..
        let mut select = String::new();
        for (i, _) in study_ids.iter().enumerate() {
            if i + 1 < study_ids.len() {
                select.push_str(&format!("intersection(b{}.region, ", i + 1));
            } else {
                select.push_str(&format!("b{}.region", i + 1));
            }
        }
        select.push_str(&")".repeat(study_ids.len() - 1));
        let from: Vec<String> =
            (1..=study_ids.len()).map(|i| format!("intensityBand b{i}")).collect();
        let mut preds: Vec<String> = Vec::new();
        for (i, id) in study_ids.iter().enumerate() {
            preds.push(format!("b{}.studyId = {id}", i + 1));
            preds.push(format!("b{}.lo = {lo}", i + 1));
            preds.push(format!("b{}.hi = {hi}", i + 1));
        }
        let sql = format!("select {select} from {} where {}", from.join(", "), preds.join(" and "));
        let (value, mut cost_partial) = self.run_measured(&sql)?;
        // One study degenerates to the stored band REGION handle; more
        // studies produce an immediate intersection value.
        let bytes: Vec<u8> = match &value {
            Value::Bytes(b) => b.clone(),
            Value::Long(id) => {
                let before = self.db.lfm_stats();
                let b = self.db.read_long_field(*id)?;
                cost_partial.lfm = cost_partial.lfm.plus(&self.db.lfm_stats().since(&before));
                b
            }
            other => {
                return Err(QbismError::Wire(format!(
                    "multi-study answer is not a REGION: {other}"
                )))
            }
        };
        let region = RegionCodec::decode(&bytes)?;
        let wire_bytes = bytes.len() as u64;
        let cost = self.finish_cost(cost_partial, wire_bytes);
        self.finish_query(&span, "multi_study_band", &cost);
        Ok((region, cost))
    }

    /// The Section 6.4 aggregate: voxel-wise average intensity inside a
    /// structure over a set of studies.  Only the per-study relevant
    /// pages are read; the answer is one structure-sized DATA_REGION —
    /// "the reduction in data traffic will be linear in the number of
    /// studies involved."
    pub fn population_average(
        &mut self,
        study_ids: &[i64],
        structure: &str,
    ) -> Result<QueryAnswer> {
        if study_ids.is_empty() {
            return Err(QbismError::NotFound("no studies given".into()));
        }
        let span = Self::query_span("population_average");
        span.record_u64("studies", study_ids.len() as u64);
        span.record_str("structure", structure);
        // Per-study measured extraction, folded into one cost.
        let mut cost = QueryCost::default();
        let mut extracts: Vec<DataRegion<u8>> = Vec::with_capacity(study_ids.len());
        for id in study_ids {
            let (value, partial) = self
                .run_measured(&format!(
                    "select extractVoxels(wv.data, ast.region)
                     from warpedVolume wv, atlasStructure ast, neuralStructure ns
                     where wv.studyId = {id} and wv.atlasId = {ATLAS_ID} and
                           ast.atlasId = {ATLAS_ID} and
                           ast.structureId = ns.structureId and
                           ns.structureName = '{structure}'"
                ))
                .map_err(|e| match e {
                    QbismError::NotFound(_) => {
                        QbismError::NotFound(format!("study {id} / {structure}"))
                    }
                    other => other,
                })?;
            cost.accumulate(&self.finish_cost(partial, 0));
            let bytes = value
                .as_bytes()
                .ok_or_else(|| QbismError::Wire("extract returned a non-bytes value".into()))?;
            extracts.push(decode_data_region(bytes)?);
        }
        // Voxel-wise mean across the aligned extractions (server CPU,
        // still part of the database phase).
        let start = std::time::Instant::now();
        let region = extracts[0].region().clone();
        let n = extracts.len() as u32;
        let mut values = Vec::with_capacity(extracts[0].voxel_count());
        for i in 0..extracts[0].voxel_count() {
            let sum: u32 = extracts.iter().map(|e| u32::from(e.values()[i])).sum();
            values.push((sum / n) as u8);
        }
        let data = DataRegion::new(region, values);
        let mean_seconds = start.elapsed().as_secs_f64();
        cost.native_db_seconds += mean_seconds;
        cost.sim_db_seconds += mean_seconds;
        // Only the final averaged DATA_REGION crosses the wire.
        let wire_bytes = data_region_wire_size(&data);
        cost.wire_bytes = wire_bytes;
        cost.messages = self.net.messages_for(wire_bytes);
        cost.sim_net_seconds = self.net.seconds_for(wire_bytes);
        self.finish_query(&span, "population_average", &cost);
        Ok(QueryAnswer { data, cost })
    }

    /// The Section 3.4 "first query": atlas coordinate-space and patient
    /// information needed for rendering and annotation.  Returns the
    /// (columns, row) of the catalog lookup.
    pub fn atlas_info(&mut self, study_id: i64) -> Result<Vec<Value>> {
        let span = Self::query_span("atlas_info");
        span.record_i64("study_id", study_id);
        let rs = self.db.query(&format!(
            "select a.n, a.x0, a.y0, a.z0, a.dx, a.dy, a.dz,
                    a.atlasId, p.name, p.patientId, rv.date
             from atlas a, rawVolume rv, warpedVolume wv, patient p
             where a.atlasId = wv.atlasId and wv.studyId = rv.studyId and
                   rv.patientId = p.patientId and rv.studyId = {study_id} and
                   a.atlasName = 'Talairach'"
        ))?;
        rs.rows().first().cloned().ok_or_else(|| QbismError::NotFound(format!("study {study_id}")))
    }

    /// Loads a warped VOLUME fully (used by rendering examples to
    /// texture meshes).  Charged as ordinary LFM reads.
    pub fn warped_volume(&mut self, study_id: i64) -> Result<Volume> {
        let span = Self::query_span("warped_volume");
        span.record_i64("study_id", study_id);
        let rs = self.db.query(&format!(
            "select wv.data from warpedVolume wv
             where wv.studyId = {study_id} and wv.atlasId = {ATLAS_ID}"
        ))?;
        let id = rs
            .single_value()
            .map_err(|_| QbismError::NotFound(format!("study {study_id}")))?
            .as_long()
            .ok_or_else(|| QbismError::Wire("warpedVolume.data is not a long field".into()))?;
        let bytes = self.db.read_long_field(id)?;
        crate::wire::volume_from_long_field(self.config.geometry(), &bytes)
    }

    /// Loads a structure's stored surface mesh.
    pub fn structure_mesh(&mut self, structure: &str) -> Result<qbism_geometry::TriMesh> {
        let span = Self::query_span("structure_mesh");
        span.record_str("structure", structure);
        let rs = self.db.query(&format!(
            "select ast.surface from atlasStructure ast, neuralStructure ns
             where ast.structureId = ns.structureId and ast.atlasId = {ATLAS_ID} and
                   ns.structureName = '{structure}'"
        ))?;
        let id = rs
            .single_value()
            .map_err(|_| QbismError::NotFound(format!("structure {structure}")))?
            .as_long()
            .ok_or_else(|| QbismError::Wire("surface is not a long field".into()))?;
        let bytes = self.db.read_long_field(id)?;
        crate::wire::mesh_from_long_field(&bytes)
    }

    /// Loads a structure's stored volumetric REGION.
    pub fn structure_region(&mut self, structure: &str) -> Result<Region> {
        let span = Self::query_span("structure_region");
        span.record_str("structure", structure);
        let rs = self.db.query(&format!(
            "select ast.region from atlasStructure ast, neuralStructure ns
             where ast.structureId = ns.structureId and ast.atlasId = {ATLAS_ID} and
                   ns.structureName = '{structure}'"
        ))?;
        let id = rs
            .single_value()
            .map_err(|_| QbismError::NotFound(format!("structure {structure}")))?
            .as_long()
            .ok_or_else(|| QbismError::Wire("region is not a long field".into()))?;
        let bytes = self.db.read_long_field(id)?;
        Ok(RegionCodec::decode(&bytes)?)
    }

    // ----------------------------------------------------------------
    // Internals
    // ----------------------------------------------------------------

    /// Opens the per-class root span for a query method.
    fn query_span(class: &str) -> trace::SpanGuard {
        if !qbism_obs::enabled() {
            return trace::root("");
        }
        trace::root(format!("query.{class}"))
    }

    /// Records a finished query's costs on its span and in the global
    /// per-class metrics.
    fn finish_query(&self, span: &trace::SpanGuard, class: &str, cost: &QueryCost) {
        if !qbism_obs::enabled() {
            return;
        }
        match self.metrics.classes.get(class) {
            Some(m) => {
                m.seconds.observe(cost.native_db_seconds);
                m.total.inc();
            }
            None => {
                // Unknown class (future query kinds): fall back to the
                // registry so nothing is silently dropped.
                let reg = qbism_obs::global();
                reg.histogram_with("qbism_query_seconds", &[("class", class)])
                    .observe(cost.native_db_seconds);
                reg.counter_with("qbism_query_total", &[("class", class)]).inc();
            }
        }
        self.metrics.wire_bytes.add(cost.wire_bytes);
        self.metrics.rows_scanned.add(cost.rows_scanned);
        span.record_u64("lfm_pages_read", cost.lfm.pages_read);
        span.record_u64("lfm_extents_read", cost.lfm.extents_read);
        span.record_u64("rows_scanned", cost.rows_scanned);
        span.record_u64("wire_bytes", cost.wire_bytes);
        span.record_u64("messages", cost.messages);
        span.record_f64("sim_db_s", cost.sim_db_seconds);
        span.record_f64("sim_net_s", cost.sim_net_seconds);
    }

    /// Runs a one-value SQL query under measurement brackets.
    fn run_measured(&mut self, sql: &str) -> Result<(Value, PartialCost)> {
        let before = self.db.lfm_stats();
        let start = std::time::Instant::now();
        let rs = self.db.query(sql)?;
        let native = start.elapsed().as_secs_f64();
        let lfm = self.db.lfm_stats().since(&before);
        let value = rs
            .single_value()
            .map_err(|_| QbismError::NotFound(format!("query returned {} rows", rs.len())))?
            .clone();
        Ok((value, PartialCost { lfm, rows_scanned: rs.rows_scanned, native_db_seconds: native }))
    }

    fn finish_cost(&self, partial: PartialCost, wire_bytes: u64) -> QueryCost {
        QueryCost {
            lfm: partial.lfm,
            rows_scanned: partial.rows_scanned,
            native_db_seconds: partial.native_db_seconds,
            sim_db_seconds: self.disk.seconds(&partial.lfm) + partial.native_db_seconds,
            wire_bytes,
            messages: self.net.messages_for(wire_bytes),
            sim_net_seconds: self.net.seconds_for(wire_bytes),
        }
    }

    fn extract_with_sql(&mut self, sql: &str) -> Result<QueryAnswer> {
        let (value, partial) = self.run_measured(sql)?;
        let bytes = value
            .as_bytes()
            .ok_or_else(|| QbismError::Wire("extract returned a non-bytes value".into()))?;
        let data = decode_data_region(bytes)?;
        let wire_bytes = bytes.len() as u64;
        let cost = self.finish_cost(partial, wire_bytes);
        Ok(QueryAnswer { data, cost })
    }
}

struct PartialCost {
    lfm: IoStats,
    rows_scanned: u64,
    native_db_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::QbismSystem;
    use crate::QbismConfig;

    fn system() -> QbismSystem {
        QbismSystem::install(&QbismConfig::small_test()).unwrap()
    }

    #[test]
    fn full_study_returns_every_voxel() {
        let mut sys = system();
        let a = sys.server.full_study(1).unwrap();
        assert_eq!(a.voxel_count(), 4096);
        assert_eq!(a.run_count(), 1, "the whole grid is one run");
        assert!(a.cost.lfm.pages_read >= 1);
        assert!(a.cost.messages > 2);
        assert!(a.cost.sim_db_seconds > 0.0);
        assert!(a.cost.sim_net_seconds > 0.0);
    }

    #[test]
    fn box_query_counts_match_geometry() {
        let mut sys = system();
        let a = sys.server.box_data(1, [4, 4, 4], [11, 11, 11]).unwrap();
        assert_eq!(a.voxel_count(), 512);
        // every returned voxel is inside the box
        for (x, y, z) in a.data.region().iter_voxels3() {
            assert!((4..=11).contains(&x) && (4..=11).contains(&y) && (4..=11).contains(&z));
        }
    }

    #[test]
    fn structure_query_matches_ground_truth() {
        let mut sys = system();
        let truth = sys.atlas.structure("ntal").unwrap().region.clone();
        let a = sys.server.structure_data(1, "ntal").unwrap();
        assert_eq!(a.data.region(), &truth);
        // spot-check values against the stored warped volume
        let vol = sys.server.warped_volume(1).unwrap();
        let direct = vol.extract(&truth).unwrap();
        assert_eq!(a.data.values(), direct.values());
    }

    #[test]
    fn band_query_matches_band_semantics() {
        let mut sys = system();
        let a = sys.server.band_data(1, 32, 63).unwrap();
        for &v in a.data.values() {
            assert!((32..=63).contains(&v), "value {v} outside the band");
        }
        let vol = sys.server.warped_volume(1).unwrap();
        let expect = vol.intensity_region(32, 63);
        assert_eq!(a.data.region(), &expect);
    }

    #[test]
    fn mixed_query_is_the_intersection() {
        let mut sys = system();
        let band = sys.server.band_data(1, 32, 63).unwrap();
        let ntal1 = sys.atlas.structure("ntal1").unwrap().region.clone();
        let mixed = sys.server.band_in_structure(1, 32, 63, "ntal1").unwrap();
        let expect = band.data.region().intersect(&ntal1);
        assert_eq!(mixed.data.region(), &expect);
        assert!(mixed.voxel_count() <= band.voxel_count());
    }

    #[test]
    fn early_filtering_reduces_traffic() {
        // The paper's central claim: selective queries ship and read far
        // less than the full-study query.
        let mut sys = system();
        let full = sys.server.full_study(1).unwrap();
        let small = sys.server.structure_data(1, "thalamus").unwrap();
        assert!(small.voxel_count() < full.voxel_count() / 4);
        assert!(small.cost.wire_bytes < full.cost.wire_bytes / 4);
        assert!(small.cost.messages < full.cost.messages);
        assert!(small.cost.sim_net_seconds < full.cost.sim_net_seconds);
    }

    #[test]
    fn multi_study_intersection_shrinks_with_studies() {
        let mut sys = system();
        let (r1, _) = sys.server.multi_study_band_region(&[1], 32, 63).unwrap();
        let (r12, cost) = sys.server.multi_study_band_region(&[1, 2], 32, 63).unwrap();
        assert!(r12.voxel_count() <= r1.voxel_count());
        assert!(r1.contains_region(&r12));
        assert!(cost.lfm.pages_read >= 2, "reads both band REGIONs");
    }

    #[test]
    fn population_average_matches_manual_mean() {
        let mut sys = system();
        let avg = sys.server.population_average(&[1, 2], "ntal").unwrap();
        let a = sys.server.structure_data(1, "ntal").unwrap();
        let b = sys.server.structure_data(2, "ntal").unwrap();
        for ((&m, &x), &y) in avg.data.values().iter().zip(a.data.values()).zip(b.data.values()) {
            assert_eq!(u32::from(m), (u32::from(x) + u32::from(y)) / 2);
        }
    }

    #[test]
    fn intensity_range_extension_matches_exact_semantics() {
        let mut sys = system();
        // A range straddling two stored bands (32-wide): 40..=80.
        let a = sys.server.intensity_range_data(1, 40, 80).unwrap();
        let vol = sys.server.warped_volume(1).unwrap();
        let expect = vol.intensity_region(40, 80);
        assert_eq!(a.data.region(), &expect);
        for &v in a.data.values() {
            assert!((40..=80).contains(&v));
        }
        // Aligned ranges agree with the plain band query.
        let b = sys.server.intensity_range_data(1, 32, 63).unwrap();
        let plain = sys.server.band_data(1, 32, 63).unwrap();
        assert_eq!(b.data, plain.data);
        // Degenerate range errors.
        assert!(sys.server.intensity_range_data(1, 90, 40).is_err());
    }

    #[test]
    fn atlas_info_returns_metadata() {
        let mut sys = system();
        let row = sys.server.atlas_info(1).unwrap();
        assert_eq!(row[0], Value::Int(16), "grid resolution n");
        assert!(matches!(row[8], Value::Str(_)), "patient name present");
    }

    #[test]
    fn missing_entities_are_not_found() {
        let mut sys = system();
        assert!(matches!(sys.server.structure_data(99, "ntal"), Err(QbismError::NotFound(_))));
        assert!(matches!(sys.server.structure_data(1, "amygdala"), Err(QbismError::NotFound(_))));
        assert!(matches!(
            sys.server.multi_study_band_region(&[], 0, 31),
            Err(QbismError::NotFound(_))
        ));
        assert!(matches!(sys.server.atlas_info(42), Err(QbismError::NotFound(_))));
    }

    #[test]
    fn mesh_and_region_accessors() {
        let mut sys = system();
        let mesh = sys.server.structure_mesh("thalamus").unwrap();
        assert!(mesh.triangle_count() > 0);
        let region = sys.server.structure_region("thalamus").unwrap();
        assert_eq!(region, sys.atlas.structure("thalamus").unwrap().region);
    }
}
